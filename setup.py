"""Setup shim for environments without the `wheel` package.

`pip install -e . --no-use-pep517` uses this legacy entry point; all real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
