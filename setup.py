"""Setup entry point for the repro package.

Kept as plain setup.py (no pyproject.toml) so `pip install -e .
--no-use-pep517` works in environments without the `wheel` package.
`package_data` ships the PEP 561 `py.typed` marker so downstream type
checkers see the package's inline annotations.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.9.0",
    description=(
        "Reproduction of semantic multicast for content-based XML "
        "pub/sub routing (Chand, Felber & Garofalakis, ICDE 2007)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
)
