"""Content-based routing application layer.

Module map:

* :mod:`repro.routing.community` — semantic communities:
  :func:`leader_clustering` (online, greedy) and
  :func:`agglomerative_clustering` (offline, average-linkage with
  incremental linkage maintenance), both able to read a precomputed
  :class:`~repro.core.similarity.SimilarityMatrix`;
* :mod:`repro.routing.broker` — the single-broker routing simulation:
  per-subscription / flooding / community strategies scored for delivery
  precision, recall and filtering cost;
* :mod:`repro.routing.table` — covering-aware broker routing tables:
  pattern → destination entries minimised through
  :mod:`repro.core.containment`, with reversible covering (absorbed
  advertisements are remembered and resurrected by
  ``RoutingTable.remove_pattern`` when their cover leaves);
* :mod:`repro.routing.overlay` — the multi-broker overlay: chain / star /
  random-tree topologies, hop-by-hop advertisement with covering pruning,
  reverse-path document routing, per-broker cost accounting, the
  community-aggregated advertisement regime built on the similarity
  engine, and the subscription lifecycle —
  ``subscribe(broker, pattern) -> SubscriptionId`` / ``unsubscribe(id)``
  with hop-by-hop unadvertise propagation and incremental community
  re-aggregation over per-broker live
  :class:`~repro.core.similarity.SimilarityIndex` instances;
* :mod:`repro.routing.inclusion` — containment-based inclusion forests,
  the baseline structure the paper's introduction argues is the wrong
  proximity notion for communities.
"""

from repro.routing.broker import RoutingSimulator, RoutingStats
from repro.routing.community import (
    Community,
    agglomerative_clustering,
    leader_clustering,
)
from repro.routing.inclusion import InclusionForest, InclusionNode
from repro.routing.overlay import (
    TOPOLOGIES,
    BrokerNode,
    BrokerOverlay,
    OverlayStats,
    SubscriptionId,
)
from repro.routing.table import RoutingTable, TableEntry

__all__ = [
    "Community",
    "leader_clustering",
    "agglomerative_clustering",
    "RoutingSimulator",
    "RoutingStats",
    "InclusionForest",
    "InclusionNode",
    "RoutingTable",
    "TableEntry",
    "BrokerNode",
    "BrokerOverlay",
    "OverlayStats",
    "SubscriptionId",
    "TOPOLOGIES",
]
