"""Content-based routing application layer: semantic communities and the
broker simulation that motivates the paper's similarity metrics."""

from repro.routing.broker import RoutingSimulator, RoutingStats
from repro.routing.community import (
    Community,
    agglomerative_clustering,
    leader_clustering,
)
from repro.routing.inclusion import InclusionForest, InclusionNode

__all__ = [
    "Community",
    "leader_clustering",
    "agglomerative_clustering",
    "RoutingSimulator",
    "RoutingStats",
    "InclusionForest",
    "InclusionNode",
]
