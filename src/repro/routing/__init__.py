"""Content-based routing application layer.

Module map:

* :mod:`repro.routing.community` — semantic communities:
  :func:`leader_clustering` (online, greedy) and
  :func:`agglomerative_clustering` (offline, average-linkage with
  incremental linkage maintenance), both able to read a precomputed
  :class:`~repro.core.similarity.SimilarityMatrix` and both gateable
  by a :class:`~repro.core.candidates.CandidateGenerator`
  (``candidates=``) so only colliding pairs are ever evaluated;
* :mod:`repro.routing.broker` — the single-broker routing simulation:
  per-subscription / flooding / community strategies scored for delivery
  precision, recall and filtering cost;
* :mod:`repro.routing.table` — covering-aware broker routing tables:
  pattern → destination entries minimised through
  :mod:`repro.core.containment`, with reversible covering (absorbed
  advertisements are remembered and resurrected by
  ``RoutingTable.remove_pattern`` when their cover leaves); matching
  runs on a merged :class:`~repro.routing.trie.PatternTrie` by default,
  with the per-pattern linear scan retained as the oracle, and batched
  (``destinations_for_batch``) so one memo pool is shared across a
  queue drain;
* :mod:`repro.routing.trie` — :class:`PatternTrie`, the merged pattern
  trie: every active pattern of a broker shares one degree-sorted
  structure, so one document traversal yields all matching destinations
  with sublinear trie operations, maintained incrementally under
  covering churn and topology surgery; ``match_batch`` shares one
  cross-document memo pool keyed on interned skeleton keys so repeated
  document structure in a batch is matched once;
* :mod:`repro.routing.overlay` — the multi-broker overlay: chain / star /
  random-tree topologies, hop-by-hop advertisement with covering pruning,
  reverse-path document routing, per-broker cost accounting, the
  community-aggregated advertisement regime built on the similarity
  engine, the subscription lifecycle —
  ``subscribe(broker, pattern) -> SubscriptionId`` / ``unsubscribe(id)``
  with hop-by-hop unadvertise propagation and incremental community
  re-aggregation over per-broker live
  :class:`~repro.core.similarity.SimilarityIndex` instances — and the
  topology lifecycle: ``add_broker(parent, split=...) -> BrokerId``
  grafts a broker (seeded with exactly the advertisement state its
  neighbours have forwarded), ``remove_broker(id, merge_into=...)``
  retires one (withdrawing its advertisements, re-homing its
  subscriptions and subtrees, transplanting its reversible-covering
  state), with routing tables provably equal to a from-scratch rebuild
  after any interleaving of churn;
* :mod:`repro.routing.policy` — the first-class routing policies:
  :class:`AdvertisementPolicy` strategies (per-subscription, community,
  hybrid) consumed by ``BrokerOverlay.advertise``,
  :class:`SchedulingPolicy` disciplines (FIFO, priority with optional
  aging, deadline, weighted-fair) consumed by the delivery engine, and
  :class:`QueuePolicy` bounding broker queues with drop-new /
  drop-oldest / nack overflow — with string-spelling shims for the
  legacy flag API;
* :mod:`repro.routing.builder` — :class:`OverlayBuilder`, the fluent
  façade composing topology, membership, estimator provider,
  advertisement policy, candidate generator, service/link models and
  scheduling into a ready ``(BrokerOverlay, DeliveryEngine)`` pair;
* :mod:`repro.routing.engine` — the discrete-event delivery engine:
  seeded, wall-clock-free simulation of the overlay under load, with
  per-broker service queues drained by a swappable
  :class:`SchedulingPolicy` (:class:`ServiceModel` maps match operations
  to service time; :class:`BatchServiceModel` drains several queued
  documents per interval under a measured non-affine cost curve),
  per-link forwarding latencies (:class:`LinkModel`), bounded queues
  with drop/NACK accounting under a conservation ledger
  (offered == completed + dropped + nacked + in-flight), closed-loop
  AIMD publishers (:class:`ClosedLoopSource`, reported per source by
  :class:`SourceReport`), and :class:`LatencyStats` reporting latency
  percentiles — overall and per subscriber class — queue-depth peaks,
  admitted-vs-offered throughput and per-class drop counts — it
  replays the same ``BrokerOverlay.process_at`` steps as the
  synchronous path, so delivery sets are identical by construction;
* :mod:`repro.routing.inclusion` — containment-based inclusion forests,
  the baseline structure the paper's introduction argues is the wrong
  proximity notion for communities.
"""

from repro.routing.broker import (
    ClassLatency,
    LatencyStats,
    RoutingSimulator,
    RoutingStats,
    ordered_percentile,
    percentile,
)
from repro.routing.builder import OverlayBuilder
from repro.routing.community import (
    Community,
    agglomerative_clustering,
    leader_clustering,
)
from repro.routing.engine import (
    BatchServiceModel,
    ClosedLoopSource,
    DeliveryEngine,
    LinkModel,
    ServiceModel,
    SourceReport,
    TopologyEvent,
)
from repro.routing.inclusion import InclusionForest, InclusionNode
from repro.routing.policy import (
    AdvertisementPolicy,
    CommunityPolicy,
    DeadlineScheduling,
    FifoScheduling,
    HybridPolicy,
    PerSubscriptionPolicy,
    PriorityScheduling,
    QueuePolicy,
    SchedulingPolicy,
    WeightedFairScheduling,
    resolve_advertisement,
    resolve_queue_policy,
    resolve_scheduling,
)
from repro.routing.overlay import (
    TOPOLOGIES,
    BrokerId,
    BrokerNode,
    BrokerOverlay,
    BrokerStep,
    OverlayStats,
    SubscriptionId,
)
from repro.routing.table import RoutingTable, TableBatchMatch, TableEntry
from repro.routing.trie import BatchMatch, PatternTrie, TrieMatch

__all__ = [
    "Community",
    "leader_clustering",
    "agglomerative_clustering",
    "RoutingSimulator",
    "RoutingStats",
    "InclusionForest",
    "InclusionNode",
    "RoutingTable",
    "TableEntry",
    "TableBatchMatch",
    "PatternTrie",
    "TrieMatch",
    "BatchMatch",
    "BrokerId",
    "BrokerNode",
    "BrokerOverlay",
    "BrokerStep",
    "OverlayStats",
    "SubscriptionId",
    "TOPOLOGIES",
    "DeliveryEngine",
    "TopologyEvent",
    "ServiceModel",
    "BatchServiceModel",
    "LinkModel",
    "ClosedLoopSource",
    "SourceReport",
    "LatencyStats",
    "ClassLatency",
    "percentile",
    "ordered_percentile",
    "AdvertisementPolicy",
    "PerSubscriptionPolicy",
    "CommunityPolicy",
    "HybridPolicy",
    "resolve_advertisement",
    "SchedulingPolicy",
    "FifoScheduling",
    "PriorityScheduling",
    "DeadlineScheduling",
    "WeightedFairScheduling",
    "resolve_scheduling",
    "QueuePolicy",
    "resolve_queue_policy",
    "OverlayBuilder",
]
