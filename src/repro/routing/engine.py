"""Discrete-event delivery engine over the broker overlay.

The synchronous :meth:`~repro.routing.overlay.BrokerOverlay.route` walk
answers *where* documents go; under heavy traffic the operational question
is *when* they arrive.  This module replays the exact same broker-local
filtering steps (:meth:`~repro.routing.overlay.BrokerOverlay.process_at`)
through a deterministic discrete-event simulation:

* a single global event queue, ordered by ``(time, sequence number)`` so
  ties resolve in scheduling order — replays are bit-identical under a
  fixed seed, with no wall clock anywhere;
* one FIFO service queue per broker: a broker services one document at a
  time, and the service duration is a configurable function of the match
  operations the filtering step performs (:class:`ServiceModel`) — the
  direct coupling between routing-table size and queueing delay that the
  paper's community aggregation is meant to relieve;
* per-link forwarding latencies (:class:`LinkModel`) between neighbouring
  brokers.

Because the engine consumes ``process_at`` unchanged, it delivers exactly
the subscriber sets the synchronous path delivers (the equivalence is
property-tested); what it adds is the timing dimension —
publication-to-delivery latency percentiles, per-broker queue-depth peaks
and utilisation, and end-to-end throughput, reported as a
:class:`~repro.routing.broker.LatencyStats`.

The queueing discipline is a first-class
:class:`~repro.routing.policy.SchedulingPolicy`: the engine asks the
policy which queued document a freed broker services next, so FIFO
(:class:`~repro.routing.policy.FifoScheduling`, the default), strict
priority by subscriber class
(:class:`~repro.routing.policy.PriorityScheduling`) and earliest deadline
first (:class:`~repro.routing.policy.DeadlineScheduling`) are swappable
without subclassing.  Publishes may carry a ``priority_class`` and a
``deadline``; :class:`~repro.routing.broker.LatencyStats` then reports
per-class latency percentiles, the fairness-vs-tail-latency axis a
scheduling policy trades on.

The broker tree itself may churn mid-simulation: a :class:`TopologyEvent`
(scheduled through :meth:`DeliveryEngine.schedule_join` /
:meth:`DeliveryEngine.schedule_leave`, gated by the explicit
``allow_topology_churn`` opt-in) applies ``BrokerOverlay.add_broker`` /
``remove_broker`` at its simulated instant, in the same deterministic
``(time, seq)`` order as every other event.  A leave re-routes the
retiring broker's in-flight documents to its merge target — queued and
in-service work restarts there, copies already on the wire are
re-targeted — so no publication loses deliveries to topology churn
(delivery sets deduplicate per publish).

Batching at saturated brokers is first-class, not an extension point:
constructing the engine with a :class:`BatchServiceModel` switches every
broker to *batched queue drains* — when a broker frees up, the
scheduling policy picks up to ``max_batch`` queued documents (one
``select`` call per document, so priority/deadline disciplines shape the
batch exactly as they shape the one-at-a-time schedule) and the whole
batch is filtered in one
:meth:`~repro.routing.overlay.BrokerOverlay.process_batch_at` pass over
a shared trie memo pool.  The service interval then costs
``base + per_doc·documents + per_match·operations`` where *operations*
is the **measured** memo-amortised batch count — the non-affine
service curve is observed from the matching layer, never modelled.
Under the default affine :class:`ServiceModel` the engine's schedule is
unchanged, event for event.

Overload is likewise first-class, not an open loop that silently
diverges.  A :class:`~repro.routing.policy.QueuePolicy` bounds every
broker's service queue (``capacity=``) and selects the overflow
behaviour — drop the arriving copy, evict the oldest queued one, or
reject the arrival with a NACK; every dropped or nacked copy is
accounted per class and per broker in
:class:`~repro.routing.broker.LatencyStats`, so ``offered ==
completed + dropped + nacked + in-flight`` holds at every drain point
(the conservation invariant the overload property suite pins).  The
default ``capacity=None`` replays the unbounded engine byte-identically.
On the publishing side, :class:`ClosedLoopSource` closes the loop: a
window-based (TCP-like AIMD) publisher registered through
:meth:`DeliveryEngine.attach_source` keeps at most ``window``
publications outstanding, grows the window additively on clean
absorptions and halves it on NACK back-pressure — both signals carried
on the same deterministic ``(time, seq)`` event queue as every arrival.
:class:`~repro.routing.policy.WeightedFairScheduling` and
:class:`~repro.routing.policy.PriorityScheduling` with ``aging=`` keep
low classes from starving while all of this saturates.

Remaining extension points: subclass :class:`ServiceModel` /
:class:`BatchServiceModel` for other service-time shapes (e.g.
load-dependent coefficients), subclass :class:`LinkModel` for
heterogeneous or load-dependent links, implement
:class:`~repro.routing.policy.SchedulingPolicy` for bespoke disciplines
(set ``uses_service_shares`` to receive per-class service history), and
subclass or wrap :class:`ClosedLoopSource` semantics for other
congestion responses (retransmitting sources, pacing, ECN-style early
signals) — queue policy and closed-loop publishing themselves are now
part of the engine, not extension points.

>>> # engine = DeliveryEngine(overlay, scheduling=PriorityScheduling(),
>>> #                         queue_policy=QueuePolicy(64, "nack"))
>>> # engine.attach_source(ClosedLoopSource(corpus, at_broker=0))
>>> # stats = engine.run()          # LatencyStats, incl. drop accounting
>>> # engine.delivered_sets()       # per published document, for checking
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

from repro.routing.broker import ClassLatency, LatencyStats, ordered_percentile
from repro.routing.overlay import BrokerOverlay, BrokerStep
from repro.routing.policy import (
    QueuePolicy,
    QueuePolicySpec,
    SchedulingPolicy,
    SchedulingSpec,
    resolve_queue_policy,
    resolve_scheduling,
)
from repro.xmltree.corpus import DocumentCorpus
from repro.xmltree.tree import XMLTree

__all__ = [
    "ServiceModel",
    "BatchServiceModel",
    "LinkModel",
    "ClosedLoopSource",
    "SourceReport",
    "DeliveryEngine",
    "TopologyEvent",
]


@dataclass(frozen=True)
class ServiceModel:
    """Broker service time as an affine function of filtering work.

    ``base`` is the fixed per-document handling cost (parsing, queue
    management); ``per_match`` the cost of one filtering operation in the
    broker's matching mode — a trie operation (node-candidate test,
    branch evaluation, gate check) under the default merged-trie tables,
    or one pattern-vs-document evaluation under the ``"linear"``
    per-pattern oracle.  Community aggregation shrinks routing tables and
    trie matching makes each table sublinear to filter, both of which
    shrink match operations, hence service time — exactly the knobs this
    model exposes to the latency benchmark.
    """

    base: float = 0.2
    per_match: float = 0.05

    def __post_init__(self) -> None:
        if self.base < 0.0 or self.per_match < 0.0:
            raise ValueError("service-time coefficients must be >= 0")
        if self.base <= 0.0 and self.per_match <= 0.0:
            raise ValueError("service time must be positive")

    def service_time(self, match_operations: int) -> float:
        """Simulated time to service one document at one broker."""
        return self.base + self.per_match * match_operations


@dataclass(frozen=True)
class BatchServiceModel(ServiceModel):
    """Batched broker service: one interval drains a whole batch.

    Handing an engine this model (instead of the affine
    :class:`ServiceModel`) enables batched queue drains: a freed broker
    services up to ``max_batch`` scheduling-policy-selected documents in
    one interval of

    ``base + per_doc * documents + per_match * match_operations``

    ``base`` is paid once per *drain* (the amortisation batching buys),
    ``per_doc`` once per document (parsing, delivery bookkeeping), and
    ``match_operations`` is the **measured** op count of the shared-pool
    :meth:`~repro.routing.trie.PatternTrie.match_batch` pass — memo hits
    across the batch's documents are free, so the per-document service
    time is non-affine in batch size exactly as far as the documents
    actually share structure, not as far as a curve assumes they do.
    """

    per_doc: float = 0.05
    #: Most documents one drain may service; 1 degrades to unbatched
    #: drains (still paying ``per_doc``, still matched via the batch
    #: pipeline).
    max_batch: int = 8

    def __post_init__(self) -> None:
        if self.base < 0.0 or self.per_match < 0.0 or self.per_doc < 0.0:
            raise ValueError("service-time coefficients must be >= 0")
        if self.base <= 0.0 and self.per_match <= 0.0 and self.per_doc <= 0.0:
            raise ValueError("service time must be positive")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")

    def service_time(self, match_operations: int) -> float:
        """One document serviced alone — a batch of one."""
        return self.service_time_batch(match_operations, 1)

    def service_time_batch(
        self, match_operations: int, documents: int
    ) -> float:
        """Simulated time to service *documents* jobs in one interval."""
        return (
            self.base
            + self.per_doc * documents
            + self.per_match * match_operations
        )


@dataclass(frozen=True)
class LinkModel:
    """Per-link forwarding latency between neighbouring brokers.

    A constant ``default`` latency, optionally overridden per undirected
    edge: ``LinkModel(1.0, {(0, 1): 5.0})`` makes the 0—1 link five times
    slower in both directions.  Frozen like every engine model: replay
    determinism rests on timing models never drifting between runs.
    """

    default: float = 1.0
    overrides: Optional[dict[tuple[int, int], float]] = None

    def __post_init__(self) -> None:
        if self.default < 0.0:
            raise ValueError("link latency must be >= 0")
        normalised: dict[tuple[int, int], float] = {}
        for (a, b), value in (self.overrides or {}).items():
            if value < 0.0:
                raise ValueError("link latency must be >= 0")
            normalised[(a, b) if a <= b else (b, a)] = value
        object.__setattr__(self, "overrides", normalised)

    def latency(self, a: int, b: int) -> float:
        """Forwarding latency of the undirected link *a*—*b*."""
        assert self.overrides is not None  # normalised in __post_init__
        return self.overrides.get((a, b) if a <= b else (b, a), self.default)


#: Event kinds; arrivals sort before same-instant completions only through
#: their sequence number, keeping the schedule strictly FIFO.
_ARRIVAL = "arrival"
_COMPLETE = "complete"
_TOPOLOGY = "topology"
#: Back-pressure feedback to a :class:`ClosedLoopSource` — rides the same
#: ``(time, seq)`` queue as traffic, so closed-loop runs replay exactly.
_SIGNAL = "signal"


@dataclass(frozen=True)
class TopologyEvent:
    """One scheduled broker join or leave, applied mid-simulation.

    ``action`` is ``"join"`` (graft a broker under *parent*, splitting
    the ``parent — split`` edge when *split* is given) or ``"leave"``
    (retire *broker_id*, merging into *merge_into* or its lowest-id
    neighbour).  The event sits in the same ``(time, seq)``-ordered
    queue as arrivals and completions, so topology churn interleaves
    deterministically with traffic — replays stay bit-identical.
    """

    action: str
    broker_id: Optional[int] = None
    parent: Optional[int] = None
    split: Optional[int] = None
    merge_into: Optional[int] = None

    def __post_init__(self) -> None:
        if self.action not in ("join", "leave"):
            raise ValueError(
                f"unknown topology action {self.action!r}; "
                "choose 'join' or 'leave'"
            )
        if self.action == "join" and self.parent is None:
            raise ValueError("a join event needs a parent broker")
        if self.action == "leave" and self.broker_id is None:
            raise ValueError("a leave event needs the retiring broker id")


@dataclass
class _Job:
    """One document instance travelling the overlay.

    Satisfies the :class:`~repro.routing.policy.QueuedJob` protocol, so
    scheduling policies can read (but never mutate) its timing and class
    attributes.
    """

    document: XMLTree
    doc_index: int
    published_at: float
    #: Link the document arrived over (None at the publish broker).
    origin: Optional[int]
    #: Set when the job reaches a broker; start-of-service minus this is
    #: the job's queue delay there.
    arrived_at: float = 0.0
    #: Subscriber class the publication belongs to — the unit
    #: :class:`~repro.routing.policy.PriorityScheduling` weighs and
    #: per-class latency stats group by.
    priority_class: int = 0
    #: Absolute delivery deadline, if the publisher set one —
    #: :class:`~repro.routing.policy.DeadlineScheduling` orders on it.
    deadline: Optional[float] = None
    #: Index of the :class:`ClosedLoopSource` that published the
    #: document (None for open-loop publishes).  Every forwarded copy
    #: inherits it, so copy deaths feed back to the right window.
    source: Optional[int] = None


@dataclass
class _Batch:
    """One in-service queue drain: the jobs and their filtering steps.

    The completion payload of a batched service interval (only
    :class:`BatchServiceModel` engines create these).  Jobs and steps
    are aligned; deliveries and forwards apply per job at completion,
    exactly as an unbatched job's single step would.
    """

    jobs: list[_Job]
    steps: list[BrokerStep]


@dataclass(frozen=True)
class _Signal:
    """One back-pressure feedback event for an attached source.

    ``kind`` is ``"pump"`` (the source's start trigger), ``"nack"`` (a
    bounded queue rejected one copy of *doc_index*) or ``"done"`` (the
    last in-flight copy of *doc_index* died; ``clean`` tells the source
    whether every copy completed or some were dropped/nacked).
    """

    source: int
    doc_index: int
    kind: str
    clean: bool = True


@dataclass(frozen=True)
class ClosedLoopSource:
    """A window-based (TCP-like AIMD) closed-loop publisher.

    Where :meth:`DeliveryEngine.publish_corpus` injects documents
    open-loop at a fixed rate no matter how far behind the brokers
    fall, a closed-loop source watches its own traffic: it keeps at
    most ``window`` publications outstanding, publishes the next corpus
    document only when the window has room, and adapts the window to
    the back-pressure the overlay reports —

    * a publication is *absorbed* once every in-flight copy has died
      (completed, dropped, or nacked).  A clean absorption (all copies
      completed) grows the window additively:
      ``window += additive_increase / window``;
    * the first NACK for a document multiplicatively shrinks it:
      ``window = max(1, window * decrease_factor)`` — classic AIMD;
    * silent drops (``drop-new`` / ``drop-oldest`` overflow) mark the
      document dirty: no growth on absorption, but no shrink either —
      loss without detection, exactly as an unacknowledged datagram.

    Feedback rides the engine's ``(time, seq)`` event queue, delayed by
    ``feedback_delay``; ``jitter`` adds a seeded uniform gap before
    each publish.  Everything is drawn from ``random.Random(seed)``,
    so closed-loop runs replay bit-identically across processes.
    """

    corpus: DocumentCorpus
    at_broker: int = 0
    start: float = 0.0
    initial_window: float = 1.0
    max_window: float = 64.0
    additive_increase: float = 1.0
    decrease_factor: float = 0.5
    priority_class: int = 0
    deadline_slack: Optional[float] = None
    feedback_delay: float = 0.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.start < 0.0:
            raise ValueError("source start time must be >= 0")
        if self.initial_window < 1.0:
            raise ValueError("initial_window must be >= 1")
        if self.max_window < self.initial_window:
            raise ValueError("max_window must be >= initial_window")
        if self.additive_increase < 0.0:
            raise ValueError("additive_increase must be >= 0")
        if not 0.0 < self.decrease_factor <= 1.0:
            raise ValueError("decrease_factor must be in (0, 1]")
        if self.deadline_slack is not None and self.deadline_slack < 0.0:
            raise ValueError("deadline_slack must be >= 0")
        if self.feedback_delay < 0.0:
            raise ValueError("feedback_delay must be >= 0")
        if self.jitter < 0.0:
            raise ValueError("jitter must be >= 0")


@dataclass(frozen=True)
class SourceReport:
    """Loop outcome of one attached :class:`ClosedLoopSource`.

    ``published``/``pending`` split the corpus into documents injected
    so far and documents still gated behind the window; ``acked``
    counts absorbed publications (``clean_acks`` of them loss-free).
    ``nacked_documents`` is how many distinct publications hit at least
    one NACK (each shrank the window once); ``nack_signals`` counts
    every NACK received.  ``window`` and ``outstanding`` are the loop
    state at report time.
    """

    published: int
    pending: int
    acked: int
    clean_acks: int
    nacked_documents: int
    nack_signals: int
    outstanding: int
    window: float


class _SourceState:
    """Mutable engine-side loop state of one attached source."""

    def __init__(self, index: int, source: ClosedLoopSource) -> None:
        self.index = index
        self.source = source
        self.window: float = source.initial_window
        #: Publications injected but not yet absorbed.
        self.outstanding = 0
        #: Next corpus position to publish.
        self.next_position = 0
        #: Publish indices minted so far, in corpus order.
        self.published: list[int] = []
        self.acked = 0
        self.clean_acks = 0
        self.nack_signals = 0
        #: Documents whose first NACK already shrank the window
        #: (membership tests only — never iterated).
        self.nacked_docs: set[int] = set()
        self.rng = random.Random(source.seed)


class DeliveryEngine:
    """Deterministic discrete-event simulator of overlay delivery.

    Drives documents through *overlay*'s live routing state: publishes
    schedule arrival events, each broker services its FIFO queue one
    document at a time under *service*, and completed services deliver
    locally and forward over *links*.  All state advances through the
    event queue only — identical inputs replay identically.
    """

    def __init__(
        self,
        overlay: BrokerOverlay,
        service: Optional[ServiceModel] = None,
        links: Optional[LinkModel] = None,
        scheduling: Optional[SchedulingSpec] = None,
        queue_policy: QueuePolicySpec = None,
        allow_topology_churn: bool = False,
    ) -> None:
        if overlay.mode is None:
            raise ValueError(
                "no routing state: call advertise() (or the legacy "
                "advertise_subscriptions()/advertise_communities()) "
                "before building an engine"
            )
        self.overlay = overlay
        self.service = service or ServiceModel()
        #: Batched queue drains activate only under a
        #: :class:`BatchServiceModel`; the default affine path replays
        #: event for event as it always has.
        self._batching = isinstance(self.service, BatchServiceModel)
        self.links = links or LinkModel()
        self.scheduling: SchedulingPolicy = resolve_scheduling(
            scheduling if scheduling is not None else "fifo"
        )
        #: Queue admission: the default ``QueuePolicy()`` (unbounded)
        #: replays the pre-overload engine byte-identically; a capacity
        #: activates the drop-new / drop-oldest / nack overflow path.
        self.queue_policy: QueuePolicy = resolve_queue_policy(queue_policy)
        #: Whether :meth:`schedule_join` / :meth:`schedule_leave` are
        #: permitted.  Topology churn mid-simulation re-routes in-flight
        #: documents (their timing restarts at the merge target), so it
        #: is an explicit opt-in — see
        #: ``OverlayBuilder.allow_topology_churn``.
        self.allow_topology_churn = allow_topology_churn
        #: Retired broker id -> its merge target, for translating
        #: forwards whose filtering step pre-dates a leave event.
        self._retired: dict[int, int] = {}
        #: ``(time, event, resulting broker id)`` per applied topology
        #: event — the join entries record the id the overlay minted.
        self.topology_log: list[tuple[float, TopologyEvent, int]] = []
        #: (time, seq, kind, broker_id, payload, step-at-completion);
        #: the payload is the job/batch/topology-event/source-signal the
        #: event applies.
        self._events: list[
            tuple[
                float,
                int,
                str,
                int,
                Union[_Job, _Batch, TopologyEvent, _Signal, None],
                Optional[BrokerStep],
            ]
        ] = []
        self._sequence = 0
        self._queues: dict[int, deque[_Job]] = {
            broker_id: deque() for broker_id in overlay.brokers
        }
        self._busy: dict[int, bool] = {
            broker_id: False for broker_id in overlay.brokers
        }
        self._depth_peaks: dict[int, int] = {
            broker_id: 0 for broker_id in overlay.brokers
        }
        self._busy_time: dict[int, float] = {
            broker_id: 0.0 for broker_id in overlay.brokers
        }
        self._delivered: dict[int, set[int]] = {}
        self._latencies: list[float] = []
        self._latencies_by_class: dict[int, list[float]] = {}
        self._queue_delays: list[float] = []
        self._first_publish: Optional[float] = None
        self._last_event = 0.0
        self._documents = 0
        self._match_operations = 0
        self._forwards = 0
        self._service_batches = 0
        self._serviced_documents = 0
        # -- conservation ledger: every document copy is counted once at
        # birth (publish or forward) and once at death (completion,
        # drop, or nack), so offered == completed + dropped + nacked +
        # in-flight at every drain point, bounded queues or not.
        self._offered_jobs = 0
        self._completed_jobs = 0
        self._dropped_jobs = 0
        self._nacked_jobs = 0
        self._offered_by_class: dict[int, int] = {}
        self._completed_by_class: dict[int, int] = {}
        self._dropped_by_class: dict[int, int] = {}
        self._nacked_by_class: dict[int, int] = {}
        self._dropped_by_broker: dict[int, int] = {}
        #: Per-broker, per-class count of service starts — the share
        #: history :class:`~repro.routing.policy.WeightedFairScheduling`
        #: reads.  Engine-owned so frozen policies stay replay-safe.
        self._class_service: dict[int, dict[int, int]] = {
            broker_id: {} for broker_id in overlay.brokers
        }
        self._sources: list[_SourceState] = []
        #: Per closed-loop-published document: live copy count, and the
        #: set of such documents that lost at least one copy (membership
        #: tests only — never iterated).
        self._outstanding_copies: dict[int, int] = {}
        self._dirty_docs: set[int] = set()

    # ------------------------------------------------------------------
    # workload injection
    # ------------------------------------------------------------------

    def publish(
        self,
        document: XMLTree,
        at_broker: int = 0,
        time: float = 0.0,
        priority_class: int = 0,
        deadline: Optional[float] = None,
    ) -> int:
        """Schedule *document* for publication at *at_broker*.

        ``priority_class`` tags the publication with a subscriber class
        (read by :class:`~repro.routing.policy.PriorityScheduling` and
        reported per class in the stats); ``deadline`` is the absolute
        simulated time the delivery should beat (read by
        :class:`~repro.routing.policy.DeadlineScheduling`).  Both travel
        with every forwarded copy of the document.  Returns the publish
        index identifying the document in :meth:`delivered_sets`.
        """
        return self._publish(
            document,
            at_broker,
            time,
            priority_class=priority_class,
            deadline=deadline,
            source=None,
        )

    def _publish(
        self,
        document: XMLTree,
        at_broker: int,
        time: float,
        priority_class: int,
        deadline: Optional[float],
        source: Optional[int],
    ) -> int:
        if at_broker not in self.overlay.brokers:
            raise ValueError(f"no broker {at_broker}")
        if time < 0.0:
            raise ValueError("publish time must be >= 0")
        if deadline is not None and deadline < time:
            raise ValueError("deadline must not precede the publish time")
        index = self._documents
        self._documents += 1
        self._delivered[index] = set()
        if self._first_publish is None or time < self._first_publish:
            self._first_publish = time
        job = _Job(
            document=document,
            doc_index=index,
            published_at=time,
            origin=None,
            priority_class=priority_class,
            deadline=deadline,
            source=source,
        )
        self._offer(job)
        self._schedule(time, _ARRIVAL, at_broker, job)
        return index

    def _offer(self, job: _Job) -> None:
        """Record the birth of one document copy in the conservation
        ledger."""
        self._offered_jobs += 1
        self._offered_by_class[job.priority_class] = (
            self._offered_by_class.get(job.priority_class, 0) + 1
        )

    def publish_corpus(
        self,
        corpus: DocumentCorpus,
        rate: float,
        publish_at: Union[int, str] = "round_robin",
        start: float = 0.0,
        arrivals: str = "uniform",
        seed: int = 0,
        classes: Union[Sequence[int], Callable[[int], int], None] = None,
        deadline_slack: Optional[float] = None,
    ) -> list[int]:
        """Publish every corpus document at an average *rate* (documents
        per simulated time unit).

        ``publish_at`` is a fixed broker id or ``"round_robin"``, matching
        :meth:`BrokerOverlay.route_corpus`.  ``arrivals`` selects the
        inter-arrival process: ``"uniform"`` spaces publishes exactly
        ``1/rate`` apart, ``"poisson"`` draws exponential gaps from a
        ``random.Random(seed)`` — seeded, so still deterministic.

        ``classes`` assigns each publication its subscriber class: a
        sequence is cycled over the publish positions (``(0, 1, 2)``
        round-robins three classes), a callable is invoked with the
        position.  ``deadline_slack`` gives every publication the
        deadline ``publish time + slack``.  Returns the publish indices.
        """
        if rate <= 0.0:
            raise ValueError("publish rate must be positive")
        if arrivals not in ("uniform", "poisson"):
            raise ValueError(
                f"unknown arrival process {arrivals!r}; "
                "choose 'uniform' or 'poisson'"
            )
        if deadline_slack is not None and deadline_slack < 0.0:
            raise ValueError("deadline_slack must be >= 0")
        if classes is None:
            klass = lambda position: 0  # noqa: E731
        elif callable(classes):
            klass = classes
        else:
            cycle = list(classes)
            if not cycle:
                raise ValueError("classes sequence must not be empty")
            klass = lambda position: cycle[position % len(cycle)]  # noqa: E731
        rng = random.Random(seed)
        time = start
        indices = []
        order = sorted(self.overlay.brokers)
        for position, document in enumerate(corpus.documents):
            if publish_at == "round_robin":
                source = order[position % len(order)]
            else:
                source = int(publish_at)
            indices.append(
                self.publish(
                    document,
                    source,
                    time,
                    priority_class=klass(position),
                    deadline=(
                        None
                        if deadline_slack is None
                        else time + deadline_slack
                    ),
                )
            )
            if arrivals == "poisson":
                time += rng.expovariate(rate)
            else:
                time += 1.0 / rate
        return indices

    def attach_source(self, source: ClosedLoopSource) -> int:
        """Register a :class:`ClosedLoopSource` and return its index.

        The source starts pumping at ``source.start`` through a signal
        event on the engine's queue — publishing, window updates, and
        feedback all happen inside the deterministic event loop.  The
        returned index identifies the source in :meth:`source_report`
        (and ties the loop's publications to it internally).
        """
        if source.at_broker not in self.overlay.brokers:
            raise ValueError(f"no broker {source.at_broker}")
        index = len(self._sources)
        self._sources.append(_SourceState(index, source))
        self._schedule(
            source.start, _SIGNAL, -1, _Signal(index, -1, "pump")
        )
        return index

    def source_report(self, index: int) -> SourceReport:
        """The :class:`SourceReport` of attached source *index*."""
        if not 0 <= index < len(self._sources):
            raise ValueError(f"no attached source {index}")
        state = self._sources[index]
        return SourceReport(
            published=len(state.published),
            pending=len(state.source.corpus.documents) - state.next_position,
            acked=state.acked,
            clean_acks=state.clean_acks,
            nacked_documents=len(state.nacked_docs),
            nack_signals=state.nack_signals,
            outstanding=state.outstanding,
            window=state.window,
        )

    def _pump_source(self, state: _SourceState, now: float) -> None:
        """Publish corpus documents while the source's window has room."""
        source = state.source
        documents = source.corpus.documents
        while (
            state.next_position < len(documents)
            and state.outstanding < state.window
        ):
            document = documents[state.next_position]
            state.next_position += 1
            gap = (
                state.rng.uniform(0.0, source.jitter)
                if source.jitter > 0.0
                else 0.0
            )
            time = now + gap
            index = self._publish(
                document,
                self._resolve_broker(source.at_broker),
                time,
                priority_class=source.priority_class,
                deadline=(
                    None
                    if source.deadline_slack is None
                    else time + source.deadline_slack
                ),
                source=state.index,
            )
            state.published.append(index)
            state.outstanding += 1
            self._outstanding_copies[index] = 1

    def _on_signal(self, signal: _Signal, now: float) -> None:
        """Apply one feedback event to its source's AIMD loop, then let
        the source publish into whatever window room resulted."""
        state = self._sources[signal.source]
        source = state.source
        if signal.kind == "nack":
            state.nack_signals += 1
            if signal.doc_index not in state.nacked_docs:
                # Multiplicative decrease, once per document no matter
                # how many of its copies bounce.
                state.nacked_docs.add(signal.doc_index)
                state.window = max(
                    1.0, state.window * source.decrease_factor
                )
        elif signal.kind == "done":
            state.outstanding -= 1
            state.acked += 1
            if signal.clean:
                state.clean_acks += 1
                state.window = min(
                    source.max_window,
                    state.window
                    + source.additive_increase / max(1.0, state.window),
                )
        self._pump_source(state, now)

    # ------------------------------------------------------------------
    # topology churn
    # ------------------------------------------------------------------

    def schedule_topology(self, time: float, event: TopologyEvent) -> None:
        """Queue a broker join/leave for simulated instant *time*.

        Requires ``allow_topology_churn=True`` (see
        ``OverlayBuilder.allow_topology_churn``): applying a leave
        mid-simulation re-routes the retiring broker's queued and
        in-service documents to the merge target — nothing is lost, but
        their service restarts there, which is a timing semantics the
        caller must opt into.  The event is applied by :meth:`run` in
        ``(time, seq)`` order like any other event; the outcome (for a
        join, the minted broker id) is recorded in
        :attr:`topology_log`.
        """
        if not self.allow_topology_churn:
            raise ValueError(
                "topology churn is disabled for this engine; construct "
                "it with allow_topology_churn=True (or via "
                "OverlayBuilder.allow_topology_churn())"
            )
        if time < 0.0:
            raise ValueError("topology event time must be >= 0")
        self._schedule(time, _TOPOLOGY, -1, event)

    def schedule_join(
        self,
        time: float,
        parent: int,
        split: Optional[int] = None,
    ) -> None:
        """Queue an ``add_broker(parent, split=split)`` at *time*."""
        self.schedule_topology(
            time, TopologyEvent(action="join", parent=parent, split=split)
        )

    def schedule_leave(
        self,
        time: float,
        broker_id: int,
        merge_into: Optional[int] = None,
    ) -> None:
        """Queue a ``remove_broker(broker_id, merge_into=...)`` at
        *time*."""
        self.schedule_topology(
            time,
            TopologyEvent(
                action="leave", broker_id=broker_id, merge_into=merge_into
            ),
        )

    def _on_topology(self, event: TopologyEvent, now: float) -> None:
        """Apply one scheduled join/leave to the overlay and the engine.

        A join simply equips the newcomer with an empty service queue.
        A leave re-routes every in-flight document the retiring broker
        owned: its queued documents and the one in service arrive at the
        merge target *now* (service restarts — the aborted service time
        is credited back to the retiring broker's busy time), copies
        already on the wire towards it are re-targeted at their original
        arrival instants, and documents elsewhere that arrived over a
        link from the retiring broker have their origin re-pointed at
        the merge target, matching the renamed reverse-path state.
        Delivered subscriber sets are unaffected: re-routed documents
        may revisit brokers, but deliveries deduplicate per publish.

        Events are scheduled ahead of time, so by their instant an
        earlier leave may have retired a broker they name.  Ids are
        resolved through the merge chain (a join under a retired parent
        grafts under its merge target), stale edge references degrade
        gracefully (a vanished split edge grafts a plain leaf, a
        retired or detached merge target falls back to the default),
        and a leave for an already-retired broker is a recorded no-op —
        the simulation never aborts with events still pending.
        """
        if event.action == "join":
            parent = self._resolve_broker(event.parent)
            split = None
            if event.split is not None:
                split = self._resolve_broker(event.split)
                if (
                    split == parent
                    or split not in self.overlay.brokers[parent].neighbors
                ):
                    split = None
            new_id = int(self.overlay.add_broker(parent, split=split))
            self._ensure_broker(new_id)
            self.topology_log.append((now, event, new_id))
            return
        retiring = event.broker_id
        if retiring in self._retired:
            # An earlier scheduled leave already merged it away.
            self.topology_log.append(
                (now, event, self._resolve_broker(retiring))
            )
            return
        merge_into = event.merge_into
        if merge_into is not None:
            merge_into = self._resolve_broker(merge_into)
            if (
                merge_into == retiring
                or merge_into
                not in self.overlay.brokers[retiring].neighbors
            ):
                merge_into = None
        target = int(
            self.overlay.remove_broker(retiring, merge_into=merge_into)
        )
        self._retired[retiring] = target
        reinject: list[_Job] = list(self._queues.pop(retiring, ()))
        self._busy.pop(retiring, None)
        self._class_service.pop(retiring, None)
        retained = []
        for entry in self._events:
            time, seq, kind, broker_id, payload, step = entry
            if isinstance(payload, _Job) and payload.origin == retiring:
                payload.origin = target
            elif isinstance(payload, _Batch):
                for job in payload.jobs:
                    if job.origin == retiring:
                        job.origin = target
            if kind == _TOPOLOGY or broker_id != retiring:
                retained.append(entry)
            elif kind == _ARRIVAL:
                retained.append(
                    (time, seq, _ARRIVAL, target, payload, None)
                )
            else:
                # The document (or whole batch) in service: the work is
                # abandoned where it stood and the service restarts at
                # the merge target.
                self._busy_time[retiring] -= time - now
                if isinstance(payload, _Batch):
                    reinject.extend(payload.jobs)
                else:
                    reinject.append(payload)
        self._events = retained
        heapq.heapify(self._events)
        for queue in self._queues.values():
            for job in queue:
                if job.origin == retiring:
                    job.origin = target
        for job in reinject:
            self._schedule(now, _ARRIVAL, target, job)
        self.topology_log.append((now, event, target))

    def _resolve_broker(self, broker_id: int) -> int:
        """Follow the merge chain of retired brokers to a live one."""
        while broker_id in self._retired:
            broker_id = self._retired[broker_id]
        return broker_id

    def _ensure_broker(self, broker_id: int) -> None:
        """Create engine-side state for a broker on first use.

        Covers brokers the overlay gained *after* this engine was built
        — whether through a scheduled join event or an out-of-band
        ``add_broker`` call between construction and :meth:`run`.
        (Out-of-band *removals* have no merge record here; retire
        brokers through :meth:`schedule_leave` while a simulation owns
        in-flight documents.)
        """
        if broker_id not in self._queues:
            self._queues[broker_id] = deque()
            self._busy[broker_id] = False
            self._depth_peaks[broker_id] = 0
            self._busy_time[broker_id] = 0.0
            self._class_service[broker_id] = {}

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------

    def _schedule(
        self,
        time: float,
        kind: str,
        broker_id: int,
        job: Union[_Job, _Batch, TopologyEvent, _Signal],
        step: Optional[BrokerStep] = None,
    ) -> None:
        self._sequence += 1
        heapq.heappush(
            self._events, (time, self._sequence, kind, broker_id, job, step)
        )

    def _next_job(self, broker_id: int, now: float) -> Optional[_Job]:
        """Pick the next queued document at *broker_id*.

        Delegates to the engine's
        :class:`~repro.routing.policy.SchedulingPolicy` — the queue is
        presented oldest-arrival-first and the policy answers with the
        position to service next, so disciplines never touch the event
        loop.
        """
        queue = self._queues[broker_id]
        if not queue:
            return None
        if self.scheduling.uses_service_shares:
            choice = self.scheduling.select_shares(
                queue, now, self._class_service.setdefault(broker_id, {})
            )
        else:
            choice = self.scheduling.select(queue, now)
        if not 0 <= choice < len(queue):
            raise ValueError(
                f"{type(self.scheduling).__name__}.select returned "
                f"position {choice} for a queue of {len(queue)}"
            )
        job = queue[choice]
        del queue[choice]
        self._account_service(broker_id, job)
        return job

    def _account_service(self, broker_id: int, job: _Job) -> None:
        """Charge one service start to the broker's per-class share
        history (what :meth:`_next_job` hands share-aware policies);
        selections within one batched drain see each other's charges."""
        shares = self._class_service.setdefault(broker_id, {})
        shares[job.priority_class] = shares.get(job.priority_class, 0) + 1

    def _next_batch(self, broker_id: int, now: float) -> list[_Job]:
        """Drain up to ``max_batch`` jobs for one batched service
        interval, one :meth:`_next_job` policy selection per job — the
        scheduling discipline shapes the batch exactly as it shapes the
        one-at-a-time schedule."""
        limit = self.service.max_batch if self._batching else 1
        jobs: list[_Job] = []
        while len(jobs) < limit:
            job = self._next_job(broker_id, now)
            if job is None:
                break
            jobs.append(job)
        return jobs

    def _start_service(self, broker_id: int, job: _Job, now: float) -> None:
        self._busy[broker_id] = True
        self._queue_delays.append(now - job.arrived_at)
        self._serviced_documents += 1
        self._service_batches += 1
        step = self.overlay.process_at(broker_id, job.document, job.origin)
        self._match_operations += step.match_operations
        duration = self.service.service_time(step.match_operations)
        self._busy_time[broker_id] += duration
        self._schedule(now + duration, _COMPLETE, broker_id, job, step)

    def _start_batch(
        self, broker_id: int, jobs: list[_Job], now: float
    ) -> None:
        """Service *jobs* in one batched interval: one shared-pool
        filtering pass, one completion event, a duration read off the
        measured batch op count."""
        self._busy[broker_id] = True
        for job in jobs:
            self._queue_delays.append(now - job.arrived_at)
        self._serviced_documents += len(jobs)
        self._service_batches += 1
        steps = self.overlay.process_batch_at(
            broker_id,
            [job.document for job in jobs],
            [job.origin for job in jobs],
        )
        operations = sum(step.match_operations for step in steps)
        self._match_operations += operations
        duration = self.service.service_time_batch(operations, len(jobs))
        self._busy_time[broker_id] += duration
        self._schedule(
            now + duration, _COMPLETE, broker_id, _Batch(jobs, steps)
        )

    def _on_arrival(self, broker_id: int, job: _Job, now: float) -> None:
        self._ensure_broker(broker_id)
        job.arrived_at = now
        if self._busy[broker_id] and not self.queue_policy.admits(
            len(self._queues[broker_id])
        ):
            self._on_overflow(broker_id, job, now)
            return
        depth = len(self._queues[broker_id]) + (
            1 if self._busy[broker_id] else 0
        ) + 1
        if depth > self._depth_peaks[broker_id]:
            self._depth_peaks[broker_id] = depth
        if self._busy[broker_id]:
            self._queues[broker_id].append(job)
        elif self._batching:
            self._account_service(broker_id, job)
            self._start_batch(broker_id, [job], now)
        else:
            self._account_service(broker_id, job)
            self._start_service(broker_id, job, now)

    def _on_overflow(self, broker_id: int, job: _Job, now: float) -> None:
        """Resolve one arrival at a full queue per the queue policy.

        ``drop-new`` discards the arriving copy; ``drop-oldest`` evicts
        the longest-queued copy to admit the arrival (at ``capacity=0``
        there is nothing queued to evict, so it degrades to dropping
        the arrival); ``nack`` rejects the arrival and, when the copy
        belongs to a closed-loop source, schedules the back-pressure
        signal the source's window reacts to.  The queue-depth peak
        never moves here: occupancy is at its bound already.
        """
        queue = self._queues[broker_id]
        if self.queue_policy.overflow == "nack":
            self._record_nack(broker_id, job, now)
        elif self.queue_policy.overflow == "drop-oldest" and queue:
            victim = queue.popleft()
            self._record_drop(broker_id, victim, now)
            queue.append(job)
        else:
            self._record_drop(broker_id, job, now)

    def _record_drop(self, broker_id: int, job: _Job, now: float) -> None:
        """Account the silent death of one document copy at
        *broker_id*."""
        self._dropped_jobs += 1
        self._dropped_by_class[job.priority_class] = (
            self._dropped_by_class.get(job.priority_class, 0) + 1
        )
        self._dropped_by_broker[broker_id] = (
            self._dropped_by_broker.get(broker_id, 0) + 1
        )
        self._copy_dead(job, now, clean=False)

    def _record_nack(self, broker_id: int, job: _Job, now: float) -> None:
        """Account one rejected copy and signal its source, if any."""
        self._nacked_jobs += 1
        self._nacked_by_class[job.priority_class] = (
            self._nacked_by_class.get(job.priority_class, 0) + 1
        )
        if job.source is not None:
            delay = self._sources[job.source].source.feedback_delay
            self._schedule(
                now + delay,
                _SIGNAL,
                -1,
                _Signal(job.source, job.doc_index, "nack"),
            )
        self._copy_dead(job, now, clean=False)

    def _copy_dead(self, job: _Job, now: float, clean: bool) -> None:
        """Retire one copy of a closed-loop document; when the last
        copy dies, schedule the source's absorption ("done") signal."""
        if job.source is None:
            return
        if not clean:
            self._dirty_docs.add(job.doc_index)
        remaining = self._outstanding_copies[job.doc_index] - 1
        self._outstanding_copies[job.doc_index] = remaining
        if remaining > 0:
            return
        del self._outstanding_copies[job.doc_index]
        delay = self._sources[job.source].source.feedback_delay
        self._schedule(
            now + delay,
            _SIGNAL,
            -1,
            _Signal(
                job.source,
                job.doc_index,
                "done",
                clean=job.doc_index not in self._dirty_docs,
            ),
        )

    def _deliver_and_forward(
        self, broker_id: int, job: _Job, step: BrokerStep, now: float
    ) -> None:
        """Apply one job's completed filtering step: local deliveries
        and forwarded copies."""
        delivered = self._delivered[job.doc_index]
        for subscriber_id in sorted(step.deliveries):
            if subscriber_id in delivered:
                # A document re-routed by topology churn may revisit a
                # broker; only the first delivery to each subscriber
                # counts — in the sets and in the latency samples.
                continue
            delivered.add(subscriber_id)
            self._latencies.append(now - job.published_at)
            self._latencies_by_class.setdefault(
                job.priority_class, []
            ).append(now - job.published_at)
        for neighbor in step.forwards:
            self._forwards += 1
            # A filtering step computed before a leave event may still
            # name the retired broker; the copy goes to its merge target.
            destination = self._resolve_broker(neighbor)
            forwarded = _Job(
                document=job.document,
                doc_index=job.doc_index,
                published_at=job.published_at,
                origin=broker_id,
                priority_class=job.priority_class,
                deadline=job.deadline,
                source=job.source,
            )
            self._offer(forwarded)
            if job.source is not None:
                # Forwarded copies are born before the serviced copy
                # dies below, so absorption can't fire spuriously.
                self._outstanding_copies[job.doc_index] += 1
            self._schedule(
                now + self.links.latency(broker_id, destination),
                _ARRIVAL,
                destination,
                forwarded,
            )
        self._completed_jobs += 1
        self._completed_by_class[job.priority_class] = (
            self._completed_by_class.get(job.priority_class, 0) + 1
        )
        self._copy_dead(job, now, clean=True)

    def _finish_service(self, broker_id: int, now: float) -> None:
        """Free the broker and start its next service interval."""
        self._busy[broker_id] = False
        pending = self._next_batch(broker_id, now)
        if pending:
            if self._batching:
                self._start_batch(broker_id, pending, now)
            else:
                self._start_service(broker_id, pending[0], now)

    def _on_complete(
        self, broker_id: int, job: _Job, step: BrokerStep, now: float
    ) -> None:
        self._deliver_and_forward(broker_id, job, step, now)
        self._finish_service(broker_id, now)

    def _on_complete_batch(
        self, broker_id: int, batch: _Batch, now: float
    ) -> None:
        for job, step in zip(batch.jobs, batch.steps, strict=True):
            self._deliver_and_forward(broker_id, job, step, now)
        self._finish_service(broker_id, now)

    def run(self) -> LatencyStats:
        """Process every pending event and report the timing outcome.

        Incremental: more publishes may follow and ``run`` may be called
        again; stats always cover everything processed so far.
        """
        while self._events:
            time, _, kind, broker_id, job, step = heapq.heappop(self._events)
            self._last_event = max(self._last_event, time)
            if kind == _TOPOLOGY:
                self._on_topology(job, time)
            elif kind == _SIGNAL:
                self._on_signal(job, time)
            elif kind == _ARRIVAL:
                self._on_arrival(broker_id, job, time)
            elif isinstance(job, _Batch):
                self._on_complete_batch(broker_id, job, time)
            else:
                assert step is not None
                self._on_complete(broker_id, job, step, time)
        return self.stats()

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def delivered_sets(self) -> dict[int, frozenset[int]]:
        """Per publish index, the subscriber ids delivered to so far."""
        return {
            index: frozenset(delivered)
            for index, delivered in self._delivered.items()
        }

    def stats(self) -> LatencyStats:
        """The :class:`LatencyStats` of everything processed so far."""
        start = self._first_publish or 0.0
        makespan = max(0.0, self._last_event - start)
        latencies = sorted(self._latencies)
        delays = sorted(self._queue_delays)
        return LatencyStats(
            documents=self._documents,
            deliveries=len(latencies),
            makespan=makespan,
            latency_p50=ordered_percentile(latencies, 50.0),
            latency_p95=ordered_percentile(latencies, 95.0),
            latency_p99=ordered_percentile(latencies, 99.0),
            latency_mean=(
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            latency_max=latencies[-1] if latencies else 0.0,
            queue_delay_mean=(
                sum(delays) / len(delays) if delays else 0.0
            ),
            queue_delay_p95=ordered_percentile(delays, 95.0),
            queue_delay_max=delays[-1] if delays else 0.0,
            queue_depth_peaks=dict(self._depth_peaks),
            busy_time=dict(self._busy_time),
            match_operations=self._match_operations,
            forwards=self._forwards,
            service_batches=self._service_batches,
            serviced_documents=self._serviced_documents,
            latency_by_class={
                priority_class: ClassLatency.of(samples)
                for priority_class, samples in sorted(
                    self._latencies_by_class.items()
                )
            },
            offered_jobs=self._offered_jobs,
            completed_jobs=self._completed_jobs,
            dropped_jobs=self._dropped_jobs,
            nacked_jobs=self._nacked_jobs,
            offered_by_class=dict(sorted(self._offered_by_class.items())),
            completed_by_class=dict(
                sorted(self._completed_by_class.items())
            ),
            dropped_by_class=dict(sorted(self._dropped_by_class.items())),
            nacked_by_class=dict(sorted(self._nacked_by_class.items())),
            dropped_by_broker=dict(
                sorted(self._dropped_by_broker.items())
            ),
        )

    def __repr__(self) -> str:
        return (
            f"DeliveryEngine(brokers={len(self.overlay.brokers)}, "
            f"documents={self._documents}, pending={len(self._events)})"
        )
