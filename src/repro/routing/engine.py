"""Discrete-event delivery engine over the broker overlay.

The synchronous :meth:`~repro.routing.overlay.BrokerOverlay.route` walk
answers *where* documents go; under heavy traffic the operational question
is *when* they arrive.  This module replays the exact same broker-local
filtering steps (:meth:`~repro.routing.overlay.BrokerOverlay.process_at`)
through a deterministic discrete-event simulation:

* a single global event queue, ordered by ``(time, sequence number)`` so
  ties resolve in scheduling order — replays are bit-identical under a
  fixed seed, with no wall clock anywhere;
* one FIFO service queue per broker: a broker services one document at a
  time, and the service duration is a configurable function of the match
  operations the filtering step performs (:class:`ServiceModel`) — the
  direct coupling between routing-table size and queueing delay that the
  paper's community aggregation is meant to relieve;
* per-link forwarding latencies (:class:`LinkModel`) between neighbouring
  brokers.

Because the engine consumes ``process_at`` unchanged, it delivers exactly
the subscriber sets the synchronous path delivers (the equivalence is
property-tested); what it adds is the timing dimension —
publication-to-delivery latency percentiles, per-broker queue-depth peaks
and utilisation, and end-to-end throughput, reported as a
:class:`~repro.routing.broker.LatencyStats`.

The queueing discipline is a first-class
:class:`~repro.routing.policy.SchedulingPolicy`: the engine asks the
policy which queued document a freed broker services next, so FIFO
(:class:`~repro.routing.policy.FifoScheduling`, the default), strict
priority by subscriber class
(:class:`~repro.routing.policy.PriorityScheduling`) and earliest deadline
first (:class:`~repro.routing.policy.DeadlineScheduling`) are swappable
without subclassing.  Publishes may carry a ``priority_class`` and a
``deadline``; :class:`~repro.routing.broker.LatencyStats` then reports
per-class latency percentiles, the fairness-vs-tail-latency axis a
scheduling policy trades on.

The broker tree itself may churn mid-simulation: a :class:`TopologyEvent`
(scheduled through :meth:`DeliveryEngine.schedule_join` /
:meth:`DeliveryEngine.schedule_leave`, gated by the explicit
``allow_topology_churn`` opt-in) applies ``BrokerOverlay.add_broker`` /
``remove_broker`` at its simulated instant, in the same deterministic
``(time, seq)`` order as every other event.  A leave re-routes the
retiring broker's in-flight documents to its merge target — queued and
in-service work restarts there, copies already on the wire are
re-targeted — so no publication loses deliveries to topology churn
(delivery sets deduplicate per publish).

Batching at saturated brokers is first-class, not an extension point:
constructing the engine with a :class:`BatchServiceModel` switches every
broker to *batched queue drains* — when a broker frees up, the
scheduling policy picks up to ``max_batch`` queued documents (one
``select`` call per document, so priority/deadline disciplines shape the
batch exactly as they shape the one-at-a-time schedule) and the whole
batch is filtered in one
:meth:`~repro.routing.overlay.BrokerOverlay.process_batch_at` pass over
a shared trie memo pool.  The service interval then costs
``base + per_doc·documents + per_match·operations`` where *operations*
is the **measured** memo-amortised batch count — the non-affine
service curve is observed from the matching layer, never modelled.
Under the default affine :class:`ServiceModel` the engine's schedule is
unchanged, event for event.

Remaining extension points: subclass :class:`ServiceModel` /
:class:`BatchServiceModel` for other service-time shapes (e.g.
load-dependent coefficients), subclass :class:`LinkModel` for
heterogeneous or load-dependent links, and implement
:class:`~repro.routing.policy.SchedulingPolicy` for bespoke
disciplines.

>>> # engine = DeliveryEngine(overlay, scheduling=PriorityScheduling())
>>> # engine.publish_corpus(corpus, rate=2.0, classes=(0, 1, 2))
>>> # stats = engine.run()          # LatencyStats, incl. latency_by_class
>>> # engine.delivered_sets()       # per published document, for checking
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

from repro.routing.broker import ClassLatency, LatencyStats, ordered_percentile
from repro.routing.overlay import BrokerOverlay, BrokerStep
from repro.routing.policy import (
    SchedulingPolicy,
    SchedulingSpec,
    resolve_scheduling,
)
from repro.xmltree.corpus import DocumentCorpus
from repro.xmltree.tree import XMLTree

__all__ = [
    "ServiceModel",
    "BatchServiceModel",
    "LinkModel",
    "DeliveryEngine",
    "TopologyEvent",
]


@dataclass(frozen=True)
class ServiceModel:
    """Broker service time as an affine function of filtering work.

    ``base`` is the fixed per-document handling cost (parsing, queue
    management); ``per_match`` the cost of one filtering operation in the
    broker's matching mode — a trie operation (node-candidate test,
    branch evaluation, gate check) under the default merged-trie tables,
    or one pattern-vs-document evaluation under the ``"linear"``
    per-pattern oracle.  Community aggregation shrinks routing tables and
    trie matching makes each table sublinear to filter, both of which
    shrink match operations, hence service time — exactly the knobs this
    model exposes to the latency benchmark.
    """

    base: float = 0.2
    per_match: float = 0.05

    def __post_init__(self) -> None:
        if self.base < 0.0 or self.per_match < 0.0:
            raise ValueError("service-time coefficients must be >= 0")
        if self.base <= 0.0 and self.per_match <= 0.0:
            raise ValueError("service time must be positive")

    def service_time(self, match_operations: int) -> float:
        """Simulated time to service one document at one broker."""
        return self.base + self.per_match * match_operations


@dataclass(frozen=True)
class BatchServiceModel(ServiceModel):
    """Batched broker service: one interval drains a whole batch.

    Handing an engine this model (instead of the affine
    :class:`ServiceModel`) enables batched queue drains: a freed broker
    services up to ``max_batch`` scheduling-policy-selected documents in
    one interval of

    ``base + per_doc * documents + per_match * match_operations``

    ``base`` is paid once per *drain* (the amortisation batching buys),
    ``per_doc`` once per document (parsing, delivery bookkeeping), and
    ``match_operations`` is the **measured** op count of the shared-pool
    :meth:`~repro.routing.trie.PatternTrie.match_batch` pass — memo hits
    across the batch's documents are free, so the per-document service
    time is non-affine in batch size exactly as far as the documents
    actually share structure, not as far as a curve assumes they do.
    """

    per_doc: float = 0.05
    #: Most documents one drain may service; 1 degrades to unbatched
    #: drains (still paying ``per_doc``, still matched via the batch
    #: pipeline).
    max_batch: int = 8

    def __post_init__(self) -> None:
        if self.base < 0.0 or self.per_match < 0.0 or self.per_doc < 0.0:
            raise ValueError("service-time coefficients must be >= 0")
        if self.base <= 0.0 and self.per_match <= 0.0 and self.per_doc <= 0.0:
            raise ValueError("service time must be positive")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")

    def service_time(self, match_operations: int) -> float:
        """One document serviced alone — a batch of one."""
        return self.service_time_batch(match_operations, 1)

    def service_time_batch(
        self, match_operations: int, documents: int
    ) -> float:
        """Simulated time to service *documents* jobs in one interval."""
        return (
            self.base
            + self.per_doc * documents
            + self.per_match * match_operations
        )


@dataclass(frozen=True)
class LinkModel:
    """Per-link forwarding latency between neighbouring brokers.

    A constant ``default`` latency, optionally overridden per undirected
    edge: ``LinkModel(1.0, {(0, 1): 5.0})`` makes the 0—1 link five times
    slower in both directions.  Frozen like every engine model: replay
    determinism rests on timing models never drifting between runs.
    """

    default: float = 1.0
    overrides: Optional[dict[tuple[int, int], float]] = None

    def __post_init__(self) -> None:
        if self.default < 0.0:
            raise ValueError("link latency must be >= 0")
        normalised: dict[tuple[int, int], float] = {}
        for (a, b), value in (self.overrides or {}).items():
            if value < 0.0:
                raise ValueError("link latency must be >= 0")
            normalised[(a, b) if a <= b else (b, a)] = value
        object.__setattr__(self, "overrides", normalised)

    def latency(self, a: int, b: int) -> float:
        """Forwarding latency of the undirected link *a*—*b*."""
        assert self.overrides is not None  # normalised in __post_init__
        return self.overrides.get((a, b) if a <= b else (b, a), self.default)


#: Event kinds; arrivals sort before same-instant completions only through
#: their sequence number, keeping the schedule strictly FIFO.
_ARRIVAL = "arrival"
_COMPLETE = "complete"
_TOPOLOGY = "topology"


@dataclass(frozen=True)
class TopologyEvent:
    """One scheduled broker join or leave, applied mid-simulation.

    ``action`` is ``"join"`` (graft a broker under *parent*, splitting
    the ``parent — split`` edge when *split* is given) or ``"leave"``
    (retire *broker_id*, merging into *merge_into* or its lowest-id
    neighbour).  The event sits in the same ``(time, seq)``-ordered
    queue as arrivals and completions, so topology churn interleaves
    deterministically with traffic — replays stay bit-identical.
    """

    action: str
    broker_id: Optional[int] = None
    parent: Optional[int] = None
    split: Optional[int] = None
    merge_into: Optional[int] = None

    def __post_init__(self) -> None:
        if self.action not in ("join", "leave"):
            raise ValueError(
                f"unknown topology action {self.action!r}; "
                "choose 'join' or 'leave'"
            )
        if self.action == "join" and self.parent is None:
            raise ValueError("a join event needs a parent broker")
        if self.action == "leave" and self.broker_id is None:
            raise ValueError("a leave event needs the retiring broker id")


@dataclass
class _Job:
    """One document instance travelling the overlay.

    Satisfies the :class:`~repro.routing.policy.QueuedJob` protocol, so
    scheduling policies can read (but never mutate) its timing and class
    attributes.
    """

    document: XMLTree
    doc_index: int
    published_at: float
    #: Link the document arrived over (None at the publish broker).
    origin: Optional[int]
    #: Set when the job reaches a broker; start-of-service minus this is
    #: the job's queue delay there.
    arrived_at: float = 0.0
    #: Subscriber class the publication belongs to — the unit
    #: :class:`~repro.routing.policy.PriorityScheduling` weighs and
    #: per-class latency stats group by.
    priority_class: int = 0
    #: Absolute delivery deadline, if the publisher set one —
    #: :class:`~repro.routing.policy.DeadlineScheduling` orders on it.
    deadline: Optional[float] = None


@dataclass
class _Batch:
    """One in-service queue drain: the jobs and their filtering steps.

    The completion payload of a batched service interval (only
    :class:`BatchServiceModel` engines create these).  Jobs and steps
    are aligned; deliveries and forwards apply per job at completion,
    exactly as an unbatched job's single step would.
    """

    jobs: list[_Job]
    steps: list[BrokerStep]


class DeliveryEngine:
    """Deterministic discrete-event simulator of overlay delivery.

    Drives documents through *overlay*'s live routing state: publishes
    schedule arrival events, each broker services its FIFO queue one
    document at a time under *service*, and completed services deliver
    locally and forward over *links*.  All state advances through the
    event queue only — identical inputs replay identically.
    """

    def __init__(
        self,
        overlay: BrokerOverlay,
        service: Optional[ServiceModel] = None,
        links: Optional[LinkModel] = None,
        scheduling: Optional[SchedulingSpec] = None,
        allow_topology_churn: bool = False,
    ) -> None:
        if overlay.mode is None:
            raise ValueError(
                "no routing state: call advertise() (or the legacy "
                "advertise_subscriptions()/advertise_communities()) "
                "before building an engine"
            )
        self.overlay = overlay
        self.service = service or ServiceModel()
        #: Batched queue drains activate only under a
        #: :class:`BatchServiceModel`; the default affine path replays
        #: event for event as it always has.
        self._batching = isinstance(self.service, BatchServiceModel)
        self.links = links or LinkModel()
        self.scheduling: SchedulingPolicy = resolve_scheduling(
            scheduling if scheduling is not None else "fifo"
        )
        #: Whether :meth:`schedule_join` / :meth:`schedule_leave` are
        #: permitted.  Topology churn mid-simulation re-routes in-flight
        #: documents (their timing restarts at the merge target), so it
        #: is an explicit opt-in — see
        #: ``OverlayBuilder.allow_topology_churn``.
        self.allow_topology_churn = allow_topology_churn
        #: Retired broker id -> its merge target, for translating
        #: forwards whose filtering step pre-dates a leave event.
        self._retired: dict[int, int] = {}
        #: ``(time, event, resulting broker id)`` per applied topology
        #: event — the join entries record the id the overlay minted.
        self.topology_log: list[tuple[float, TopologyEvent, int]] = []
        #: (time, seq, kind, broker_id, job-or-topology-event,
        #: step-at-completion)
        self._events: list[
            tuple[
                float,
                int,
                str,
                int,
                Union[_Job, _Batch, TopologyEvent, None],
                Optional[BrokerStep],
            ]
        ] = []
        self._sequence = 0
        self._queues: dict[int, deque[_Job]] = {
            broker_id: deque() for broker_id in overlay.brokers
        }
        self._busy: dict[int, bool] = {
            broker_id: False for broker_id in overlay.brokers
        }
        self._depth_peaks: dict[int, int] = {
            broker_id: 0 for broker_id in overlay.brokers
        }
        self._busy_time: dict[int, float] = {
            broker_id: 0.0 for broker_id in overlay.brokers
        }
        self._delivered: dict[int, set[int]] = {}
        self._latencies: list[float] = []
        self._latencies_by_class: dict[int, list[float]] = {}
        self._queue_delays: list[float] = []
        self._first_publish: Optional[float] = None
        self._last_event = 0.0
        self._documents = 0
        self._match_operations = 0
        self._forwards = 0
        self._service_batches = 0
        self._serviced_documents = 0

    # ------------------------------------------------------------------
    # workload injection
    # ------------------------------------------------------------------

    def publish(
        self,
        document: XMLTree,
        at_broker: int = 0,
        time: float = 0.0,
        priority_class: int = 0,
        deadline: Optional[float] = None,
    ) -> int:
        """Schedule *document* for publication at *at_broker*.

        ``priority_class`` tags the publication with a subscriber class
        (read by :class:`~repro.routing.policy.PriorityScheduling` and
        reported per class in the stats); ``deadline`` is the absolute
        simulated time the delivery should beat (read by
        :class:`~repro.routing.policy.DeadlineScheduling`).  Both travel
        with every forwarded copy of the document.  Returns the publish
        index identifying the document in :meth:`delivered_sets`.
        """
        if at_broker not in self.overlay.brokers:
            raise ValueError(f"no broker {at_broker}")
        if time < 0.0:
            raise ValueError("publish time must be >= 0")
        if deadline is not None and deadline < time:
            raise ValueError("deadline must not precede the publish time")
        index = self._documents
        self._documents += 1
        self._delivered[index] = set()
        if self._first_publish is None or time < self._first_publish:
            self._first_publish = time
        job = _Job(
            document=document,
            doc_index=index,
            published_at=time,
            origin=None,
            priority_class=priority_class,
            deadline=deadline,
        )
        self._schedule(time, _ARRIVAL, at_broker, job)
        return index

    def publish_corpus(
        self,
        corpus: DocumentCorpus,
        rate: float,
        publish_at: Union[int, str] = "round_robin",
        start: float = 0.0,
        arrivals: str = "uniform",
        seed: int = 0,
        classes: Union[Sequence[int], Callable[[int], int], None] = None,
        deadline_slack: Optional[float] = None,
    ) -> list[int]:
        """Publish every corpus document at an average *rate* (documents
        per simulated time unit).

        ``publish_at`` is a fixed broker id or ``"round_robin"``, matching
        :meth:`BrokerOverlay.route_corpus`.  ``arrivals`` selects the
        inter-arrival process: ``"uniform"`` spaces publishes exactly
        ``1/rate`` apart, ``"poisson"`` draws exponential gaps from a
        ``random.Random(seed)`` — seeded, so still deterministic.

        ``classes`` assigns each publication its subscriber class: a
        sequence is cycled over the publish positions (``(0, 1, 2)``
        round-robins three classes), a callable is invoked with the
        position.  ``deadline_slack`` gives every publication the
        deadline ``publish time + slack``.  Returns the publish indices.
        """
        if rate <= 0.0:
            raise ValueError("publish rate must be positive")
        if arrivals not in ("uniform", "poisson"):
            raise ValueError(
                f"unknown arrival process {arrivals!r}; "
                "choose 'uniform' or 'poisson'"
            )
        if deadline_slack is not None and deadline_slack < 0.0:
            raise ValueError("deadline_slack must be >= 0")
        if classes is None:
            klass = lambda position: 0  # noqa: E731
        elif callable(classes):
            klass = classes
        else:
            cycle = list(classes)
            if not cycle:
                raise ValueError("classes sequence must not be empty")
            klass = lambda position: cycle[position % len(cycle)]  # noqa: E731
        rng = random.Random(seed)
        time = start
        indices = []
        order = sorted(self.overlay.brokers)
        for position, document in enumerate(corpus.documents):
            if publish_at == "round_robin":
                source = order[position % len(order)]
            else:
                source = int(publish_at)
            indices.append(
                self.publish(
                    document,
                    source,
                    time,
                    priority_class=klass(position),
                    deadline=(
                        None
                        if deadline_slack is None
                        else time + deadline_slack
                    ),
                )
            )
            if arrivals == "poisson":
                time += rng.expovariate(rate)
            else:
                time += 1.0 / rate
        return indices

    # ------------------------------------------------------------------
    # topology churn
    # ------------------------------------------------------------------

    def schedule_topology(self, time: float, event: TopologyEvent) -> None:
        """Queue a broker join/leave for simulated instant *time*.

        Requires ``allow_topology_churn=True`` (see
        ``OverlayBuilder.allow_topology_churn``): applying a leave
        mid-simulation re-routes the retiring broker's queued and
        in-service documents to the merge target — nothing is lost, but
        their service restarts there, which is a timing semantics the
        caller must opt into.  The event is applied by :meth:`run` in
        ``(time, seq)`` order like any other event; the outcome (for a
        join, the minted broker id) is recorded in
        :attr:`topology_log`.
        """
        if not self.allow_topology_churn:
            raise ValueError(
                "topology churn is disabled for this engine; construct "
                "it with allow_topology_churn=True (or via "
                "OverlayBuilder.allow_topology_churn())"
            )
        if time < 0.0:
            raise ValueError("topology event time must be >= 0")
        self._schedule(time, _TOPOLOGY, -1, event)

    def schedule_join(
        self,
        time: float,
        parent: int,
        split: Optional[int] = None,
    ) -> None:
        """Queue an ``add_broker(parent, split=split)`` at *time*."""
        self.schedule_topology(
            time, TopologyEvent(action="join", parent=parent, split=split)
        )

    def schedule_leave(
        self,
        time: float,
        broker_id: int,
        merge_into: Optional[int] = None,
    ) -> None:
        """Queue a ``remove_broker(broker_id, merge_into=...)`` at
        *time*."""
        self.schedule_topology(
            time,
            TopologyEvent(
                action="leave", broker_id=broker_id, merge_into=merge_into
            ),
        )

    def _on_topology(self, event: TopologyEvent, now: float) -> None:
        """Apply one scheduled join/leave to the overlay and the engine.

        A join simply equips the newcomer with an empty service queue.
        A leave re-routes every in-flight document the retiring broker
        owned: its queued documents and the one in service arrive at the
        merge target *now* (service restarts — the aborted service time
        is credited back to the retiring broker's busy time), copies
        already on the wire towards it are re-targeted at their original
        arrival instants, and documents elsewhere that arrived over a
        link from the retiring broker have their origin re-pointed at
        the merge target, matching the renamed reverse-path state.
        Delivered subscriber sets are unaffected: re-routed documents
        may revisit brokers, but deliveries deduplicate per publish.

        Events are scheduled ahead of time, so by their instant an
        earlier leave may have retired a broker they name.  Ids are
        resolved through the merge chain (a join under a retired parent
        grafts under its merge target), stale edge references degrade
        gracefully (a vanished split edge grafts a plain leaf, a
        retired or detached merge target falls back to the default),
        and a leave for an already-retired broker is a recorded no-op —
        the simulation never aborts with events still pending.
        """
        if event.action == "join":
            parent = self._resolve_broker(event.parent)
            split = None
            if event.split is not None:
                split = self._resolve_broker(event.split)
                if (
                    split == parent
                    or split not in self.overlay.brokers[parent].neighbors
                ):
                    split = None
            new_id = int(self.overlay.add_broker(parent, split=split))
            self._ensure_broker(new_id)
            self.topology_log.append((now, event, new_id))
            return
        retiring = event.broker_id
        if retiring in self._retired:
            # An earlier scheduled leave already merged it away.
            self.topology_log.append(
                (now, event, self._resolve_broker(retiring))
            )
            return
        merge_into = event.merge_into
        if merge_into is not None:
            merge_into = self._resolve_broker(merge_into)
            if (
                merge_into == retiring
                or merge_into
                not in self.overlay.brokers[retiring].neighbors
            ):
                merge_into = None
        target = int(
            self.overlay.remove_broker(retiring, merge_into=merge_into)
        )
        self._retired[retiring] = target
        reinject: list[_Job] = list(self._queues.pop(retiring, ()))
        self._busy.pop(retiring, None)
        retained = []
        for entry in self._events:
            time, seq, kind, broker_id, payload, step = entry
            if isinstance(payload, _Job) and payload.origin == retiring:
                payload.origin = target
            elif isinstance(payload, _Batch):
                for job in payload.jobs:
                    if job.origin == retiring:
                        job.origin = target
            if kind == _TOPOLOGY or broker_id != retiring:
                retained.append(entry)
            elif kind == _ARRIVAL:
                retained.append(
                    (time, seq, _ARRIVAL, target, payload, None)
                )
            else:
                # The document (or whole batch) in service: the work is
                # abandoned where it stood and the service restarts at
                # the merge target.
                self._busy_time[retiring] -= time - now
                if isinstance(payload, _Batch):
                    reinject.extend(payload.jobs)
                else:
                    reinject.append(payload)
        self._events = retained
        heapq.heapify(self._events)
        for queue in self._queues.values():
            for job in queue:
                if job.origin == retiring:
                    job.origin = target
        for job in reinject:
            self._schedule(now, _ARRIVAL, target, job)
        self.topology_log.append((now, event, target))

    def _resolve_broker(self, broker_id: int) -> int:
        """Follow the merge chain of retired brokers to a live one."""
        while broker_id in self._retired:
            broker_id = self._retired[broker_id]
        return broker_id

    def _ensure_broker(self, broker_id: int) -> None:
        """Create engine-side state for a broker on first use.

        Covers brokers the overlay gained *after* this engine was built
        — whether through a scheduled join event or an out-of-band
        ``add_broker`` call between construction and :meth:`run`.
        (Out-of-band *removals* have no merge record here; retire
        brokers through :meth:`schedule_leave` while a simulation owns
        in-flight documents.)
        """
        if broker_id not in self._queues:
            self._queues[broker_id] = deque()
            self._busy[broker_id] = False
            self._depth_peaks[broker_id] = 0
            self._busy_time[broker_id] = 0.0

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------

    def _schedule(
        self,
        time: float,
        kind: str,
        broker_id: int,
        job: Union[_Job, _Batch, TopologyEvent],
        step: Optional[BrokerStep] = None,
    ) -> None:
        self._sequence += 1
        heapq.heappush(
            self._events, (time, self._sequence, kind, broker_id, job, step)
        )

    def _next_job(self, broker_id: int, now: float) -> Optional[_Job]:
        """Pick the next queued document at *broker_id*.

        Delegates to the engine's
        :class:`~repro.routing.policy.SchedulingPolicy` — the queue is
        presented oldest-arrival-first and the policy answers with the
        position to service next, so disciplines never touch the event
        loop.
        """
        queue = self._queues[broker_id]
        if not queue:
            return None
        choice = self.scheduling.select(queue, now)
        if not 0 <= choice < len(queue):
            raise ValueError(
                f"{type(self.scheduling).__name__}.select returned "
                f"position {choice} for a queue of {len(queue)}"
            )
        job = queue[choice]
        del queue[choice]
        return job

    def _next_batch(self, broker_id: int, now: float) -> list[_Job]:
        """Drain up to ``max_batch`` jobs for one batched service
        interval, one :meth:`_next_job` policy selection per job — the
        scheduling discipline shapes the batch exactly as it shapes the
        one-at-a-time schedule."""
        limit = self.service.max_batch if self._batching else 1
        jobs: list[_Job] = []
        while len(jobs) < limit:
            job = self._next_job(broker_id, now)
            if job is None:
                break
            jobs.append(job)
        return jobs

    def _start_service(self, broker_id: int, job: _Job, now: float) -> None:
        self._busy[broker_id] = True
        self._queue_delays.append(now - job.arrived_at)
        self._serviced_documents += 1
        self._service_batches += 1
        step = self.overlay.process_at(broker_id, job.document, job.origin)
        self._match_operations += step.match_operations
        duration = self.service.service_time(step.match_operations)
        self._busy_time[broker_id] += duration
        self._schedule(now + duration, _COMPLETE, broker_id, job, step)

    def _start_batch(
        self, broker_id: int, jobs: list[_Job], now: float
    ) -> None:
        """Service *jobs* in one batched interval: one shared-pool
        filtering pass, one completion event, a duration read off the
        measured batch op count."""
        self._busy[broker_id] = True
        for job in jobs:
            self._queue_delays.append(now - job.arrived_at)
        self._serviced_documents += len(jobs)
        self._service_batches += 1
        steps = self.overlay.process_batch_at(
            broker_id,
            [job.document for job in jobs],
            [job.origin for job in jobs],
        )
        operations = sum(step.match_operations for step in steps)
        self._match_operations += operations
        duration = self.service.service_time_batch(operations, len(jobs))
        self._busy_time[broker_id] += duration
        self._schedule(
            now + duration, _COMPLETE, broker_id, _Batch(jobs, steps)
        )

    def _on_arrival(self, broker_id: int, job: _Job, now: float) -> None:
        self._ensure_broker(broker_id)
        job.arrived_at = now
        depth = len(self._queues[broker_id]) + (
            1 if self._busy[broker_id] else 0
        ) + 1
        if depth > self._depth_peaks[broker_id]:
            self._depth_peaks[broker_id] = depth
        if self._busy[broker_id]:
            self._queues[broker_id].append(job)
        elif self._batching:
            self._start_batch(broker_id, [job], now)
        else:
            self._start_service(broker_id, job, now)

    def _deliver_and_forward(
        self, broker_id: int, job: _Job, step: BrokerStep, now: float
    ) -> None:
        """Apply one job's completed filtering step: local deliveries
        and forwarded copies."""
        delivered = self._delivered[job.doc_index]
        for subscriber_id in sorted(step.deliveries):
            if subscriber_id in delivered:
                # A document re-routed by topology churn may revisit a
                # broker; only the first delivery to each subscriber
                # counts — in the sets and in the latency samples.
                continue
            delivered.add(subscriber_id)
            self._latencies.append(now - job.published_at)
            self._latencies_by_class.setdefault(
                job.priority_class, []
            ).append(now - job.published_at)
        for neighbor in step.forwards:
            self._forwards += 1
            # A filtering step computed before a leave event may still
            # name the retired broker; the copy goes to its merge target.
            destination = self._resolve_broker(neighbor)
            forwarded = _Job(
                document=job.document,
                doc_index=job.doc_index,
                published_at=job.published_at,
                origin=broker_id,
                priority_class=job.priority_class,
                deadline=job.deadline,
            )
            self._schedule(
                now + self.links.latency(broker_id, destination),
                _ARRIVAL,
                destination,
                forwarded,
            )

    def _finish_service(self, broker_id: int, now: float) -> None:
        """Free the broker and start its next service interval."""
        self._busy[broker_id] = False
        pending = self._next_batch(broker_id, now)
        if pending:
            if self._batching:
                self._start_batch(broker_id, pending, now)
            else:
                self._start_service(broker_id, pending[0], now)

    def _on_complete(
        self, broker_id: int, job: _Job, step: BrokerStep, now: float
    ) -> None:
        self._deliver_and_forward(broker_id, job, step, now)
        self._finish_service(broker_id, now)

    def _on_complete_batch(
        self, broker_id: int, batch: _Batch, now: float
    ) -> None:
        for job, step in zip(batch.jobs, batch.steps, strict=True):
            self._deliver_and_forward(broker_id, job, step, now)
        self._finish_service(broker_id, now)

    def run(self) -> LatencyStats:
        """Process every pending event and report the timing outcome.

        Incremental: more publishes may follow and ``run`` may be called
        again; stats always cover everything processed so far.
        """
        while self._events:
            time, _, kind, broker_id, job, step = heapq.heappop(self._events)
            self._last_event = max(self._last_event, time)
            if kind == _TOPOLOGY:
                self._on_topology(job, time)
            elif kind == _ARRIVAL:
                self._on_arrival(broker_id, job, time)
            elif isinstance(job, _Batch):
                self._on_complete_batch(broker_id, job, time)
            else:
                assert step is not None
                self._on_complete(broker_id, job, step, time)
        return self.stats()

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def delivered_sets(self) -> dict[int, frozenset[int]]:
        """Per publish index, the subscriber ids delivered to so far."""
        return {
            index: frozenset(delivered)
            for index, delivered in self._delivered.items()
        }

    def stats(self) -> LatencyStats:
        """The :class:`LatencyStats` of everything processed so far."""
        start = self._first_publish or 0.0
        makespan = max(0.0, self._last_event - start)
        latencies = sorted(self._latencies)
        delays = sorted(self._queue_delays)
        return LatencyStats(
            documents=self._documents,
            deliveries=len(latencies),
            makespan=makespan,
            latency_p50=ordered_percentile(latencies, 50.0),
            latency_p95=ordered_percentile(latencies, 95.0),
            latency_p99=ordered_percentile(latencies, 99.0),
            latency_mean=(
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            latency_max=latencies[-1] if latencies else 0.0,
            queue_delay_mean=(
                sum(delays) / len(delays) if delays else 0.0
            ),
            queue_delay_p95=ordered_percentile(delays, 95.0),
            queue_delay_max=delays[-1] if delays else 0.0,
            queue_depth_peaks=dict(self._depth_peaks),
            busy_time=dict(self._busy_time),
            match_operations=self._match_operations,
            forwards=self._forwards,
            service_batches=self._service_batches,
            serviced_documents=self._serviced_documents,
            latency_by_class={
                priority_class: ClassLatency.of(samples)
                for priority_class, samples in sorted(
                    self._latencies_by_class.items()
                )
            },
        )

    def __repr__(self) -> str:
        return (
            f"DeliveryEngine(brokers={len(self.overlay.brokers)}, "
            f"documents={self._documents}, pending={len(self._events)})"
        )
