"""Merged pattern trie: one traversal matches a document against every
routing-table pattern at once.

A broker that evaluates each routing-table pattern independently pays
filtering cost linear in table size — the "large routing tables, complex
filtering" failure mode of Section 1.  :class:`PatternTrie` merges all of
a broker's patterns into one shared structure so the per-document cost is
driven by how much *structure* the table contains, not by how many
patterns spell it.

Structure
---------

Every pattern is decomposed deterministically into

* a **spine** — the chain obtained by repeatedly descending into the
  canonically first child (children ordered exact-first, see below).
  Each spine step is ``(axis, label, branches)``: the axis distinguishes
  the root anchor (``self``), a root-level ``//`` re-anchor
  (``anywhere``), a plain child edge (``child``) and a nested ``//``
  edge (``descendant``); ``branches`` are the step node's remaining
  children, kept as hash-consed subtree constraints;
* **gates** — the pattern's root children other than the spine head,
  evaluated once per document with root semantics.

Spine steps form the trie: two patterns share a node exactly when their
decompositions share a prefix (axis, label *and* branch constraints all
equal), so the common ``/nitf/head/…`` prefixes of a DTD workload are
evaluated once for the whole table.  A node where some pattern's spine
ends is an *accepting* node and carries that pattern's destination set
(keyed by its gates); one traversal therefore returns every matching
destination at once.

Branch and gate subtrees are *hash-consed*: structurally equal subtrees
— across patterns, branches and gates — intern to one node, and their
satisfaction per document node is memoised globally, so a subtree shared
by a thousand patterns is evaluated against a document region once.

Degree-sorted branch order
--------------------------

Children are ordered by *degree* — the number of ``*`` and ``//`` nodes
in the subtree — before the canonical key, so exact (tag-only) branches
are decomposed into the spine and tried before wildcard and descendant
branches; trie children are likewise iterated exact steps first, then
wildcard steps, then descendant steps.  The order never changes which
destinations match (matching is a pure conjunction/disjunction), but it
fails cheap exact prefixes before paying for expensive relocation scans,
and it makes the decomposition — and hence the trie shape and the
operation count — a canonical function of the pattern set, independent
of insertion history.

Matching cost
-------------

``match`` counts one *trie operation* per sibling aliveness test, per
anchor candidate examined — generated once per group of sibling trie
nodes sharing the same (axis, label) step, since only their (memoised)
branch constraints differ — per hash-consed subtree satisfaction
computed (memo misses only; shared work is free), and per gate
evaluated.  Every spine node carries the tags *all* patterns in its
subtrie require, so a subtrie the document cannot satisfy is killed for
one operation before any candidate scan; a prefix whose anchor set
comes up empty likewise prunes everything below it.  The cost of a
non-matching pattern therefore collapses into its shared prefix.  This
count is the filtering-cost unit
:class:`~repro.routing.table.RoutingTable` reports in trie mode.

Batched matching
----------------

``match_batch`` evaluates a whole document batch against one shared
memo pool (:class:`_BatchMemo`), amortising constraint work *across
documents* the way hash-consing amortises it across patterns.  The key
is structural: every document node gets a **skeleton key** — the
interned canonical form of its subtree with identical sibling subtrees
deduplicated (sound, because matching quantifies document children
only existentially) — and branch satisfaction is memoised on
``(constraint id, skeleton key)`` instead of ``(constraint id, node
position)``.  Structurally identical subtrees across the batch (common
under the Zipfian generators) therefore hit the memo instead of being
re-traversed; aliveness tests share per-tag-set entries, gates share
per-root-key entries, and a document whose whole skeleton repeats
costs zero trie operations.  Skeleton-key construction is document
bookkeeping (like the label index), not trie work, so it is never
counted as a trie operation — batched operations are guaranteed ≤ the
sum of the per-document counts.  ``match`` is the batch machinery at
batch size one (a fresh pool per call), so the two paths cannot
drift.

Incremental-maintenance invariants
----------------------------------

The trie is never rebuilt from scratch.  ``add`` / ``discard`` keep it
consistent under covering churn and topology surgery by refcounting:

* every spine node counts the entries whose spine passes through it and
  is unlinked (never orphaned) when the count reaches zero;
* every hash-consed subtree node counts its referers — trie-node
  branches, entry gates, and interned parents — and leaves the intern
  store exactly when the last referer lets go;
* equal patterns (canonically) share one entry whose destination set is
  the union of their destinations, so per-destination add/remove is a
  set update;
* ``rename_destination`` re-keys destination sets in place — trie shape,
  sharing and refcounts are untouched.

``check()`` audits all of these invariants and is exercised by the
property suite after every churn operation.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from repro.core.labels import DESCENDANT, WILDCARD, is_tag
from repro.core.pattern import PatternNode, TreePattern
from repro.xmltree.tree import XMLTree

__all__ = ["PatternTrie", "TrieMatch", "BatchMatch"]

Destination = Hashable

# Spine-step axes.  _SELF anchors at the document root (plain root child),
# _ANYWHERE re-anchors at any document node (root-level ``//``), _CHILD is
# a plain child edge, _DESCENDANT a nested ``//`` edge (child of any
# descendant-or-self of the current anchors).
_SELF = "self"
_ANYWHERE = "anywhere"
_CHILD = "child"
_DESCENDANT = "descendant"


def _canonical(node: PatternNode) -> tuple:
    """The recursive canonical key of a pattern subtree (sorted children)."""
    return (node.label, tuple(sorted(_canonical(c) for c in node.children)))


def _degree(node: PatternNode) -> int:
    """Number of ``*`` / ``//`` nodes in the subtree — the wildness order."""
    return sum(
        1
        for sub in node.iter_subtree()
        if sub.label == WILDCARD or sub.label == DESCENDANT
    )


def _subtree_order(node: PatternNode) -> tuple:
    """Degree-sorted canonical order: exact subtrees first."""
    return (_degree(node), _canonical(node))


def _decompose(
    pattern: TreePattern,
) -> tuple[list[tuple[str, str, tuple[PatternNode, ...]]], tuple[PatternNode, ...]]:
    """Split *pattern* into its spine steps and its root gates.

    Deterministic: root children and every node's children are degree-
    sorted, the spine follows the first child, everything else becomes a
    branch (or, at the root, a gate).  The decomposition is a bijection
    on canonical patterns, so one pattern maps to exactly one accepting
    (node, gates) pair.
    """
    roots = sorted(pattern.root_children, key=_subtree_order)
    head, gates = roots[0], tuple(roots[1:])
    steps: list[tuple[str, str, tuple[PatternNode, ...]]] = []
    node, axis = head, _SELF
    while True:
        if node.label == DESCENDANT:
            axis = _ANYWHERE if axis == _SELF else _DESCENDANT
            node = node.children[0]
            continue
        kids = sorted(node.children, key=_subtree_order)
        steps.append((axis, node.label, tuple(kids[1:])))
        if not kids:
            return steps, gates
        node, axis = kids[0], _CHILD


class _BranchNode:
    """One hash-consed pattern subtree (branch / gate constraint)."""

    __slots__ = (
        "label",
        "children",
        "key",
        "degree",
        "tags",
        "node_id",
        "refs",
    )

    def __init__(
        self,
        label: str,
        children: tuple["_BranchNode", ...],
        key: tuple,
        degree: int,
        tags: frozenset,
        node_id: int,
    ) -> None:
        self.label = label
        self.children = children
        self.key = key
        self.degree = degree
        self.tags = tags
        self.node_id = node_id
        self.refs = 0


# Iteration rank of a spine step: exact child/self steps, then wildcard
# steps, then descendant/anywhere relocations.
def _step_rank(axis: str, label: str) -> int:
    rank = 2 if axis in (_ANYWHERE, _DESCENDANT) else 0
    if label == WILDCARD:
        rank += 1
    return rank


class _SpineNode:
    """One trie node: a shared spine prefix of one or more patterns."""

    __slots__ = (
        "axis",
        "label",
        "branches",
        "child_key",
        "order_key",
        "parent",
        "children",
        "child_order",
        "accepts",
        "refs",
        "own_tags",
        "req_tags",
    )

    def __init__(
        self,
        axis: str,
        label: str,
        branches: tuple[_BranchNode, ...],
        child_key: tuple,
        parent: "_SpineNode | None",
    ) -> None:
        self.axis = axis
        self.label = label
        self.branches = branches
        self.child_key = child_key
        self.order_key = (_step_rank(axis, label), child_key)
        self.parent = parent
        self.children: dict[tuple, _SpineNode] = {}
        self.child_order: list[_SpineNode] = []
        self.accepts: dict[tuple, _Entry] = {}
        self.refs = 0
        #: Tags this step itself demands of any matching document.
        own = frozenset([label]) if is_tag(label) else frozenset()
        for branch in branches:
            own |= branch.tags
        self.own_tags = own
        #: Tags *every* pattern in this subtrie demands: ``own_tags``
        #: plus the intersection of what each accepting entry's gates
        #: and each child subtrie require.  A document missing one of
        #: them cannot match anything below, so the whole subtrie is
        #: killed for one operation.  Maintained by
        #: :meth:`PatternTrie._recompute_req` on every add / discard.
        self.req_tags = own


class _Entry:
    """One canonical pattern's accepting record."""

    __slots__ = (
        "pattern",
        "node",
        "gate_key",
        "gates",
        "gate_tags",
        "destinations",
    )

    def __init__(
        self,
        pattern: TreePattern,
        node: _SpineNode,
        gate_key: tuple,
        gates: tuple[_BranchNode, ...],
        destinations: set,
    ) -> None:
        self.pattern = pattern
        self.node = node
        self.gate_key = gate_key
        self.gates = gates
        self.gate_tags = frozenset().union(*(g.tags for g in gates)) if (
            gates
        ) else frozenset()
        self.destinations = destinations


class _BatchMemo:
    """The shared evaluation pool of one batch (or one ``match`` call).

    Everything keyed here is a pure function of *document structure*
    (skeleton keys, tag-set keys) and *trie constraints* (hash-consed
    node ids), so entries are sound across every document of the batch.
    ``stride`` is the trie's node-id horizon at pool creation; combined
    with the densely interned skeleton/tag-set keys it packs every memo
    key into one int.  A pool must not outlive a trie mutation — the
    matching entry points create one per call, so they never do.
    """

    __slots__ = (
        "stride",
        "skeleton_keys",
        "tag_keys",
        "memo",
        "gate_cache",
        "alive",
        "alive_req",
        "results",
        "hits",
        "misses",
    )

    def __init__(self, stride: int) -> None:
        self.stride = stride
        #: Interner: dedup-canonical ``(label, child skeleton keys)`` →
        #: dense skeleton key.
        self.skeleton_keys: dict[tuple, int] = {}
        #: Interner: document tag set → dense key.
        self.tag_keys: dict[frozenset, int] = {}
        #: ``skeleton_key * stride + constraint id`` → branch satisfied.
        self.memo: dict[int, bool] = {}
        #: ``root skeleton key * stride + gate id`` → gate satisfied.
        self.gate_cache: dict[int, bool] = {}
        #: ``tag-set key * stride + constraint id`` → constraint alive.
        self.alive: dict[int, bool] = {}
        #: ``(required tags, tag-set key)`` → subtrie alive.
        self.alive_req: dict[tuple[frozenset, int], bool] = {}
        #: Root skeleton key → the whole document's match outcome.
        self.results: dict[int, tuple[frozenset, frozenset]] = {}
        self.hits = 0
        self.misses = 0

    def tag_key(self, tag_set: frozenset) -> int:
        key = self.tag_keys.get(tag_set)
        if key is None:
            key = len(self.tag_keys)
            self.tag_keys[tag_set] = key
        return key


class _MatchState:
    """Per-document evaluation state over a shared :class:`_BatchMemo`.

    Holds what is genuinely per document — the tree, its skeleton keys,
    the label/child indexes and the op counter — while every memo table
    lives in the pool and is shared across the batch.
    """

    __slots__ = (
        "tree",
        "n",
        "tag_set",
        "pool",
        "skel",
        "root_key",
        "tags_key",
        "ops",
        "_by_label",
        "_kids_by_label",
    )

    def __init__(self, tree: XMLTree, pool: _BatchMemo) -> None:
        self.tree = tree
        self.n = len(tree.labels)
        self.tag_set = tree.tag_set
        self.pool = pool
        self.tags_key = pool.tag_key(self.tag_set)
        # Skeleton keys, bottom-up: the builder appends parents before
        # children, so a reverse scan sees every child before its
        # parent.  Identical sibling subtrees intern to one key —
        # matching only ever quantifies document children existentially,
        # so the deduplication never changes satisfaction.  This is
        # document bookkeeping (like the label index), not trie work:
        # it is deliberately not counted as trie operations.
        skeleton_keys = pool.skeleton_keys
        children = tree.children
        labels = tree.labels
        skel = [0] * self.n
        for position in reversed(range(self.n)):
            kids = children[position]
            shape = (
                labels[position],
                tuple(sorted({skel[kid] for kid in kids})) if kids else (),
            )
            key = skeleton_keys.get(shape)
            if key is None:
                key = len(skeleton_keys)
                skeleton_keys[shape] = key
            skel[position] = key
        self.skel = skel
        self.root_key = skel[tree.root]
        self.ops = 0
        self._by_label: dict[str, list[int]] | None = None
        self._kids_by_label: dict[tuple[int, str], list[int]] | None = None

    def is_alive(self, node: "_BranchNode") -> bool:
        """Does the document hold every tag *node* requires?  One memo
        entry per (constraint, document tag set) across the batch."""
        pool = self.pool
        key = self.tags_key * pool.stride + node.node_id
        alive = pool.alive.get(key)
        if alive is None:
            pool.misses += 1
            self.ops += 1
            alive = node.tags <= self.tag_set
            pool.alive[key] = alive
        else:
            pool.hits += 1
        return alive

    def label_index(self) -> dict[str, list[int]]:
        if self._by_label is None:
            index: dict[str, list[int]] = {}
            for position, label in enumerate(self.tree.labels):
                index.setdefault(label, []).append(position)
            self._by_label = index
        return self._by_label

    def child_index(self) -> dict[tuple[int, str], list[int]]:
        """(parent, label) → children, built once per document like
        :meth:`label_index` and amortised across the whole table."""
        if self._kids_by_label is None:
            index: dict[tuple[int, str], list[int]] = {}
            labels = self.tree.labels
            for position, parent in enumerate(self.tree.parents):
                if parent >= 0:
                    index.setdefault(
                        (parent, labels[position]), []
                    ).append(position)
            self._kids_by_label = index
        return self._kids_by_label


@dataclass
class TrieMatch:
    """Result of one trie traversal over one document."""

    destinations: set
    patterns: set
    operations: int


@dataclass
class BatchMatch:
    """Result of one shared-pool traversal over a document batch.

    ``results`` holds one :class:`TrieMatch` per input document, in
    order; each carries the operations *attributed* to that document
    (memo-amortised work is paid by the first document that needs it),
    so ``operations == sum(r.operations for r in results)``.  ``memo_hits``
    / ``memo_misses`` split the pool lookups into amortised answers and
    cold computations — the hit rate is the batch's structural-sharing
    measure.
    """

    results: list[TrieMatch]
    operations: int
    memo_hits: int
    memo_misses: int

    @property
    def hit_rate(self) -> float:
        """Fraction of pool lookups answered without recomputation."""
        lookups = self.memo_hits + self.memo_misses
        return self.memo_hits / lookups if lookups else 0.0


class PatternTrie:
    """All of a broker's patterns merged into one matching structure."""

    def __init__(self) -> None:
        self._root = _SpineNode(_SELF, "", (), (), None)
        self._entries: dict[TreePattern, _Entry] = {}
        self._interned: dict[tuple, _BranchNode] = {}
        self._next_node_id = 0
        self._spine_count = 0

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def add(self, pattern: TreePattern, destination: Destination) -> None:
        """Register *pattern* as active for *destination*."""
        entry = self._entries.get(pattern)
        if entry is not None:
            entry.destinations.add(destination)
            return
        steps, gate_nodes = _decompose(pattern)
        node = self._root
        path: list[_SpineNode] = []
        for axis, label, branches in steps:
            node = self._step_child(node, axis, label, branches)
            path.append(node)
        gates = tuple(self._intern(g) for g in gate_nodes)
        for gate in gates:
            gate.refs += 1
        gate_key = tuple(gate.key for gate in gates)
        entry = _Entry(pattern, node, gate_key, gates, {destination})
        node.accepts[gate_key] = entry
        for spine_node in path:
            spine_node.refs += 1
        self._entries[pattern] = entry
        # Unconditional bottom-up pass: freshly created parents were
        # initialised before this child existed, so no early stop here.
        for spine_node in reversed(path):
            spine_node.req_tags = self._req_of(spine_node)

    def discard(self, pattern: TreePattern, destination: Destination) -> None:
        """Retire *pattern*'s active registration for *destination*."""
        entry = self._entries[pattern]
        entry.destinations.remove(destination)
        if entry.destinations:
            return
        del self._entries[pattern]
        del entry.node.accepts[entry.gate_key]
        for gate in entry.gates:
            self._release(gate)
        node = entry.node
        survivor: _SpineNode | None = None
        while node is not self._root:
            node.refs -= 1
            parent = node.parent
            assert parent is not None
            if node.refs == 0:
                del parent.children[node.child_key]
                parent.child_order.remove(node)
                for branch in node.branches:
                    self._release(branch)
                self._spine_count -= 1
            elif survivor is None:
                survivor = node
            node = parent
        if survivor is not None:
            self._recompute_req(survivor)

    def rename_destination(
        self,
        old: Destination,
        new: Destination,
        patterns: Iterable[TreePattern],
    ) -> None:
        """Re-key *old* to *new* in the entries of *patterns* (the active
        patterns of that destination); trie shape is untouched."""
        for pattern in patterns:
            destinations = self._entries[pattern].destinations
            destinations.remove(old)
            destinations.add(new)

    def clear(self) -> None:
        """Forget every entry and every shared node."""
        self._root = _SpineNode(_SELF, "", (), (), None)
        self._entries.clear()
        self._interned.clear()
        self._spine_count = 0

    def _step_child(
        self,
        parent: _SpineNode,
        axis: str,
        label: str,
        branches: tuple[PatternNode, ...],
    ) -> _SpineNode:
        branch_keys = tuple(_canonical(branch) for branch in branches)
        child_key = (axis, label, branch_keys)
        child = parent.children.get(child_key)
        if child is None:
            interned = tuple(self._intern(branch) for branch in branches)
            for branch in interned:
                branch.refs += 1
            child = _SpineNode(axis, label, interned, child_key, parent)
            parent.children[child_key] = child
            insort(parent.child_order, child, key=lambda n: n.order_key)
            self._spine_count += 1
        return child

    @staticmethod
    def _req_of(node: _SpineNode) -> frozenset:
        """The required-tag summary *node* should carry right now."""
        parts = [entry.gate_tags for entry in node.accepts.values()]
        parts.extend(child.req_tags for child in node.child_order)
        below = frozenset.intersection(*parts) if parts else frozenset()
        return node.own_tags | below

    def _recompute_req(self, node: _SpineNode | None) -> None:
        """Re-derive ``req_tags`` from *node* upward, stopping at the
        first ancestor whose requirement is unchanged.  Only valid when
        every ancestor was consistent beforehand (discard path)."""
        while node is not None and node is not self._root:
            req = self._req_of(node)
            if req == node.req_tags:
                return
            node.req_tags = req
            node = node.parent

    def _intern(self, pnode: PatternNode) -> _BranchNode:
        key = _canonical(pnode)
        node = self._interned.get(key)
        if node is not None:
            return node
        kids = sorted(pnode.children, key=_subtree_order)
        children = tuple(self._intern(kid) for kid in kids)
        for child in children:
            child.refs += 1
        tags = frozenset(
            label
            for label in [pnode.label]
            if is_tag(label)
        ).union(*(child.tags for child in children)) if children else (
            frozenset([pnode.label]) if is_tag(pnode.label) else frozenset()
        )
        node = _BranchNode(
            pnode.label, children, key, _degree(pnode), tags,
            self._next_node_id,
        )
        self._next_node_id += 1
        self._interned[key] = node
        return node

    def _release(self, node: _BranchNode) -> None:
        node.refs -= 1
        if node.refs == 0:
            del self._interned[node.key]
            for child in node.children:
                self._release(child)

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------

    def match(self, tree: XMLTree) -> TrieMatch:
        """One traversal: every matching pattern and destination, plus the
        trie operations spent.

        Routed through the batch machinery at batch size one (a fresh
        memo pool per call), so the single-document and batched paths
        share every line of evaluation code and cannot drift.
        """
        return self.match_batch((tree,)).results[0]

    def match_batch(self, trees: Iterable[XMLTree]) -> BatchMatch:
        """Match every document of a batch through one shared memo pool.

        Branch/gate satisfaction, aliveness tests and whole-document
        outcomes are memoised across the batch on skeleton keys (see
        the module docstring), so structurally repeated work is paid
        once: batched operations are always ≤ the sum of per-document
        ``match`` costs, with equality exactly when the batch shares no
        structure.  The trie must not be mutated while a batch is being
        evaluated (the pool is private to the call, so this only
        excludes mutation from within the iterable).
        """
        results: list[TrieMatch] = []
        if not self._entries:
            for _ in trees:
                results.append(TrieMatch(set(), set(), 0))
            return BatchMatch(results, 0, 0, 0)
        pool = _BatchMemo(max(1, self._next_node_id))
        total = 0
        for tree in trees:
            state = _MatchState(tree, pool)
            cached = pool.results.get(state.root_key)
            if cached is not None:
                pool.hits += 1
                destinations, patterns = cached
                results.append(TrieMatch(set(destinations), set(patterns), 0))
                continue
            pool.misses += 1
            destinations = set()
            patterns: set[TreePattern] = set()
            self._visit_children(
                self._root, (), state, destinations, patterns
            )
            pool.results[state.root_key] = (
                frozenset(destinations),
                frozenset(patterns),
            )
            total += state.ops
            results.append(TrieMatch(destinations, patterns, state.ops))
        return BatchMatch(results, total, pool.hits, pool.misses)

    def _visit_children(
        self,
        parent: _SpineNode,
        anchors: Sequence[int],
        state: _MatchState,
        destinations: set,
        patterns: set,
    ) -> None:
        # ``child_order`` keeps same-(axis, label) siblings adjacent, so
        # the anchor-candidate scan is generated once per group and only
        # the (memoised) branch constraints distinguish siblings.  The
        # cache shares the descendant scope across all groups of this
        # visit.
        order = parent.child_order
        index = 0
        total = len(order)
        cache: dict = {}
        while index < total:
            axis = order[index].axis
            label = order[index].label
            stop = index + 1
            while (
                stop < total
                and order[stop].axis == axis
                and order[stop].label == label
            ):
                stop += 1
            # One op per distinct (requirement set, document tag set)
            # across the whole batch kills every subtrie whose required
            # tags the document lacks — before any candidate scan is
            # paid.
            members: list[_SpineNode] = []
            pool = state.pool
            alive_req = pool.alive_req
            tags_key = state.tags_key
            for member in order[index:stop]:
                req_key = (member.req_tags, tags_key)
                alive = alive_req.get(req_key)
                if alive is None:
                    pool.misses += 1
                    state.ops += 1
                    alive = member.req_tags <= state.tag_set
                    alive_req[req_key] = alive
                else:
                    pool.hits += 1
                if alive:
                    members.append(member)
            if not members:
                index = stop
                continue
            candidates = self._candidates(axis, label, anchors, state, cache)
            if candidates:
                for member in members:
                    if member.branches:
                        member_anchors: Sequence[int] = [
                            anchor
                            for anchor in candidates
                            if all(
                                self._branch_sat(branch, anchor, state)
                                for branch in member.branches
                            )
                        ]
                    else:
                        member_anchors = candidates
                    if not member_anchors:
                        continue
                    for gate_key in sorted(member.accepts):
                        entry = member.accepts[gate_key]
                        if all(
                            self._gate_sat(gate, state)
                            for gate in entry.gates
                        ):
                            destinations.update(entry.destinations)
                            patterns.add(entry.pattern)
                    self._visit_children(
                        member, member_anchors, state, destinations, patterns
                    )
            index = stop

    def _candidates(
        self,
        axis: str,
        label: str,
        anchors: Sequence[int],
        state: _MatchState,
        cache: dict,
    ) -> Sequence[int]:
        tree = state.tree
        doc_labels = tree.labels
        if axis == _SELF:
            state.ops += 1
            root = tree.root
            if label != WILDCARD and doc_labels[root] != label:
                return ()
            return (root,)
        # An exact label is guaranteed present here: a member whose
        # required tags include it survived the aliveness filter.
        if axis == _ANYWHERE:
            if label == WILDCARD:
                candidates: Sequence[int] = range(state.n)
            else:
                candidates = state.label_index().get(label, ())
            state.ops += len(candidates)
            return candidates
        if axis == _CHILD:
            # One op per anchor looked up, one per candidate surfaced —
            # the (parent, label) index is amortised across the table.
            found: list[int] = []
            if label == WILDCARD:
                doc_children = tree.children
                for anchor in anchors:
                    state.ops += 1
                    kids = doc_children[anchor]
                    state.ops += len(kids)
                    found.extend(kids)
            else:
                child_index = state.child_index()
                for anchor in anchors:
                    state.ops += 1
                    kids = child_index.get((anchor, label))
                    if kids:
                        state.ops += len(kids)
                        found.extend(kids)
            return found
        # _DESCENDANT: child of any descendant-or-self of an anchor.  The
        # scope is likewise computed once per visit and shared.
        scope = cache.get("scope")
        if scope is None:
            scope = set()
            stack = list(anchors)
            doc_children = tree.children
            while stack:
                here = stack.pop()
                if here in scope:
                    continue
                scope.add(here)
                stack.extend(doc_children[here])
            cache["scope"] = scope
            cache["scope_sorted"] = sorted(scope)
        parents = tree.parents
        if label == WILDCARD:
            # The scope is closed under children, so every child of a
            # scope node is itself in scope: scan the scope, not the
            # whole document.
            pool: Sequence[int] = cache["scope_sorted"]
        else:
            pool = state.label_index().get(label, ())
        found: list[int] = []
        for position in pool:
            state.ops += 1
            if parents[position] in scope:
                found.append(position)
        return found

    def _branch_sat(self, node: _BranchNode, t: int, state: _MatchState) -> bool:
        """(T, t) ⊨ Subtree(node) — the exact :class:`PatternMatcher`
        semantics, memoised on the document node's skeleton key: shared
        across every pattern in the trie *and* every structurally equal
        subtree in the batch.  The cycle-safe placeholder below stays
        sound under key sharing because a strict document descendant has
        a strictly smaller dedup-canonical height than its ancestor, so
        the two can never intern to the same skeleton key."""
        pool = state.pool
        key = state.skel[t] * pool.stride + node.node_id
        memo = pool.memo
        cached = memo.get(key)
        if cached is not None:
            pool.hits += 1
            return cached
        if not state.is_alive(node):
            return False
        pool.misses += 1
        state.ops += 1
        tree = state.tree
        label = node.label
        kids = node.children
        result = False
        if label == DESCENDANT:
            memo[key] = False  # cycle-safe placeholder; tree has no cycles
            result = all(self._branch_sat(ku, t, state) for ku in kids)
            if not result:
                result = any(
                    self._branch_sat(node, kid, state)
                    for kid in tree.children[t]
                )
        elif label == WILDCARD:
            result = any(
                all(self._branch_sat(ku, kid, state) for ku in kids)
                for kid in tree.children[t]
            )
        else:
            doc_labels = tree.labels
            result = any(
                doc_labels[kid] == label
                and all(self._branch_sat(ku, kid, state) for ku in kids)
                for kid in tree.children[t]
            )
        memo[key] = result
        return result

    def _gate_sat(self, gate: _BranchNode, state: _MatchState) -> bool:
        """Root semantics for a non-spine root child, cached per root
        skeleton key — a gate reads the whole document, and documents
        with equal root keys are structurally indistinguishable to it."""
        pool = state.pool
        key = state.root_key * pool.stride + gate.node_id
        gate_cache = pool.gate_cache
        cached = gate_cache.get(key)
        if cached is not None:
            pool.hits += 1
            return cached
        if not state.is_alive(gate):
            gate_cache[key] = False
            return False
        pool.misses += 1
        state.ops += 1
        tree = state.tree
        label = gate.label
        if label == DESCENDANT:
            target = gate.children[0]
            if target.label == WILDCARD:
                pool: Sequence[int] = range(state.n)
            else:
                pool = state.label_index().get(target.label, ())
            result = False
            for position in pool:
                state.ops += 1
                if all(
                    self._branch_sat(ku, position, state)
                    for ku in target.children
                ):
                    result = True
                    break
        else:
            root = tree.root
            if label != WILDCARD and tree.labels[root] != label:
                result = False
            else:
                result = all(
                    self._branch_sat(ku, root, state) for ku in gate.children
                )
        gate_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of distinct (canonical) patterns held."""
        return len(self._entries)

    def __contains__(self, pattern: object) -> bool:
        return isinstance(pattern, TreePattern) and pattern in self._entries

    @property
    def node_count(self) -> int:
        """Spine (trie) nodes currently allocated."""
        return self._spine_count

    @property
    def interned_count(self) -> int:
        """Hash-consed branch/gate subtree nodes currently allocated."""
        return len(self._interned)

    def destinations_of(self, pattern: TreePattern) -> frozenset:
        """The destinations *pattern* is active for (empty if absent)."""
        entry = self._entries.get(pattern)
        if entry is None:
            return frozenset()
        return frozenset(entry.destinations)

    def check(self) -> None:
        """Audit every incremental-maintenance invariant; raises
        AssertionError on any inconsistency (test support)."""
        # Walk the spine trie, collecting nodes and recomputing refcounts.
        reachable: list[_SpineNode] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is not self._root:
                reachable.append(node)
            assert sorted(node.child_order, key=lambda n: n.order_key) == list(
                node.child_order
            ), "child_order not degree-sorted"
            assert set(node.children.values()) == set(node.child_order)
            for key, child in node.children.items():
                assert child.child_key == key and child.parent is node
                stack.append(child)
        assert len(reachable) == self._spine_count, "spine count drifted"

        spine_refs: dict[int, int] = {}
        entries_seen: dict[TreePattern, _Entry] = {}
        for node in reachable + [self._root]:
            for gate_key, entry in node.accepts.items():
                assert entry.node is node and entry.gate_key == gate_key
                assert entry.destinations, "entry with no destinations"
                assert entry.pattern not in entries_seen
                entries_seen[entry.pattern] = entry
                walk: _SpineNode | None = node
                while walk is not None and walk is not self._root:
                    # check() is an in-process diagnostic audit; ids index
                    # live nodes for one pass.
                    # reprolint: disable=RL003 -- one-pass in-process audit keys
                    spine_refs[id(walk)] = spine_refs.get(id(walk), 0) + 1
                    walk = walk.parent
        assert entries_seen == self._entries, "entry index out of sync"
        for node in reachable:
            # reprolint: disable=RL003 -- same one-pass diagnostic audit.
            assert node.refs == spine_refs.get(id(node), 0), (
                "spine refcount drifted"
            )
            assert node.refs > 0, "orphan spine node"

        # Recompute branch/gate refcounts from every referer.
        branch_refs: dict[tuple, int] = {}
        for node in reachable:
            for branch in node.branches:
                branch_refs[branch.key] = branch_refs.get(branch.key, 0) + 1
        for entry in self._entries.values():
            for gate in entry.gates:
                branch_refs[gate.key] = branch_refs.get(gate.key, 0) + 1
        for interned in self._interned.values():
            for child in interned.children:
                branch_refs[child.key] = branch_refs.get(child.key, 0) + 1
        assert branch_refs == {
            key: node.refs for key, node in self._interned.items()
        }, "interned refcounts drifted"

        # Recompute required-tag summaries bottom-up and compare.
        def expected_req(node: _SpineNode) -> frozenset:
            own = (
                frozenset([node.label])
                if is_tag(node.label)
                else frozenset()
            )
            for branch in node.branches:
                own |= branch.tags
            assert node.own_tags == own, "own_tags drifted"
            parts = [entry.gate_tags for entry in node.accepts.values()]
            parts.extend(expected_req(child) for child in node.child_order)
            below = frozenset.intersection(*parts) if parts else frozenset()
            req = own | below
            assert node.req_tags == req, "req_tags drifted"
            return req

        for top in self._root.child_order:
            expected_req(top)
        for entry in self._entries.values():
            gate_tags = frozenset().union(
                *(gate.tags for gate in entry.gates)
            ) if entry.gates else frozenset()
            assert entry.gate_tags == gate_tags, "gate_tags drifted"

    def __repr__(self) -> str:
        return (
            f"PatternTrie(patterns={len(self._entries)}, "
            f"nodes={self._spine_count}, interned={len(self._interned)})"
        )
