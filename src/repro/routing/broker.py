"""Content-based routing simulation.

Quantifies the trade-off that motivates the paper: a broker receiving a
document stream must deliver each document to the consumers whose
subscriptions it matches.  Three strategies are simulated:

* ``per_subscription`` — match every document against every subscription:
  perfect delivery, maximal filtering cost (the "large routing tables,
  complex filtering" baseline of Section 1);
* ``flooding`` — deliver everything to everyone: zero filtering cost,
  maximal spam;
* ``community`` — match each document against one *leader* subscription per
  semantic community and flood the community on a leader hit: filtering
  cost proportional to the number of communities, with accuracy governed by
  how semantically coherent the communities are — i.e. by the quality of
  the similarity metric used to build them.

Delivery quality is scored against exact matching: a *false positive* is a
delivery to an uninterested consumer, a *false negative* a missed delivery
to an interested one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.pattern import TreePattern
from repro.routing.community import Community
from repro.xmltree.corpus import DocumentCorpus

__all__ = [
    "RoutingStats",
    "RoutingSimulator",
    "ClassLatency",
    "LatencyStats",
    "percentile",
    "ordered_percentile",
]


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of *samples* (``q`` in [0, 100]).

    Empty samples yield 0.0 so stats over an idle run stay well-defined.
    Sorts on every call; digest builders that read several quantiles from
    the same samples should sort once and use :func:`ordered_percentile`.
    """
    return ordered_percentile(sorted(samples), q)


def ordered_percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list.

    The sort-once companion of :func:`percentile`: callers sort a sample
    list once and share the ordered list across quantile reads, instead of
    re-sorting per quantile.  Same semantics, byte-identical results.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile rank must be in [0, 100]")
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class RoutingStats:
    """Outcome of routing one document stream under one strategy."""

    strategy: str
    documents: int
    subscribers: int
    deliveries: int
    true_deliveries: int
    false_positives: int
    false_negatives: int
    match_operations: int

    @property
    def precision(self) -> float:
        """Fraction of deliveries that were wanted."""
        if self.deliveries == 0:
            return 1.0
        return self.true_deliveries / self.deliveries

    @property
    def recall(self) -> float:
        """Fraction of wanted deliveries that happened."""
        wanted = self.true_deliveries + self.false_negatives
        if wanted == 0:
            return 1.0
        return self.true_deliveries / wanted

    @property
    def matches_per_document(self) -> float:
        """Average filtering cost per routed document."""
        if self.documents == 0:
            return 0.0
        return self.match_operations / self.documents


@dataclass(frozen=True)
class ClassLatency:
    """Publication-to-delivery latency digest of one subscriber class.

    One entry per ``priority_class`` seen by the engine; the fairness
    axis a scheduling policy trades against tail latency — strict
    priority cuts the high class's percentiles by inflating the low
    class's.
    """

    deliveries: int
    p50: float
    p95: float
    p99: float
    mean: float
    max: float

    @classmethod
    def of(cls, samples: Sequence[float]) -> "ClassLatency":
        """The digest of one class's latency samples."""
        ordered = sorted(samples)
        return cls(
            deliveries=len(ordered),
            p50=ordered_percentile(ordered, 50.0),
            p95=ordered_percentile(ordered, 95.0),
            p99=ordered_percentile(ordered, 99.0),
            mean=sum(ordered) / len(ordered) if ordered else 0.0,
            max=ordered[-1] if ordered else 0.0,
        )


@dataclass(frozen=True)
class LatencyStats:
    """Timing outcome of one discrete-event delivery run.

    Produced by :class:`~repro.routing.engine.DeliveryEngine`; all times
    are in simulated time units (the engine never reads a wall clock).

    *Latency* is publication-to-delivery: the simulated time between a
    document's publish instant and the service completion of the broker
    that delivered it to a subscriber — one sample per delivery.  *Queue
    delay* is the time a document spent waiting in broker FIFO queues
    before its service started — one sample per (broker, document) visit.
    Queueing, not service, is what saturation inflates, so the queue-delay
    aggregates are the headline load measure.
    """

    documents: int
    deliveries: int
    #: First publish instant to last event processed.
    makespan: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    latency_mean: float
    latency_max: float
    queue_delay_mean: float
    queue_delay_p95: float
    queue_delay_max: float
    #: Per broker: the highest number of documents simultaneously queued
    #: or in service.
    queue_depth_peaks: dict[int, int] = field(default_factory=dict)
    #: Per broker: total simulated time spent servicing documents.
    busy_time: dict[int, float] = field(default_factory=dict)
    #: Total filtering operations across the run, in the overlay's
    #: matching mode: trie operations under the default merged-trie
    #: tables, per-pattern evaluations under the ``"linear"`` oracle.
    match_operations: int = 0
    forwards: int = 0
    #: Service intervals the engine ran.  Equal to
    #: ``serviced_documents`` under the one-document-at-a-time models;
    #: smaller when a :class:`~repro.routing.engine.BatchServiceModel`
    #: drains several queued documents per interval.
    service_batches: int = 0
    #: (broker, document) services across the run — every document
    #: visit that reached a service interval, batched or not.
    serviced_documents: int = 0
    #: Per subscriber class: the latency digest of its deliveries —
    #: populated by the engine whenever publishes carry priority classes
    #: (a run without classes reports everything under class 0).
    latency_by_class: dict[int, ClassLatency] = field(default_factory=dict)
    #: Document copies born: publishes plus forwards.  The conservation
    #: ledger's left-hand side — ``offered == completed + dropped +
    #: nacked + in-flight`` at every drain point, bounded queues or not.
    offered_jobs: int = 0
    #: Copies whose broker service completed (deliveries applied,
    #: forwards scheduled).  Unlike ``serviced_documents`` — which
    #: counts service *starts* and may double-count work a topology
    #: leave aborted and restarted — this counts each copy's death
    #: exactly once, so it balances the ledger.
    completed_jobs: int = 0
    #: Copies silently discarded by a bounded queue (``drop-new`` /
    #: ``drop-oldest`` overflow).
    dropped_jobs: int = 0
    #: Copies rejected with a NACK (``nack`` overflow) — the signal
    #: closed-loop sources shrink their window on.
    nacked_jobs: int = 0
    offered_by_class: dict[int, int] = field(default_factory=dict)
    completed_by_class: dict[int, int] = field(default_factory=dict)
    dropped_by_class: dict[int, int] = field(default_factory=dict)
    nacked_by_class: dict[int, int] = field(default_factory=dict)
    #: Per broker: copies its bounded queue dropped — where the
    #: overload actually landed.
    dropped_by_broker: dict[int, int] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Documents fully absorbed per simulated time unit."""
        if self.makespan <= 0.0:
            return 0.0
        return self.documents / self.makespan

    @property
    def delivery_throughput(self) -> float:
        """Deliveries per simulated time unit."""
        if self.makespan <= 0.0:
            return 0.0
        return self.deliveries / self.makespan

    @property
    def peak_queue_depth(self) -> int:
        """The deepest queue any broker reached during the run."""
        return max(self.queue_depth_peaks.values(), default=0)

    @property
    def mean_batch_size(self) -> float:
        """Documents serviced per service interval (1.0 unbatched)."""
        if self.service_batches <= 0:
            return 0.0
        return self.serviced_documents / self.service_batches

    @property
    def utilization(self) -> dict[int, float]:
        """Per broker: fraction of the makespan spent servicing."""
        if self.makespan <= 0.0:
            return {broker_id: 0.0 for broker_id in self.busy_time}
        return {
            broker_id: busy / self.makespan
            for broker_id, busy in self.busy_time.items()
        }

    @property
    def in_flight_jobs(self) -> int:
        """Copies born but not yet dead: scheduled arrivals plus queued
        plus in-service work.  Zero after a full :meth:`run` drain —
        the conservation identity the property suite pins."""
        return (
            self.offered_jobs
            - self.completed_jobs
            - self.dropped_jobs
            - self.nacked_jobs
        )

    @property
    def admitted_jobs(self) -> int:
        """Copies the queues accepted: offered minus dropped minus
        nacked.  Latency percentiles describe these — a dropped copy
        never contributes a sample."""
        return self.offered_jobs - self.dropped_jobs - self.nacked_jobs

    @property
    def admission_ratio(self) -> float:
        """Admitted fraction of offered copies (1.0 when nothing was
        offered, so an idle run reads as lossless)."""
        if self.offered_jobs <= 0:
            return 1.0
        return self.admitted_jobs / self.offered_jobs

    @property
    def offered_throughput(self) -> float:
        """Copies born per simulated time unit."""
        if self.makespan <= 0.0:
            return 0.0
        return self.offered_jobs / self.makespan

    @property
    def admitted_throughput(self) -> float:
        """Admitted copies per simulated time unit — the offered curve
        with the overload shed by the queue policy taken out."""
        if self.makespan <= 0.0:
            return 0.0
        return self.admitted_jobs / self.makespan

    @property
    def completed_share_by_class(self) -> dict[int, float]:
        """Per class: its fraction of all completed copies ({} when
        nothing completed).  The long-run shares weighted-fair
        scheduling drives towards the configured weights."""
        if self.completed_jobs <= 0:
            return {}
        return {
            priority_class: count / self.completed_jobs
            for priority_class, count in self.completed_by_class.items()
        }


class RoutingSimulator:
    """Routes a corpus to subscribers under the three strategies."""

    def __init__(
        self,
        corpus: DocumentCorpus,
        subscriptions: Sequence[TreePattern],
    ) -> None:
        self.corpus = corpus
        self.subscriptions = list(subscriptions)
        # Exact interest sets; corpus memoises the match sets.
        self._interest = [
            corpus.match_set(pattern) for pattern in self.subscriptions
        ]

    # ------------------------------------------------------------------

    def per_subscription(self) -> RoutingStats:
        """Exact matching of every document against every subscription."""
        deliveries = sum(len(interest) for interest in self._interest)
        return RoutingStats(
            strategy="per_subscription",
            documents=len(self.corpus),
            subscribers=len(self.subscriptions),
            deliveries=deliveries,
            true_deliveries=deliveries,
            false_positives=0,
            false_negatives=0,
            match_operations=len(self.corpus) * len(self.subscriptions),
        )

    def flooding(self) -> RoutingStats:
        """Deliver every document to every subscriber."""
        total = len(self.corpus) * len(self.subscriptions)
        wanted = sum(len(interest) for interest in self._interest)
        return RoutingStats(
            strategy="flooding",
            documents=len(self.corpus),
            subscribers=len(self.subscriptions),
            deliveries=total,
            true_deliveries=wanted,
            false_positives=total - wanted,
            false_negatives=0,
            match_operations=0,
        )

    def community(self, communities: Sequence[Community]) -> RoutingStats:
        """Leader-filtered community dissemination.

        For each document, each community's leader subscription is matched
        exactly; on a hit the document is delivered to all community
        members.  Quality therefore reflects how well members' interests
        agree with their leader's — the semantic coherence the similarity
        metrics are meant to deliver.
        """
        indexed = set()
        for community in communities:
            indexed.update(community.members)
        if indexed != set(range(len(self.subscriptions))):
            raise ValueError("communities must cover every subscription exactly")

        deliveries = 0
        true_deliveries = 0
        false_positives = 0
        false_negatives = 0
        for doc in self.corpus.documents:
            doc_id = doc.doc_id
            for community in communities:
                leader_hit = doc_id in self._interest[community.leader]
                for member in community.members:
                    interested = doc_id in self._interest[member]
                    if leader_hit:
                        deliveries += 1
                        if interested:
                            true_deliveries += 1
                        else:
                            false_positives += 1
                    elif interested:
                        false_negatives += 1
        return RoutingStats(
            strategy="community",
            documents=len(self.corpus),
            subscribers=len(self.subscriptions),
            deliveries=deliveries,
            true_deliveries=true_deliveries,
            false_positives=false_positives,
            false_negatives=false_negatives,
            match_operations=len(self.corpus) * len(communities),
        )
