"""First-class routing policies: advertisement aggregation and scheduling.

The overlay's two behavioural axes used to be hardwired — the
advertisement regime as a pair of ``advertise_*`` methods on
:class:`~repro.routing.overlay.BrokerOverlay`, the queueing discipline as
a private-method override on
:class:`~repro.routing.engine.DeliveryEngine`.  This module turns both
into composable strategy objects, so a deployment picks its point on the
paper's precision-vs-state trade-off (and its fairness-vs-tail-latency
trade-off under load) by *passing a policy*, not by calling a different
method or subclassing the engine.

Advertisement policies (consumed by ``BrokerOverlay.advertise``):

* :class:`PerSubscriptionPolicy` — every subscription advertised on its
  own: exact delivery, maximal routing state (the baseline);
* :class:`CommunityPolicy` — each broker clusters its local subscriptions
  into semantic communities over a live
  :class:`~repro.core.similarity.SimilarityIndex` and advertises one
  pattern per community; ``linkage`` selects greedy leader clustering
  (online) or average-linkage agglomerative clustering (offline quality);
* :class:`HybridPolicy` — per-subscription precision at lightly loaded
  brokers, community aggregation only where it pays: a broker aggregates
  once its live subscription count exceeds ``aggregate_above``.

Scheduling policies (consumed by ``DeliveryEngine``):

* :class:`FifoScheduling` — first come, first served (the baseline);
* :class:`PriorityScheduling` — strict priority by subscriber-class
  weight, FIFO within a class, with optional *aging* (``aging=``) so a
  queued low class's effective weight grows with its wait and starvation
  under sustained overload stays bounded;
* :class:`DeadlineScheduling` — earliest deadline first;
* :class:`WeightedFairScheduling` — long-run class throughput shares
  proportional to configured weights: each selection serves the backlogged
  class furthest below its weighted fair share of the broker's service
  history (which the engine supplies to :meth:`SchedulingPolicy.select_shares`).

Queue admission is a third axis, orthogonal to service order:
:class:`QueuePolicy` bounds each broker's service queue (``capacity=``)
and picks the overflow behaviour — silently drop the arriving document
(``"drop-new"``), evict the oldest queued one (``"drop-oldest"``), or
reject the arrival with a NACK back-pressure signal to its publisher
(``"nack"``).  ``capacity=None`` (the default) is the historical
unbounded queue, byte-identical in replay.

The legacy string spellings stay accepted everywhere policies are:
:func:`resolve_advertisement` maps ``"per_subscription"`` /
``"community"`` (plus keyword overrides) onto a policy instance, and
:func:`resolve_scheduling` maps ``"fifo"`` / ``"priority"`` /
``"deadline"`` likewise — so existing call sites and configuration files
keep working unchanged.

>>> # overlay.advertise(CommunityPolicy(threshold=0.5), provider=corpus)
>>> # overlay.advertise("per_subscription")       # string shim
>>> # DeliveryEngine(overlay, scheduling=PriorityScheduling({2: 10.0}))
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import ClassVar, Mapping, Optional, Protocol, Sequence, Union

from repro.core.candidates import CandidateGenerator, resolve_candidates
from repro.core.pattern import TreePattern
from repro.core.similarity import SelectivityProvider, SimilarityIndex
from repro.routing.community import (
    Community,
    agglomerative_clustering,
    leader_clustering,
)

__all__ = [
    "AdvertisementPolicy",
    "PerSubscriptionPolicy",
    "CommunityPolicy",
    "HybridPolicy",
    "resolve_advertisement",
    "SchedulingPolicy",
    "FifoScheduling",
    "PriorityScheduling",
    "DeadlineScheduling",
    "WeightedFairScheduling",
    "resolve_scheduling",
    "QueuedJob",
    "QueuePolicy",
    "resolve_queue_policy",
    "LINKAGES",
    "OVERFLOW_MODES",
]

#: One aggregated advertisement: the pattern a broker announces and the
#: local subscriber ids it delivers for.
Aggregate = tuple[TreePattern, tuple[int, ...]]

LINKAGES = ("leader", "average")


class AdvertisementPolicy:
    """Strategy deciding how a broker advertises its local subscriptions.

    The overlay hands every policy the same inputs — the broker's
    advertised subscriber ids, their patterns, and (for similarity-based
    policies) the broker's live index — and installs whatever
    ``(advertised pattern, member ids)`` entries :meth:`aggregate`
    returns.  Because the overlay diffs successive aggregations, a policy
    is automatically incremental under churn: it only describes the
    *target* state, never the advertisement traffic to reach it.  That
    covers *topology* churn too — when ``BrokerOverlay.remove_broker``
    re-homes a retiring broker's subscriptions onto its merge target,
    the target re-aggregates through the same diff lifecycle (under
    :class:`HybridPolicy`, crossing the cutoff flips its regime
    automatically), and ``add_broker`` seeds a newcomer without any
    policy involvement at all.
    """

    #: Whether the overlay must equip each broker with a live
    #: :class:`~repro.core.similarity.SimilarityIndex` (and therefore
    #: requires a :class:`~repro.core.similarity.SelectivityProvider`).
    uses_similarity = False

    def mode_label(self) -> str:
        """The ``BrokerOverlay.mode`` string advertised state reports."""
        raise NotImplementedError

    def make_index(self, provider: SelectivityProvider) -> Optional[SimilarityIndex]:
        """A fresh per-broker similarity index, or None if unused."""
        return None

    def aggregate(
        self,
        members: Sequence[int],
        patterns: Sequence[TreePattern],
        index: Optional[SimilarityIndex],
    ) -> list[Aggregate]:
        """Turn one broker's advertised subscriptions into advertisements.

        ``members[i]`` subscribes with ``patterns[i]``; both follow the
        broker's home order.  Returns the full target advertisement state
        for the broker — the overlay applies the diff.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


@dataclass(frozen=True)
class PerSubscriptionPolicy(AdvertisementPolicy):
    """Advertise every subscription individually (the exact baseline)."""

    def mode_label(self) -> str:
        """The ``BrokerOverlay.mode`` string advertised state reports."""
        return "per_subscription"

    def aggregate(
        self,
        members: Sequence[int],
        patterns: Sequence[TreePattern],
        index: Optional[SimilarityIndex],
    ) -> list[Aggregate]:
        """One advertisement per subscription, in home order."""
        return [
            (pattern, (member,))
            for member, pattern in zip(members, patterns, strict=True)
        ]


@dataclass(frozen=True)
class CommunityPolicy(AdvertisementPolicy):
    """Advertise one pattern per semantic community.

    Each broker clusters its local subscriptions over its live similarity
    index and announces a single representative pattern per community —
    routing state shrinks to one entry per community, delivery quality is
    governed by community coherence (i.e. by the similarity metric).

    ``linkage`` selects the clustering: ``"leader"`` is the one-pass
    greedy threshold clustering an online broker can afford;
    ``"average"`` is average-linkage agglomerative clustering that keeps
    merging while the best inter-community linkage stays above
    *threshold* — a better optimiser for offline re-organisation.  With
    ``elect_by_selectivity`` the advertised pattern is the community
    member with the highest selectivity (recall over precision);
    otherwise the clustering's own leader is advertised.

    ``ratio_prefilter`` (leader linkage only) hands *threshold* to each
    broker's index as its selectivity-ratio bound: pairs whose metric
    provably cannot reach the clustering threshold skip the
    joint-selectivity call.  Average linkage sums similarity values
    instead of thresholding them, so the bound never applies there.
    Synopsis estimators whose joint estimates may break the
    ``min(P(p), P(q))`` bound should pass ``ratio_prefilter=False``.

    ``candidates`` restricts which pattern pairs are evaluated at all: a
    :class:`~repro.core.candidates.CandidateGenerator` template (or the
    string spellings ``"exact"`` / ``"lsh"`` / ``"sharded"``) is spawned
    per broker — one population inside the broker's similarity index,
    one leaders-only population inside each clustering pass — so
    LSH-backed community formation stays sublinear in the broker's
    subscription count.  ``None`` keeps the historical all-pairs
    behaviour.
    """

    uses_similarity = True

    threshold: float
    linkage: str = "leader"
    metric: str = "M3"
    elect_by_selectivity: bool = True
    ratio_prefilter: bool = True
    candidates: "CandidateGenerator | str | None" = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        if self.linkage not in LINKAGES:
            raise ValueError(
                f"unknown linkage {self.linkage!r}; choose from {LINKAGES}"
            )
        object.__setattr__(self, "candidates", resolve_candidates(self.candidates))

    @property
    def _generator(self) -> Optional[CandidateGenerator]:
        """The candidate template, narrowed past ``__post_init__``."""
        candidates = self.candidates
        assert not isinstance(candidates, str), "normalised in __post_init__"
        return candidates

    def mode_label(self) -> str:
        """The ``BrokerOverlay.mode`` string advertised state reports."""
        parts = [f"threshold={self.threshold}"]
        if self.linkage != "leader":
            parts.append(f"linkage={self.linkage}")
        if self._generator is not None:
            parts.append(f"candidates={self._generator.describe()}")
        return f"community({', '.join(parts)})"

    def with_candidates(
        self, candidates: "CandidateGenerator | str | None"
    ) -> "CommunityPolicy":
        """A copy of this policy with its candidate template replaced.

        The overlay and builder use this to thread a deployment-level
        generator through without mutating a policy instance that may be
        shared across sweeps.
        """
        return replace(self, candidates=resolve_candidates(candidates))

    def make_index(self, provider: SelectivityProvider) -> SimilarityIndex:
        """A fresh per-broker similarity index under this policy's knobs."""
        prune = (
            self.threshold
            if self.ratio_prefilter and self.linkage == "leader"
            else None
        )
        generator = self._generator
        return SimilarityIndex(
            provider,
            metric=self.metric,
            prune_below=prune,
            candidates=(generator.spawn() if generator is not None else None),
        )

    def _cluster(
        self,
        patterns: Sequence[TreePattern],
        index: SimilarityIndex,
    ) -> list[Community]:
        if self.linkage == "average":
            return agglomerative_clustering(
                patterns,
                index,
                1,
                min_similarity=self.threshold,
                candidates=self._generator,
            )
        return leader_clustering(
            patterns, index, self.threshold, candidates=self._generator
        )

    def aggregate(
        self,
        members: Sequence[int],
        patterns: Sequence[TreePattern],
        index: Optional[SimilarityIndex],
    ) -> list[Aggregate]:
        """One advertisement per community over the broker's live index."""
        assert index is not None, "community aggregation needs a live index"
        aggregated: list[Aggregate] = []
        for community in self._cluster(patterns, index):
            group = tuple(members[i] for i in community.members)
            advertised = patterns[community.leader]
            if self.elect_by_selectivity:
                advertised = max(
                    (patterns[i] for i in community.members),
                    key=index.selectivity,
                )
            aggregated.append((advertised, group))
        return aggregated

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(threshold={self.threshold}, "
            f"linkage={self.linkage!r}, metric={self.metric!r})"
        )


@dataclass(frozen=True)
class HybridPolicy(CommunityPolicy):
    """Aggregate only where aggregation pays.

    Community aggregation trades delivery precision for routing state;
    at a broker holding a handful of subscriptions there is no state to
    save and the precision loss is pure cost.  This policy keeps
    per-subscription advertisement at brokers whose live subscription
    count is at most ``aggregate_above`` and switches to community
    aggregation beyond it — per-broker, re-evaluated on every churn
    event, so a broker crossing the cutoff in either direction flips
    regime automatically (the overlay's diff turns the flip into the
    minimal advertisement traffic).

    Frozen like its base: policies are held across sweeps and replays.
    ``aggregate_above`` is keyword-only in practice — it sits after the
    inherited defaulted fields.
    """

    aggregate_above: int = 8

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.aggregate_above < 0:
            raise ValueError("aggregate_above must be >= 0")

    def mode_label(self) -> str:
        """The ``BrokerOverlay.mode`` string advertised state reports."""
        parts = [
            f"threshold={self.threshold}",
            f"aggregate_above={self.aggregate_above}",
        ]
        if self._generator is not None:
            parts.append(f"candidates={self._generator.describe()}")
        return f"hybrid({', '.join(parts)})"

    def aggregate(
        self,
        members: Sequence[int],
        patterns: Sequence[TreePattern],
        index: Optional[SimilarityIndex],
    ) -> list[Aggregate]:
        """Per-subscription under the cutoff, community aggregation above."""
        if len(members) <= self.aggregate_above:
            return [
                (pattern, (member,))
                for member, pattern in zip(members, patterns, strict=True)
            ]
        return super().aggregate(members, patterns, index)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(threshold={self.threshold}, "
            f"aggregate_above={self.aggregate_above})"
        )


#: Anything ``BrokerOverlay.advertise`` accepts as its policy argument.
AdvertisementSpec = Union[AdvertisementPolicy, str]


def resolve_advertisement(spec: AdvertisementSpec, **overrides: object) -> AdvertisementPolicy:
    """Resolve a policy instance or legacy string spelling to a policy.

    ``"per_subscription"`` maps to :class:`PerSubscriptionPolicy`,
    ``"community"`` to :class:`CommunityPolicy` (keyword overrides such
    as ``threshold=`` are forwarded; the threshold defaults to 0.5), and
    ``"hybrid"`` to :class:`HybridPolicy`.  A policy instance passes
    through unchanged — in which case overrides are rejected, because
    the instance already carries its configuration.
    """
    if isinstance(spec, AdvertisementPolicy):
        if overrides:
            raise ValueError(
                "policy overrides only apply to string spellings; "
                f"configure {type(spec).__name__} directly instead"
            )
        return spec
    if isinstance(spec, str):
        if spec == "per_subscription":
            if overrides:
                raise ValueError("per_subscription advertisement takes no parameters")
            return PerSubscriptionPolicy()
        if spec == "community":
            overrides.setdefault("threshold", 0.5)
            return CommunityPolicy(**overrides)
        if spec == "hybrid":
            overrides.setdefault("threshold", 0.5)
            return HybridPolicy(**overrides)
        raise ValueError(
            f"unknown advertisement policy {spec!r}; choose from "
            "('per_subscription', 'community', 'hybrid') or pass an "
            "AdvertisementPolicy instance"
        )
    raise TypeError(f"expected an AdvertisementPolicy or policy name, got {spec!r}")


# ----------------------------------------------------------------------
# scheduling
# ----------------------------------------------------------------------


class QueuedJob(Protocol):
    """What a scheduling policy may read about a queued document.

    The engine's queue entries satisfy this protocol; policies never see
    (or mutate) anything else of the engine.
    """

    doc_index: int
    published_at: float
    arrived_at: float
    priority_class: int
    deadline: Optional[float]


class SchedulingPolicy:
    """Strategy picking the next document a busy broker services.

    :meth:`select` receives the broker's queue (oldest arrival first)
    and the current simulated time, and returns the *queue position* of
    the job to service next.  Policies must be pure functions of their
    arguments — the engine's bit-for-bit replay determinism rests on it.

    Fair-share disciplines additionally need to know how much service
    each class has already received at this broker; a policy that sets
    ``uses_service_shares`` is called through :meth:`select_shares`
    instead, with the engine supplying that history as a read-only
    mapping.  History is engine-owned and reset per run, so the policy
    object itself stays stateless (and frozen) — replays are unaffected.
    """

    #: Whether the engine should call :meth:`select_shares` (passing the
    #: broker's per-class serviced-document counts) instead of
    #: :meth:`select`.
    uses_service_shares: ClassVar[bool] = False

    def select(self, queue: Sequence[QueuedJob], now: float) -> int:
        """The index (into *queue*) of the job to service next."""
        raise NotImplementedError

    def select_shares(
        self,
        queue: Sequence[QueuedJob],
        now: float,
        shares: Mapping[int, int],
    ) -> int:
        """Like :meth:`select`, with the broker's service history.

        ``shares`` maps ``priority_class`` to the number of documents of
        that class this broker has already started servicing.  The
        default delegates to :meth:`select`, so history-blind policies
        never see it.
        """
        return self.select(queue, now)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


@dataclass(frozen=True)
class FifoScheduling(SchedulingPolicy):
    """First come, first served — the engine's historical discipline."""

    def select(self, queue: Sequence[QueuedJob], now: float) -> int:
        """Always the head of the queue (oldest arrival)."""
        return 0


@dataclass(frozen=True)
class PriorityScheduling(SchedulingPolicy):
    """Strict priority by subscriber-class weight, FIFO within a class.

    ``weights`` maps a job's ``priority_class`` to its scheduling weight;
    higher weight is served first.  A class without an explicit weight
    uses its own numeric value, so with no weights at all a higher class
    number simply outranks a lower one.  Ties keep arrival order, which
    makes the policy a drop-in FIFO when every job carries one class.

    ``aging`` bounds starvation: a queued job's effective weight is
    ``weight(class) + aging * (now - arrived_at)``, so a low class's
    claim grows linearly with its wait and any job is eventually served
    no matter how heavy the high-class stream — strict priority is the
    ``aging=0`` (default) limit.  Within equal effective weights the
    earliest queue position wins, and queue order is arrival order,
    i.e. the engine's deterministic ``(time, seq)`` order.
    """

    weights: Optional[dict[int, float]] = None
    #: Effective-weight growth per simulated time unit of queue wait;
    #: 0.0 (the default) is historical strict priority, byte-identical.
    aging: float = 0.0

    def __post_init__(self) -> None:
        if self.aging < 0.0:
            raise ValueError("aging rate must be >= 0")
        object.__setattr__(self, "weights", dict(self.weights or {}))

    def weight(self, priority_class: int) -> float:
        """The scheduling weight of one subscriber class."""
        assert self.weights is not None  # normalised in __post_init__
        return self.weights.get(priority_class, float(priority_class))

    def effective_weight(self, job: QueuedJob, now: float) -> float:
        """The class weight plus the job's accumulated aging credit."""
        if self.aging == 0.0:
            return self.weight(job.priority_class)
        return self.weight(job.priority_class) + self.aging * max(
            0.0, now - job.arrived_at
        )

    def select(self, queue: Sequence[QueuedJob], now: float) -> int:
        """The queue position carrying the highest effective weight."""
        # enumerate, not indexing: the engine queues are deques, where
        # positional access is O(position).
        best = 0
        best_weight: Optional[float] = None
        for position, job in enumerate(queue):
            weight = self.effective_weight(job, now)
            if best_weight is None or weight > best_weight:
                best = position
                best_weight = weight
        return best

    def __repr__(self) -> str:
        if self.aging:
            return (
                f"{type(self).__name__}(weights={self.weights}, "
                f"aging={self.aging})"
            )
        return f"{type(self).__name__}(weights={self.weights})"


@dataclass(frozen=True)
class DeadlineScheduling(SchedulingPolicy):
    """Earliest deadline first.

    Jobs published without a deadline fall back to ``published_at +
    default_slack``; with the default infinite slack they yield to every
    deadline-carrying job and keep arrival order among themselves.
    """

    default_slack: float = float("inf")

    def __post_init__(self) -> None:
        if self.default_slack < 0.0:
            raise ValueError("default_slack must be >= 0")

    def _deadline(self, job: QueuedJob) -> float:
        if job.deadline is not None:
            return job.deadline
        return job.published_at + self.default_slack

    def select(self, queue: Sequence[QueuedJob], now: float) -> int:
        """The queue position with the earliest effective deadline."""
        best = 0
        best_deadline: Optional[float] = None
        for position, job in enumerate(queue):
            deadline = self._deadline(job)
            if best_deadline is None or deadline < best_deadline:
                best = position
                best_deadline = deadline
        return best

    def __repr__(self) -> str:
        return f"{type(self).__name__}(default_slack={self.default_slack})"


@dataclass(frozen=True)
class WeightedFairScheduling(SchedulingPolicy):
    """Weighted-fair service: class shares converge to configured weights.

    Each selection serves the backlogged class with the smallest
    *normalised share* — the broker's serviced-document count for the
    class divided by the class's weight — FIFO within the class.  When
    every class stays backlogged this is deficit-round-robin in spirit:
    long-run per-class service counts converge to the weight proportions,
    so under sustained overload the low class keeps a guaranteed fraction
    of the broker instead of starving (the failure mode of strict
    :class:`PriorityScheduling`).

    ``weights`` maps ``priority_class`` to its fair share weight (> 0);
    classes not listed use ``default_weight``.  Service history is
    engine-owned and passed per call (``uses_service_shares``), so the
    policy object itself stays stateless and replays stay bit-identical.
    Ties — equal normalised shares — serve the earliest queue position,
    which is arrival order, i.e. ``(time, seq)`` order.
    """

    weights: Optional[dict[int, float]] = None
    default_weight: float = 1.0

    uses_service_shares: ClassVar[bool] = True

    def __post_init__(self) -> None:
        if self.default_weight <= 0.0:
            raise ValueError("default_weight must be positive")
        normalised = dict(self.weights or {})
        for priority_class, weight in normalised.items():
            if weight <= 0.0:
                raise ValueError(
                    f"fair-share weight of class {priority_class} must be "
                    "positive"
                )
        object.__setattr__(self, "weights", normalised)

    def weight(self, priority_class: int) -> float:
        """The fair-share weight of one subscriber class."""
        assert self.weights is not None  # normalised in __post_init__
        return self.weights.get(priority_class, self.default_weight)

    def select(self, queue: Sequence[QueuedJob], now: float) -> int:
        """History-blind fallback: fair selection over an empty history.

        Every queued class then has normalised share 0, so the head of
        the queue (earliest arrival) is served — FIFO.  Engines that
        track shares call :meth:`select_shares` instead.
        """
        return self.select_shares(queue, now, {})

    def select_shares(
        self,
        queue: Sequence[QueuedJob],
        now: float,
        shares: Mapping[int, int],
    ) -> int:
        """The earliest job of the most under-served class."""
        best = 0
        best_share: Optional[float] = None
        seen: dict[int, float] = {}
        for position, job in enumerate(queue):
            if job.priority_class in seen:
                # FIFO within a class: only its earliest position counts.
                continue
            share = shares.get(job.priority_class, 0) / self.weight(
                job.priority_class
            )
            seen[job.priority_class] = share
            if best_share is None or share < best_share:
                best = position
                best_share = share
        return best

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(weights={self.weights}, "
            f"default_weight={self.default_weight})"
        )


#: Anything ``DeliveryEngine`` accepts as its scheduling argument.
SchedulingSpec = Union[SchedulingPolicy, str]

_SCHEDULING_NAMES = {
    "fifo": FifoScheduling,
    "priority": PriorityScheduling,
    "deadline": DeadlineScheduling,
    "weighted_fair": WeightedFairScheduling,
}


def resolve_scheduling(spec: SchedulingSpec, **overrides: object) -> SchedulingPolicy:
    """Resolve a policy instance or string spelling to a scheduling policy.

    ``"fifo"``, ``"priority"`` and ``"deadline"`` map to their policy
    classes (keyword overrides are forwarded to the constructor); an
    instance passes through unchanged, rejecting overrides.
    """
    if isinstance(spec, SchedulingPolicy):
        if overrides:
            raise ValueError(
                "scheduling overrides only apply to string spellings; "
                f"configure {type(spec).__name__} directly instead"
            )
        return spec
    if isinstance(spec, str):
        try:
            factory = _SCHEDULING_NAMES[spec]
        except KeyError:
            raise ValueError(
                f"unknown scheduling policy {spec!r}; choose from "
                f"{tuple(sorted(_SCHEDULING_NAMES))} or pass a "
                "SchedulingPolicy instance"
            ) from None
        return factory(**overrides)
    raise TypeError(f"expected a SchedulingPolicy or policy name, got {spec!r}")


# ----------------------------------------------------------------------
# queue admission
# ----------------------------------------------------------------------


#: Accepted :attr:`QueuePolicy.overflow` behaviours.
OVERFLOW_MODES = ("drop-new", "drop-oldest", "nack")


@dataclass(frozen=True)
class QueuePolicy:
    """Admission control for a broker's service queue.

    ``capacity`` bounds how many documents may *wait* at a broker (the
    one in service is not counted; ``capacity=0`` is a pure loss system
    with no waiting room).  ``None`` — the default — is the historical
    unbounded queue: the engine's schedule is then byte-identical to the
    pre-queue-policy engine, which the overload property suite pins.

    ``overflow`` picks what happens to an arrival at a full queue:

    * ``"drop-new"`` — the arriving document copy is discarded;
    * ``"drop-oldest"`` — the oldest *queued* copy is evicted to make
      room (the arrival is admitted), so the queue favours fresh data —
      the streaming/telemetry trade;
    * ``"nack"`` — the arrival is rejected and a NACK back-pressure
      signal is scheduled to its publishing source (if it has one; see
      :class:`~repro.routing.engine.ClosedLoopSource`), which is what a
      window-based publisher reacts to.

    Every dropped or nacked copy is accounted per class and per broker in
    :class:`~repro.routing.broker.LatencyStats`, preserving the
    conservation invariant ``offered == completed + dropped + nacked +
    in-flight`` at every drain point.
    """

    capacity: Optional[int] = None
    overflow: str = "drop-new"

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity < 0:
            raise ValueError("queue capacity must be >= 0 (or None)")
        if self.overflow not in OVERFLOW_MODES:
            raise ValueError(
                f"unknown overflow behaviour {self.overflow!r}; choose "
                f"from {OVERFLOW_MODES}"
            )

    @property
    def bounded(self) -> bool:
        """Whether this policy can ever reject or evict a document."""
        return self.capacity is not None

    def admits(self, queued: int) -> bool:
        """Whether a queue currently holding *queued* documents admits
        one more without overflow handling."""
        return self.capacity is None or queued < self.capacity

    def __repr__(self) -> str:
        if self.capacity is None:
            return f"{type(self).__name__}(capacity=None)"
        return (
            f"{type(self).__name__}(capacity={self.capacity}, "
            f"overflow={self.overflow!r})"
        )


#: Anything ``DeliveryEngine`` accepts as its queue-policy argument: a
#: policy instance, a bare capacity (``drop-new`` overflow), or None for
#: the unbounded default.
QueuePolicySpec = Union[QueuePolicy, int, None]


def resolve_queue_policy(spec: QueuePolicySpec, **overrides: object) -> QueuePolicy:
    """Resolve a queue-policy spelling to a :class:`QueuePolicy`.

    ``None`` yields the unbounded default, a bare ``int`` is shorthand
    for ``QueuePolicy(capacity=n)`` (keyword overrides such as
    ``overflow=`` are forwarded), and an instance passes through
    unchanged — rejecting overrides, since it already carries its
    configuration.
    """
    if isinstance(spec, QueuePolicy):
        if overrides:
            raise ValueError(
                "queue-policy overrides only apply to capacity shorthands; "
                "configure QueuePolicy directly instead"
            )
        return spec
    if spec is None:
        if overrides:
            raise ValueError(
                "queue-policy overrides need a capacity; pass a "
                "QueuePolicy instance instead"
            )
        return QueuePolicy()
    if isinstance(spec, int) and not isinstance(spec, bool):
        overflow = overrides.pop("overflow", "drop-new")
        if overrides:
            raise ValueError(
                f"unknown queue-policy overrides {sorted(overrides)}; "
                "only overflow= applies to a capacity shorthand"
            )
        return QueuePolicy(capacity=spec, overflow=str(overflow))
    raise TypeError(
        f"expected a QueuePolicy, a capacity int or None, got {spec!r}"
    )
