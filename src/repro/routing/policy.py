"""First-class routing policies: advertisement aggregation and scheduling.

The overlay's two behavioural axes used to be hardwired — the
advertisement regime as a pair of ``advertise_*`` methods on
:class:`~repro.routing.overlay.BrokerOverlay`, the queueing discipline as
a private-method override on
:class:`~repro.routing.engine.DeliveryEngine`.  This module turns both
into composable strategy objects, so a deployment picks its point on the
paper's precision-vs-state trade-off (and its fairness-vs-tail-latency
trade-off under load) by *passing a policy*, not by calling a different
method or subclassing the engine.

Advertisement policies (consumed by ``BrokerOverlay.advertise``):

* :class:`PerSubscriptionPolicy` — every subscription advertised on its
  own: exact delivery, maximal routing state (the baseline);
* :class:`CommunityPolicy` — each broker clusters its local subscriptions
  into semantic communities over a live
  :class:`~repro.core.similarity.SimilarityIndex` and advertises one
  pattern per community; ``linkage`` selects greedy leader clustering
  (online) or average-linkage agglomerative clustering (offline quality);
* :class:`HybridPolicy` — per-subscription precision at lightly loaded
  brokers, community aggregation only where it pays: a broker aggregates
  once its live subscription count exceeds ``aggregate_above``.

Scheduling policies (consumed by ``DeliveryEngine``):

* :class:`FifoScheduling` — first come, first served (the baseline);
* :class:`PriorityScheduling` — strict priority by subscriber-class
  weight, FIFO within a class;
* :class:`DeadlineScheduling` — earliest deadline first.

The legacy string spellings stay accepted everywhere policies are:
:func:`resolve_advertisement` maps ``"per_subscription"`` /
``"community"`` (plus keyword overrides) onto a policy instance, and
:func:`resolve_scheduling` maps ``"fifo"`` / ``"priority"`` /
``"deadline"`` likewise — so existing call sites and configuration files
keep working unchanged.

>>> # overlay.advertise(CommunityPolicy(threshold=0.5), provider=corpus)
>>> # overlay.advertise("per_subscription")       # string shim
>>> # DeliveryEngine(overlay, scheduling=PriorityScheduling({2: 10.0}))
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Protocol, Sequence, Union

from repro.core.candidates import CandidateGenerator, resolve_candidates
from repro.core.pattern import TreePattern
from repro.core.similarity import SelectivityProvider, SimilarityIndex
from repro.routing.community import (
    Community,
    agglomerative_clustering,
    leader_clustering,
)

__all__ = [
    "AdvertisementPolicy",
    "PerSubscriptionPolicy",
    "CommunityPolicy",
    "HybridPolicy",
    "resolve_advertisement",
    "SchedulingPolicy",
    "FifoScheduling",
    "PriorityScheduling",
    "DeadlineScheduling",
    "resolve_scheduling",
    "QueuedJob",
    "LINKAGES",
]

#: One aggregated advertisement: the pattern a broker announces and the
#: local subscriber ids it delivers for.
Aggregate = tuple[TreePattern, tuple[int, ...]]

LINKAGES = ("leader", "average")


class AdvertisementPolicy:
    """Strategy deciding how a broker advertises its local subscriptions.

    The overlay hands every policy the same inputs — the broker's
    advertised subscriber ids, their patterns, and (for similarity-based
    policies) the broker's live index — and installs whatever
    ``(advertised pattern, member ids)`` entries :meth:`aggregate`
    returns.  Because the overlay diffs successive aggregations, a policy
    is automatically incremental under churn: it only describes the
    *target* state, never the advertisement traffic to reach it.  That
    covers *topology* churn too — when ``BrokerOverlay.remove_broker``
    re-homes a retiring broker's subscriptions onto its merge target,
    the target re-aggregates through the same diff lifecycle (under
    :class:`HybridPolicy`, crossing the cutoff flips its regime
    automatically), and ``add_broker`` seeds a newcomer without any
    policy involvement at all.
    """

    #: Whether the overlay must equip each broker with a live
    #: :class:`~repro.core.similarity.SimilarityIndex` (and therefore
    #: requires a :class:`~repro.core.similarity.SelectivityProvider`).
    uses_similarity = False

    def mode_label(self) -> str:
        """The ``BrokerOverlay.mode`` string advertised state reports."""
        raise NotImplementedError

    def make_index(self, provider: SelectivityProvider) -> Optional[SimilarityIndex]:
        """A fresh per-broker similarity index, or None if unused."""
        return None

    def aggregate(
        self,
        members: Sequence[int],
        patterns: Sequence[TreePattern],
        index: Optional[SimilarityIndex],
    ) -> list[Aggregate]:
        """Turn one broker's advertised subscriptions into advertisements.

        ``members[i]`` subscribes with ``patterns[i]``; both follow the
        broker's home order.  Returns the full target advertisement state
        for the broker — the overlay applies the diff.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


@dataclass(frozen=True)
class PerSubscriptionPolicy(AdvertisementPolicy):
    """Advertise every subscription individually (the exact baseline)."""

    def mode_label(self) -> str:
        """The ``BrokerOverlay.mode`` string advertised state reports."""
        return "per_subscription"

    def aggregate(
        self,
        members: Sequence[int],
        patterns: Sequence[TreePattern],
        index: Optional[SimilarityIndex],
    ) -> list[Aggregate]:
        """One advertisement per subscription, in home order."""
        return [
            (pattern, (member,))
            for member, pattern in zip(members, patterns, strict=True)
        ]


@dataclass(frozen=True)
class CommunityPolicy(AdvertisementPolicy):
    """Advertise one pattern per semantic community.

    Each broker clusters its local subscriptions over its live similarity
    index and announces a single representative pattern per community —
    routing state shrinks to one entry per community, delivery quality is
    governed by community coherence (i.e. by the similarity metric).

    ``linkage`` selects the clustering: ``"leader"`` is the one-pass
    greedy threshold clustering an online broker can afford;
    ``"average"`` is average-linkage agglomerative clustering that keeps
    merging while the best inter-community linkage stays above
    *threshold* — a better optimiser for offline re-organisation.  With
    ``elect_by_selectivity`` the advertised pattern is the community
    member with the highest selectivity (recall over precision);
    otherwise the clustering's own leader is advertised.

    ``ratio_prefilter`` (leader linkage only) hands *threshold* to each
    broker's index as its selectivity-ratio bound: pairs whose metric
    provably cannot reach the clustering threshold skip the
    joint-selectivity call.  Average linkage sums similarity values
    instead of thresholding them, so the bound never applies there.
    Synopsis estimators whose joint estimates may break the
    ``min(P(p), P(q))`` bound should pass ``ratio_prefilter=False``.

    ``candidates`` restricts which pattern pairs are evaluated at all: a
    :class:`~repro.core.candidates.CandidateGenerator` template (or the
    string spellings ``"exact"`` / ``"lsh"`` / ``"sharded"``) is spawned
    per broker — one population inside the broker's similarity index,
    one leaders-only population inside each clustering pass — so
    LSH-backed community formation stays sublinear in the broker's
    subscription count.  ``None`` keeps the historical all-pairs
    behaviour.
    """

    uses_similarity = True

    threshold: float
    linkage: str = "leader"
    metric: str = "M3"
    elect_by_selectivity: bool = True
    ratio_prefilter: bool = True
    candidates: "CandidateGenerator | str | None" = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        if self.linkage not in LINKAGES:
            raise ValueError(
                f"unknown linkage {self.linkage!r}; choose from {LINKAGES}"
            )
        object.__setattr__(self, "candidates", resolve_candidates(self.candidates))

    @property
    def _generator(self) -> Optional[CandidateGenerator]:
        """The candidate template, narrowed past ``__post_init__``."""
        candidates = self.candidates
        assert not isinstance(candidates, str), "normalised in __post_init__"
        return candidates

    def mode_label(self) -> str:
        """The ``BrokerOverlay.mode`` string advertised state reports."""
        parts = [f"threshold={self.threshold}"]
        if self.linkage != "leader":
            parts.append(f"linkage={self.linkage}")
        if self._generator is not None:
            parts.append(f"candidates={self._generator.describe()}")
        return f"community({', '.join(parts)})"

    def with_candidates(
        self, candidates: "CandidateGenerator | str | None"
    ) -> "CommunityPolicy":
        """A copy of this policy with its candidate template replaced.

        The overlay and builder use this to thread a deployment-level
        generator through without mutating a policy instance that may be
        shared across sweeps.
        """
        return replace(self, candidates=resolve_candidates(candidates))

    def make_index(self, provider: SelectivityProvider) -> SimilarityIndex:
        """A fresh per-broker similarity index under this policy's knobs."""
        prune = (
            self.threshold
            if self.ratio_prefilter and self.linkage == "leader"
            else None
        )
        generator = self._generator
        return SimilarityIndex(
            provider,
            metric=self.metric,
            prune_below=prune,
            candidates=(generator.spawn() if generator is not None else None),
        )

    def _cluster(
        self,
        patterns: Sequence[TreePattern],
        index: SimilarityIndex,
    ) -> list[Community]:
        if self.linkage == "average":
            return agglomerative_clustering(
                patterns,
                index,
                1,
                min_similarity=self.threshold,
                candidates=self._generator,
            )
        return leader_clustering(
            patterns, index, self.threshold, candidates=self._generator
        )

    def aggregate(
        self,
        members: Sequence[int],
        patterns: Sequence[TreePattern],
        index: Optional[SimilarityIndex],
    ) -> list[Aggregate]:
        """One advertisement per community over the broker's live index."""
        assert index is not None, "community aggregation needs a live index"
        aggregated: list[Aggregate] = []
        for community in self._cluster(patterns, index):
            group = tuple(members[i] for i in community.members)
            advertised = patterns[community.leader]
            if self.elect_by_selectivity:
                advertised = max(
                    (patterns[i] for i in community.members),
                    key=index.selectivity,
                )
            aggregated.append((advertised, group))
        return aggregated

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(threshold={self.threshold}, "
            f"linkage={self.linkage!r}, metric={self.metric!r})"
        )


@dataclass(frozen=True)
class HybridPolicy(CommunityPolicy):
    """Aggregate only where aggregation pays.

    Community aggregation trades delivery precision for routing state;
    at a broker holding a handful of subscriptions there is no state to
    save and the precision loss is pure cost.  This policy keeps
    per-subscription advertisement at brokers whose live subscription
    count is at most ``aggregate_above`` and switches to community
    aggregation beyond it — per-broker, re-evaluated on every churn
    event, so a broker crossing the cutoff in either direction flips
    regime automatically (the overlay's diff turns the flip into the
    minimal advertisement traffic).

    Frozen like its base: policies are held across sweeps and replays.
    ``aggregate_above`` is keyword-only in practice — it sits after the
    inherited defaulted fields.
    """

    aggregate_above: int = 8

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.aggregate_above < 0:
            raise ValueError("aggregate_above must be >= 0")

    def mode_label(self) -> str:
        """The ``BrokerOverlay.mode`` string advertised state reports."""
        parts = [
            f"threshold={self.threshold}",
            f"aggregate_above={self.aggregate_above}",
        ]
        if self._generator is not None:
            parts.append(f"candidates={self._generator.describe()}")
        return f"hybrid({', '.join(parts)})"

    def aggregate(
        self,
        members: Sequence[int],
        patterns: Sequence[TreePattern],
        index: Optional[SimilarityIndex],
    ) -> list[Aggregate]:
        """Per-subscription under the cutoff, community aggregation above."""
        if len(members) <= self.aggregate_above:
            return [
                (pattern, (member,))
                for member, pattern in zip(members, patterns, strict=True)
            ]
        return super().aggregate(members, patterns, index)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(threshold={self.threshold}, "
            f"aggregate_above={self.aggregate_above})"
        )


#: Anything ``BrokerOverlay.advertise`` accepts as its policy argument.
AdvertisementSpec = Union[AdvertisementPolicy, str]


def resolve_advertisement(spec: AdvertisementSpec, **overrides: object) -> AdvertisementPolicy:
    """Resolve a policy instance or legacy string spelling to a policy.

    ``"per_subscription"`` maps to :class:`PerSubscriptionPolicy`,
    ``"community"`` to :class:`CommunityPolicy` (keyword overrides such
    as ``threshold=`` are forwarded; the threshold defaults to 0.5), and
    ``"hybrid"`` to :class:`HybridPolicy`.  A policy instance passes
    through unchanged — in which case overrides are rejected, because
    the instance already carries its configuration.
    """
    if isinstance(spec, AdvertisementPolicy):
        if overrides:
            raise ValueError(
                "policy overrides only apply to string spellings; "
                f"configure {type(spec).__name__} directly instead"
            )
        return spec
    if isinstance(spec, str):
        if spec == "per_subscription":
            if overrides:
                raise ValueError("per_subscription advertisement takes no parameters")
            return PerSubscriptionPolicy()
        if spec == "community":
            overrides.setdefault("threshold", 0.5)
            return CommunityPolicy(**overrides)
        if spec == "hybrid":
            overrides.setdefault("threshold", 0.5)
            return HybridPolicy(**overrides)
        raise ValueError(
            f"unknown advertisement policy {spec!r}; choose from "
            "('per_subscription', 'community', 'hybrid') or pass an "
            "AdvertisementPolicy instance"
        )
    raise TypeError(f"expected an AdvertisementPolicy or policy name, got {spec!r}")


# ----------------------------------------------------------------------
# scheduling
# ----------------------------------------------------------------------


class QueuedJob(Protocol):
    """What a scheduling policy may read about a queued document.

    The engine's queue entries satisfy this protocol; policies never see
    (or mutate) anything else of the engine.
    """

    doc_index: int
    published_at: float
    arrived_at: float
    priority_class: int
    deadline: Optional[float]


class SchedulingPolicy:
    """Strategy picking the next document a busy broker services.

    :meth:`select` receives the broker's queue (oldest arrival first)
    and the current simulated time, and returns the *queue position* of
    the job to service next.  Policies must be pure functions of their
    arguments — the engine's bit-for-bit replay determinism rests on it.
    """

    def select(self, queue: Sequence[QueuedJob], now: float) -> int:
        """The index (into *queue*) of the job to service next."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


@dataclass(frozen=True)
class FifoScheduling(SchedulingPolicy):
    """First come, first served — the engine's historical discipline."""

    def select(self, queue: Sequence[QueuedJob], now: float) -> int:
        """Always the head of the queue (oldest arrival)."""
        return 0


@dataclass(frozen=True)
class PriorityScheduling(SchedulingPolicy):
    """Strict priority by subscriber-class weight, FIFO within a class.

    ``weights`` maps a job's ``priority_class`` to its scheduling weight;
    higher weight is served first.  A class without an explicit weight
    uses its own numeric value, so with no weights at all a higher class
    number simply outranks a lower one.  Ties keep arrival order, which
    makes the policy a drop-in FIFO when every job carries one class.
    """

    weights: Optional[dict[int, float]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "weights", dict(self.weights or {}))

    def weight(self, priority_class: int) -> float:
        """The scheduling weight of one subscriber class."""
        assert self.weights is not None  # normalised in __post_init__
        return self.weights.get(priority_class, float(priority_class))

    def select(self, queue: Sequence[QueuedJob], now: float) -> int:
        """The queue position carrying the highest class weight."""
        # enumerate, not indexing: the engine queues are deques, where
        # positional access is O(position).
        best = 0
        best_weight: Optional[float] = None
        for position, job in enumerate(queue):
            weight = self.weight(job.priority_class)
            if best_weight is None or weight > best_weight:
                best = position
                best_weight = weight
        return best

    def __repr__(self) -> str:
        return f"{type(self).__name__}(weights={self.weights})"


@dataclass(frozen=True)
class DeadlineScheduling(SchedulingPolicy):
    """Earliest deadline first.

    Jobs published without a deadline fall back to ``published_at +
    default_slack``; with the default infinite slack they yield to every
    deadline-carrying job and keep arrival order among themselves.
    """

    default_slack: float = float("inf")

    def __post_init__(self) -> None:
        if self.default_slack < 0.0:
            raise ValueError("default_slack must be >= 0")

    def _deadline(self, job: QueuedJob) -> float:
        if job.deadline is not None:
            return job.deadline
        return job.published_at + self.default_slack

    def select(self, queue: Sequence[QueuedJob], now: float) -> int:
        """The queue position with the earliest effective deadline."""
        best = 0
        best_deadline: Optional[float] = None
        for position, job in enumerate(queue):
            deadline = self._deadline(job)
            if best_deadline is None or deadline < best_deadline:
                best = position
                best_deadline = deadline
        return best

    def __repr__(self) -> str:
        return f"{type(self).__name__}(default_slack={self.default_slack})"


#: Anything ``DeliveryEngine`` accepts as its scheduling argument.
SchedulingSpec = Union[SchedulingPolicy, str]

_SCHEDULING_NAMES = {
    "fifo": FifoScheduling,
    "priority": PriorityScheduling,
    "deadline": DeadlineScheduling,
}


def resolve_scheduling(spec: SchedulingSpec, **overrides: object) -> SchedulingPolicy:
    """Resolve a policy instance or string spelling to a scheduling policy.

    ``"fifo"``, ``"priority"`` and ``"deadline"`` map to their policy
    classes (keyword overrides are forwarded to the constructor); an
    instance passes through unchanged, rejecting overrides.
    """
    if isinstance(spec, SchedulingPolicy):
        if overrides:
            raise ValueError(
                "scheduling overrides only apply to string spellings; "
                f"configure {type(spec).__name__} directly instead"
            )
        return spec
    if isinstance(spec, str):
        try:
            factory = _SCHEDULING_NAMES[spec]
        except KeyError:
            raise ValueError(
                f"unknown scheduling policy {spec!r}; choose from "
                f"{tuple(sorted(_SCHEDULING_NAMES))} or pass a "
                "SchedulingPolicy instance"
            ) from None
        return factory(**overrides)
    raise TypeError(f"expected a SchedulingPolicy or policy name, got {spec!r}")
