"""Broker routing tables with containment-based covering.

A content-based router keeps, per destination (a neighbouring broker or a
local delivery group), the set of tree patterns whose matching documents
must be sent there.  The table applies the classic *covering* optimisation
using :mod:`repro.core.containment`:

* an inserted pattern already contained in an existing same-destination
  entry is dropped — any document it matches is routed there anyway;
* conversely, existing same-destination entries contained in the new
  pattern are evicted, so the table keeps only the maximal patterns.

Because the homomorphism containment test is sound but not complete, a
missed covering relation only costs table space, never correctness.

Covering is *reversible*: every advertisement a covering entry absorbed
(a dropped insert or an evicted entry) is remembered under that entry, so
:meth:`RoutingTable.remove_pattern` can retire one advertisement instance
at a time — removing a duplicate silently, and resurrecting the absorbed
advertisements when the last covering instance leaves.  The restored
entries are returned to the caller, which is exactly what a broker's
unadvertise protocol needs to re-announce them downstream.

The same instance bookkeeping powers *topology surgery*: when the broker
tree itself changes, :meth:`RoutingTable.rename_destination` re-keys a
link's state to its new next hop, :meth:`RoutingTable.export_destination`
hands the full instance multiset (with flood flags) to a merge target,
and :meth:`RoutingTable.seed` re-installs instances whose downstream
state already exists — so broker join/leave never re-floods what the
overlay already knows (see ``BrokerOverlay.add_broker`` /
``remove_broker``).

Matching goes through a merged :class:`~repro.routing.trie.PatternTrie`
by default: all active entries share one structure, one traversal returns
every matching destination, and the *trie operations* spent (anchor tests
plus shared-subtree satisfactions computed — see :mod:`repro.routing.trie`)
are the filtering-cost unit reported by the overlay layer.  The
per-pattern fallback (``matching="linear"``) evaluates entries destination
by destination, short-circuiting within a destination on the first hit,
and counts one match operation per pattern-vs-document evaluation; it is
retained as the oracle the trie is pinned against.  The trie is maintained
incrementally at every admission, eviction, restoration and surgery step —
never rebuilt from scratch.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Optional, Sequence

from repro.core.containment import contains
from repro.core.pattern import TreePattern
from repro.routing.trie import PatternTrie
from repro.xmltree.matcher import CompiledPattern, PatternMatcher
from repro.xmltree.tree import XMLTree

__all__ = ["TableEntry", "RoutingTable", "TableBatchMatch"]

Destination = Hashable


@dataclass(frozen=True)
class TableEntry:
    """One routing-table row: forward documents matching *pattern* to
    *destination*."""

    pattern: TreePattern
    destination: Destination


@dataclass
class TableBatchMatch:
    """Outcome of one :meth:`RoutingTable.destinations_for_batch` call.

    ``destinations`` / ``operations`` are aligned with the input batch:
    one table-order destination list and one attributed operation count
    per document.  ``memo_hits`` / ``memo_misses`` report the shared
    trie pool's amortisation (both zero in linear mode, which has no
    cross-document sharing).
    """

    destinations: list[list[Destination]]
    operations: list[int]
    memo_hits: int = 0
    memo_misses: int = 0

    @property
    def total_operations(self) -> int:
        """Match operations summed over all documents."""
        return sum(self.operations)

    @property
    def hit_rate(self) -> float:
        """Fraction of trie-pool lookups answered without recomputation."""
        lookups = self.memo_hits + self.memo_misses
        return self.memo_hits / lookups if lookups else 0.0


class RoutingTable:
    """Covering-aware pattern → destination table of one broker.

    ``matching`` selects the filtering engine: ``"trie"`` (the default)
    routes through the incrementally maintained merged
    :class:`~repro.routing.trie.PatternTrie`, ``"linear"`` through the
    per-pattern scan.  Both are always kept consistent, so either can be
    queried per call via ``destinations_for(..., matching=...)`` — the
    linear scan is the oracle the trie is property-tested against.
    """

    def __init__(self, matching: str = "trie") -> None:
        if matching not in ("trie", "linear"):
            raise ValueError(f"unknown matching mode: {matching!r}")
        self.matching = matching
        self._by_destination: dict[Destination, list[TreePattern]] = {}
        #: Per destination: active entry -> the advertisement instances it
        #: absorbed, as ``(pattern, resume_flood)`` tuples (duplicates
        #: kept).  ``resume_flood`` is decided once, when the instance is
        #: first absorbed: True for a covered *insert* (its flood died in
        #: this table, so downstream brokers never heard of it and a later
        #: restoration must re-advertise it), False for an *evicted* active
        #: entry (its flood had already passed through, so downstream state
        #: exists and restoring it is purely local).  The flag travels with
        #: the instance through any number of re-absorptions.
        self._absorbed: dict[
            Destination, dict[TreePattern, list[tuple[TreePattern, bool]]]
        ] = {}
        self._matchers: dict[TreePattern, PatternMatcher] = {}
        #: Destination → insertion rank, mirroring ``_by_destination``'s
        #: key order exactly (a renamed destination re-enters at the
        #: end, like a dict pop + reinsert).  Lets trie-mode
        #: ``destinations_for`` order its matches in
        #: O(|matched| log |matched|) instead of scanning every
        #: destination per call.
        self._dest_rank: dict[Destination, int] = {}
        self._next_rank = 0
        #: The merged matching structure over every *active* entry.
        self._trie = PatternTrie()
        #: Per pattern: how many destinations hold it active — the
        #: refcount behind O(1) matcher-cache pruning.
        self._active_counts: dict[TreePattern, int] = {}
        self.match_operations = 0
        self.covered_inserts = 0
        self.evicted_entries = 0
        self.restored_entries = 0

    # ------------------------------------------------------------------
    # active-set bookkeeping
    # ------------------------------------------------------------------
    #
    # Every mutation of the active entry sets goes through this pair, so
    # the merged trie and the matcher-cache refcounts can never drift
    # from ``_by_destination``.

    def _activate(self, pattern: TreePattern, destination: Destination) -> None:
        self._active_counts[pattern] = self._active_counts.get(pattern, 0) + 1
        self._trie.add(pattern, destination)

    def _deactivate(
        self, pattern: TreePattern, destination: Destination
    ) -> None:
        remaining = self._active_counts[pattern] - 1
        if remaining:
            self._active_counts[pattern] = remaining
        else:
            del self._active_counts[pattern]
        self._trie.discard(pattern, destination)
        self._prune_matcher(pattern)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def add(self, pattern: TreePattern, destination: Destination) -> bool:
        """Insert an advertisement; returns False when covering dropped it.

        Covering is evaluated per destination only: two destinations never
        absorb each other's entries, because a document must reach every
        interested next hop independently.  Absorbed advertisements (the
        dropped insert, or the evicted entries together with everything
        *they* had absorbed) are remembered under the covering entry for
        :meth:`remove_pattern` to resurrect.
        """
        return self._admit(pattern, destination, resume_flood=True)

    def _admit(
        self, pattern: TreePattern, destination: Destination, resume_flood: bool
    ) -> bool:
        """Insert one advertisement instance carrying its flood flag.

        ``resume_flood`` is the flag recorded if covering absorbs the
        instance: True for a fresh advertisement (public :meth:`add`),
        or the instance's original flag when a restoration re-admits it.
        """
        patterns = self._by_destination.get(destination)
        if patterns is None:
            patterns = self._by_destination[destination] = []
            self._dest_rank[destination] = self._next_rank
            self._next_rank += 1
        for existing in patterns:
            if contains(existing, pattern):
                self.covered_inserts += 1
                self._absorbed.setdefault(destination, {}).setdefault(
                    existing, []
                ).append((pattern, resume_flood))
                return False
        survivors: list[TreePattern] = []
        evicted_active: list[TreePattern] = []
        absorbed_here: list[tuple[TreePattern, bool]] = []
        dest_absorbed = self._absorbed.get(destination, {})
        for existing in patterns:
            if contains(pattern, existing):
                evicted_active.append(existing)
                absorbed_here.append((existing, False))
                absorbed_here.extend(dest_absorbed.pop(existing, ()))
            else:
                survivors.append(existing)
        self.evicted_entries += len(evicted_active)
        survivors.append(pattern)
        self._by_destination[destination] = survivors
        self._activate(pattern, destination)
        for evicted in evicted_active:
            self._deactivate(evicted, destination)
        if absorbed_here:
            self._absorbed.setdefault(destination, {}).setdefault(
                pattern, []
            ).extend(absorbed_here)
        return True

    @staticmethod
    def _restore_order(
        candidates: list[tuple[TreePattern, bool]],
    ) -> list[tuple[TreePattern, bool]]:
        """Maximal-first re-admission order for absorbed instances.

        Inserting containers before containees guarantees a restoration
        never *evicts* a just-restored entry (which would scramble the
        flood flags); among equal patterns the evicted-active instance
        (False) goes first so it, not a duplicate, claims the active slot.

        The strict-containment relation over the candidates is computed
        once — ``contains`` runs on each ordered pair of *distinct*
        patterns, at most k·(k−1) invocations — and the order is emitted
        topologically (lowest surviving position first, so ties resolve
        exactly as the rescan the relation replaces did).  A deep
        absorbed chain therefore restores in O(k²) position work instead
        of O(k³) containment tests.
        """
        stable = sorted(candidates, key=lambda item: item[1])
        total = len(stable)
        if total <= 1:
            return stable
        distinct: list[TreePattern] = []
        index_of: dict[TreePattern, int] = {}
        slots: list[int] = []
        for pattern, _ in stable:
            slot = index_of.get(pattern)
            if slot is None:
                slot = len(distinct)
                index_of[pattern] = slot
                distinct.append(pattern)
            slots.append(slot)
        width = len(distinct)
        held = [
            [a != b and contains(distinct[a], distinct[b]) for b in range(width)]
            for a in range(width)
        ]
        # a strictly contains b: equal patterns hold each other and never
        # block; strict containment is a partial order, so a zero-indegree
        # position always exists.
        strict = [
            [held[a][b] and not held[b][a] for b in range(width)]
            for a in range(width)
        ]
        indegree = [0] * total
        for position in range(total):
            row = slots[position]
            indegree[position] = sum(
                1
                for other in range(total)
                if other != position and strict[slots[other]][row]
            )
        ready = [
            position for position in range(total) if indegree[position] == 0
        ]
        heapq.heapify(ready)
        emitted = [False] * total
        ordered: list[tuple[TreePattern, bool]] = []
        while ready:
            position = heapq.heappop(ready)
            emitted[position] = True
            ordered.append(stable[position])
            container = slots[position]
            for other in range(total):
                if not emitted[other] and strict[container][slots[other]]:
                    indegree[other] -= 1
                    if indegree[other] == 0:
                        heapq.heappush(ready, other)
        if len(ordered) < total:  # unreachable unless ``contains`` cycles
            ordered.extend(
                item
                for position, item in enumerate(stable)
                if not emitted[position]
            )
        return ordered

    def remove_pattern(
        self, pattern: TreePattern, destination: Destination
    ) -> tuple[bool, list[TreePattern]]:
        """Retire one advertisement instance of *pattern* for *destination*.

        Returns ``(removed, restored)``.  ``removed`` answers "had this
        advertisement instance propagated beyond this table?" — it is the
        caller's signal to keep walking an unadvertise outward:

        * ``(True, restored)`` — the *active* entry left the table (its
          absorbed advertisements were re-admitted, and ``restored`` lists
          those that became active *and* whose flood had died here, i.e.
          exactly the ones the caller must re-advertise onward), or an
          *evicted* instance was retired (its flood had passed through
          before the eviction, so the walk continues; nothing to restore).
        * ``(False, [])`` — a covered duplicate instance was discarded
          without touching the active set (its flood died here, nothing
          propagated), or no such advertisement is known.
        """
        patterns = self._by_destination.get(destination)
        if not patterns:
            return False, []
        dest_absorbed = self._absorbed.get(destination, {})
        active = next((p for p in patterns if p == pattern), None)
        if active is None:
            # The instance was absorbed here: retiring a covered insert is
            # purely local (its flood died here), while retiring an evicted
            # active must keep the unadvertise walking, because its flood
            # passed through before the eviction.
            for cover, absorbed in dest_absorbed.items():
                for instance in absorbed:
                    if instance[0] == pattern:
                        absorbed.remove(instance)
                        if not absorbed:
                            del dest_absorbed[cover]
                        return instance[1] is False, []
            return False, []
        own_absorbed = dest_absorbed.get(active, [])
        for instance in own_absorbed:
            if instance[0] == pattern:
                # A duplicate advertisement of the active entry dies first;
                # the active entry survives on the remaining instances.
                own_absorbed.remove(instance)
                if not own_absorbed:
                    del dest_absorbed[active]
                return instance[1] is False, []
        patterns.remove(active)
        self._deactivate(active, destination)
        resurrected = dest_absorbed.pop(active, [])
        restored: list[TreePattern] = []
        for candidate, resume_flood in self._restore_order(resurrected):
            if self._admit(candidate, destination, resume_flood):
                self.restored_entries += 1
                if resume_flood:
                    restored.append(candidate)
        if not self._by_destination.get(destination):
            self._by_destination.pop(destination, None)
            self._absorbed.pop(destination, None)
            self._dest_rank.pop(destination, None)
        return True, restored

    def remove_destination(self, destination: Destination) -> list[TreePattern]:
        """Drop every entry routed to *destination*.

        Returns the removed *active* (maximal) patterns so callers can
        re-advertise them; absorbed duplicates they covered are discarded
        with them, since the active set already subsumes those.  All
        per-destination bookkeeping — the absorbed-instance records and
        the matcher cache entries of every pattern that only this
        destination kept alive — is retired with the entries, so a
        destination removed during topology surgery leaves no residue
        behind (``remove_broker`` relies on this when it drops the link
        to a retiring neighbour).
        """
        self._absorbed.pop(destination, None)
        self._dest_rank.pop(destination, None)
        removed = list(self._by_destination.pop(destination, ()))
        for pattern in removed:
            self._deactivate(pattern, destination)
        return removed

    def rename_destination(
        self, old: Destination, new: Destination
    ) -> bool:
        """Re-key every entry (and its absorbed bookkeeping) of *old* to
        *new*.

        The topology-surgery primitive behind broker leave: when a
        retiring neighbour's subtree is re-homed, the link's routing
        state is still valid — only the next hop changed — so the whole
        per-destination record moves without touching covering state or
        spending advertisement traffic.  Returns False when *old* has no
        entries.  *new* must not already hold entries: merging two
        destinations would need covering re-evaluation, which is the
        caller's job (:meth:`seed` entry by entry).
        """
        if old not in self._by_destination:
            return False
        if new in self._by_destination:
            raise ValueError(
                f"cannot rename destination onto existing entries: {new!r}"
            )
        self._by_destination[new] = self._by_destination.pop(old)
        # The pop + reinsert moved the entries to the end of the table's
        # iteration order; the rank index mirrors that exactly.
        self._dest_rank.pop(old, None)
        self._dest_rank[new] = self._next_rank
        self._next_rank += 1
        if old in self._absorbed:
            self._absorbed[new] = self._absorbed.pop(old)
        self._trie.rename_destination(old, new, self._by_destination[new])
        return True

    def seed(
        self,
        pattern: TreePattern,
        destination: Destination,
        resume_flood: bool = False,
    ) -> bool:
        """Install one advertisement instance without fresh-flood semantics.

        Topology surgery re-creates routing state that *already exists*
        downstream (a grafted broker inherits its parent's forwarded
        advertisements; a merge target inherits a retiring neighbour's
        link state).  Unlike :meth:`add`, an instance absorbed here
        records ``resume_flood`` as given — False (the default) marks
        "downstream brokers already hold this advertisement", so a later
        resurrection stays local instead of re-flooding duplicates.
        Returns False when covering absorbed the instance.
        """
        return self._admit(pattern, destination, resume_flood=resume_flood)

    def export_destination(
        self, destination: Destination
    ) -> list[tuple[TreePattern, bool]]:
        """The full advertisement-instance multiset of one destination.

        Replay-ordered for transplanting into another table with
        :meth:`seed`: active entries first (mutually non-covering, each
        tagged ``resume_flood=False`` — an active instance has always
        been propagated onward, whether at admission or by the
        resurrection protocol), then every absorbed instance with its
        recorded flood flag.  Re-seeding the list in order reproduces
        the same active set and the same per-instance flags, which is
        what ``remove_broker`` needs to move a retiring broker's link
        state to the merge target without losing reversible-covering
        knowledge.
        """
        exported: list[tuple[TreePattern, bool]] = [
            (pattern, False)
            for pattern in self._by_destination.get(destination, ())
        ]
        for instances in self._absorbed.get(destination, {}).values():
            exported.extend(instances)
        return exported

    def covers(self, pattern: TreePattern, destination: Destination) -> bool:
        """Whether an active entry for *destination* contains *pattern*.

        The pre-insertion probe topology surgery uses to decide an
        instance's flood flag before :meth:`seed` records it: covering
        is evaluated exactly like :meth:`add` would.
        """
        return any(
            contains(existing, pattern)
            for existing in self._by_destination.get(destination, ())
        )

    def forwarded_instances(
        self, exclude: Iterable[Destination] = ()
    ) -> list[TreePattern]:
        """Every advertisement instance this table has propagated onward.

        Per destination (minus *exclude*): the active entries plus the
        absorbed instances whose flood had already passed through before
        covering absorbed them (``resume_flood`` False) — exactly the
        advertisements any neighbour of this broker has been told about.
        Covered inserts whose flood died in this table are *not*
        included.  Deliver destinations contribute the broker's own
        advertised patterns, so the result is the seed set a newly
        grafted neighbour must be handed to route like the rest of the
        overlay.
        """
        skip = set(exclude)
        forwarded: list[TreePattern] = []
        for destination, patterns in self._by_destination.items():
            if destination in skip:
                continue
            forwarded.extend(patterns)
            for instances in self._absorbed.get(destination, {}).values():
                forwarded.extend(
                    pattern
                    for pattern, resume_flood in instances
                    if not resume_flood
                )
        return forwarded

    def _prune_matcher(self, pattern: TreePattern) -> None:
        """Drop the compiled matcher of a pattern with no active entry left.

        Matchers are a pure cache keyed by pattern; without this, a
        long-running churn workload would accumulate one compiled matcher
        per pattern ever routed.  The activity refcount kept by
        ``_activate``/``_deactivate`` makes the liveness probe O(1) — no
        scan over the destination lists.  A resurrected pattern simply
        recompiles.
        """
        if pattern not in self._active_counts:
            self._matchers.pop(pattern, None)

    def clear(self) -> None:
        """Drop all entries, bookkeeping, and cost counters."""
        self._by_destination.clear()
        self._absorbed.clear()
        self._matchers.clear()
        self._dest_rank.clear()
        self._next_rank = 0
        self._trie.clear()
        self._active_counts.clear()
        self.match_operations = 0
        self.covered_inserts = 0
        self.evicted_entries = 0
        self.restored_entries = 0

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------

    def _matcher(self, pattern: TreePattern) -> PatternMatcher:
        matcher = self._matchers.get(pattern)
        if matcher is None:
            matcher = PatternMatcher(CompiledPattern(pattern))
            self._matchers[pattern] = matcher
        return matcher

    def destinations_for(
        self,
        document: XMLTree,
        exclude: Iterable[Destination] = (),
        matching: Optional[str] = None,
    ) -> tuple[list[Destination], int]:
        """Destinations *document* must be sent to, plus the filtering
        operations spent deciding.

        In trie mode (the default) one merged-trie traversal answers all
        destinations at once and the count is *trie operations*; in
        linear mode every pattern is evaluated per destination (first
        hit short-circuits) and the count is per-pattern match
        operations.  ``matching`` overrides the table's mode for this
        call — both structures are always maintained, which is how the
        property suite pins ``trie == per-pattern`` on the same table.

        Destinations are returned in table order (first-advertised first),
        which is deterministic across runs — unlike a set of destinations,
        whose iteration order follows the per-process string hash seed.
        The event engine relies on this to replay identical schedules
        under a fixed seed.

        ``exclude`` destinations are skipped entirely (a broker never
        forwards a document back over the link it arrived on).
        """
        skip = set(exclude)
        found: list[Destination] = []
        mode = self.matching if matching is None else matching
        if mode == "trie":
            result = self._trie.match(document)
            operations = result.operations
            found = self._ordered(result.destinations, skip)
        else:
            operations = 0
            for destination, patterns in self._by_destination.items():
                if destination in skip:
                    continue
                for pattern in patterns:
                    operations += 1
                    if self._matcher(pattern).matches(document):
                        found.append(destination)
                        break
        self.match_operations += operations
        return found, operations

    def _ordered(
        self, matched: set, skip: set[Destination]
    ) -> list[Destination]:
        """*matched* in table order (first-advertised first).

        Sorted on the maintained insertion-rank index — every matched
        destination is active, hence ranked — so ordering costs
        O(|matched| log |matched|), not a scan of every destination.
        """
        if not matched:
            return []
        rank = self._dest_rank
        return sorted(
            (
                destination
                for destination in matched
                if destination not in skip
            ),
            key=rank.__getitem__,
        )

    def destinations_for_batch(
        self,
        documents: Sequence[XMLTree],
        excludes: Optional[Sequence[Iterable[Destination]]] = None,
        matching: Optional[str] = None,
    ) -> TableBatchMatch:
        """Destinations per document of a batch, filtered in one pass.

        In trie mode the whole batch shares one
        :meth:`~repro.routing.trie.PatternTrie.match_batch` memo pool, so
        constraint satisfactions, aliveness tests and whole-document
        outcomes repeated across the batch are paid once — the batch's
        total operations are always ≤ the sum of per-document
        :meth:`destinations_for` costs.  Linear mode evaluates document
        by document (the oracle has no cross-document sharing).  Both
        keep every per-document contract of :meth:`destinations_for`:
        table-order determinism and per-document ``excludes`` (one
        iterable per document — jobs drained from one queue may have
        arrived over different links).
        """
        documents = list(documents)
        if excludes is None:
            skips: list[set[Destination]] = [set() for _ in documents]
        else:
            skips = [set(exclude) for exclude in excludes]
            if len(skips) != len(documents):
                raise ValueError(
                    f"{len(documents)} documents but {len(skips)} excludes"
                )
        mode = self.matching if matching is None else matching
        per_document: list[list[Destination]] = []
        operations: list[int] = []
        if mode == "trie":
            batch = self._trie.match_batch(documents)
            for result, skip in zip(batch.results, skips, strict=True):
                per_document.append(self._ordered(result.destinations, skip))
                operations.append(result.operations)
            self.match_operations += batch.operations
            return TableBatchMatch(
                per_document,
                operations,
                memo_hits=batch.memo_hits,
                memo_misses=batch.memo_misses,
            )
        for document, skip in zip(documents, skips, strict=True):
            found, spent = self.destinations_for(
                document, exclude=skip, matching=mode
            )
            per_document.append(found)
            operations.append(spent)
        return TableBatchMatch(per_document, operations)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(patterns) for patterns in self._by_destination.values())

    def __contains__(self, pattern: object) -> bool:
        """True when *pattern* is an active entry for any destination.

        Covered advertisements absorbed into a broader entry are not
        reported: they do not take part in matching.
        """
        if not isinstance(pattern, TreePattern):
            return False
        return any(
            pattern in patterns for patterns in self._by_destination.values()
        )

    def __iter__(self) -> Iterator[TableEntry]:
        for destination, patterns in self._by_destination.items():
            for pattern in patterns:
                yield TableEntry(pattern=pattern, destination=destination)

    def destinations(self) -> list[Destination]:
        """All destinations with at least one entry."""
        return list(self._by_destination)

    def patterns_for(self, destination: Destination) -> list[TreePattern]:
        """The (maximal) patterns currently routed to *destination*."""
        return list(self._by_destination.get(destination, ()))

    def __repr__(self) -> str:
        return (
            f"RoutingTable(entries={len(self)}, "
            f"destinations={len(self._by_destination)})"
        )
