"""Broker routing tables with containment-based covering.

A content-based router keeps, per destination (a neighbouring broker or a
local delivery group), the set of tree patterns whose matching documents
must be sent there.  The table applies the classic *covering* optimisation
using :mod:`repro.core.containment`:

* an inserted pattern already contained in an existing same-destination
  entry is dropped — any document it matches is routed there anyway;
* conversely, existing same-destination entries contained in the new
  pattern are evicted, so the table keeps only the maximal patterns.

Because the homomorphism containment test is sound but not complete, a
missed covering relation only costs table space, never correctness.

Matching a document evaluates entries destination by destination and
short-circuits within a destination on the first hit (a broker needs one
reason to forward, not all of them); every pattern-vs-document evaluation
counts as one *match operation* — the filtering-cost unit reported by the
overlay layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator

from repro.core.containment import contains
from repro.core.pattern import TreePattern
from repro.xmltree.matcher import CompiledPattern, PatternMatcher
from repro.xmltree.tree import XMLTree

__all__ = ["TableEntry", "RoutingTable"]

Destination = Hashable


@dataclass(frozen=True)
class TableEntry:
    """One routing-table row: forward documents matching *pattern* to
    *destination*."""

    pattern: TreePattern
    destination: Destination


class RoutingTable:
    """Covering-aware pattern → destination table of one broker."""

    def __init__(self) -> None:
        self._by_destination: dict[Destination, list[TreePattern]] = {}
        self._matchers: dict[TreePattern, PatternMatcher] = {}
        self.match_operations = 0
        self.covered_inserts = 0
        self.evicted_entries = 0

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def add(self, pattern: TreePattern, destination: Destination) -> bool:
        """Insert an advertisement; returns False when covering dropped it.

        Covering is evaluated per destination only: two destinations never
        absorb each other's entries, because a document must reach every
        interested next hop independently.
        """
        patterns = self._by_destination.setdefault(destination, [])
        for existing in patterns:
            if contains(existing, pattern):
                self.covered_inserts += 1
                return False
        survivors = [p for p in patterns if not contains(pattern, p)]
        self.evicted_entries += len(patterns) - len(survivors)
        survivors.append(pattern)
        self._by_destination[destination] = survivors
        return True

    def remove_destination(self, destination: Destination) -> int:
        """Drop every entry routed to *destination*; returns how many."""
        return len(self._by_destination.pop(destination, ()))

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------

    def _matcher(self, pattern: TreePattern) -> PatternMatcher:
        matcher = self._matchers.get(pattern)
        if matcher is None:
            matcher = PatternMatcher(CompiledPattern(pattern))
            self._matchers[pattern] = matcher
        return matcher

    def destinations_for(
        self,
        document: XMLTree,
        exclude: Iterable[Destination] = (),
    ) -> tuple[set[Destination], int]:
        """Destinations *document* must be sent to, plus the match
        operations spent deciding.

        ``exclude`` destinations are skipped entirely (a broker never
        forwards a document back over the link it arrived on).
        """
        skip = set(exclude)
        found: set[Destination] = set()
        operations = 0
        for destination, patterns in self._by_destination.items():
            if destination in skip:
                continue
            for pattern in patterns:
                operations += 1
                if self._matcher(pattern).matches(document):
                    found.add(destination)
                    break
        self.match_operations += operations
        return found, operations

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(patterns) for patterns in self._by_destination.values())

    def __iter__(self) -> Iterator[TableEntry]:
        for destination, patterns in self._by_destination.items():
            for pattern in patterns:
                yield TableEntry(pattern=pattern, destination=destination)

    def destinations(self) -> list[Destination]:
        """All destinations with at least one entry."""
        return list(self._by_destination)

    def patterns_for(self, destination: Destination) -> list[TreePattern]:
        """The (maximal) patterns currently routed to *destination*."""
        return list(self._by_destination.get(destination, ()))

    def __repr__(self) -> str:
        return (
            f"RoutingTable(entries={len(self)}, "
            f"destinations={len(self._by_destination)})"
        )
