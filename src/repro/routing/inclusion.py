"""Inclusion-based (containment) subscription organisation.

The introduction's argument against containment as a proximity notion made
concrete: organise subscriptions into a *forest* where a subscription hangs
below one that contains it.  Routing then tests a document against the
forest roots and descends only into matching subtrees — the classic
covering-based optimisation of content routers.

The structure is correct (containment guarantees children can only match
when their ancestors do), but — as the paper argues — it is *not* a
community structure: patterns with no containment relationship never group,
even when they match almost exactly the same documents (Figure 1's pa/pd),
so the forest degenerates to many singleton roots on realistic workloads.
The routing comparison in the benchmarks quantifies that degeneration
against similarity-based communities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.core.containment import contains
from repro.core.pattern import TreePattern
from repro.routing.broker import RoutingStats
from repro.xmltree.corpus import DocumentCorpus
from repro.xmltree.tree import XMLTree
from repro.xmltree.matcher import PatternMatcher

__all__ = ["InclusionForest", "InclusionNode"]


@dataclass
class InclusionNode:
    """One subscription in the forest, with the subscriptions it covers."""

    index: int
    children: list["InclusionNode"] = field(default_factory=list)

    def iter_subtree(self) -> Iterator["InclusionNode"]:
        """Yield this node and every covered descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()


class InclusionForest:
    """Containment forest over a set of subscriptions.

    Built greedily: each subscription is placed below the first existing
    node (depth-first) that contains it; containment-equivalent patterns
    stack linearly.  Placement uses the sound homomorphism test, so a
    missed (false-negative) containment merely costs a root — never
    correctness.
    """

    def __init__(self, subscriptions: Sequence[TreePattern]) -> None:
        self.subscriptions = list(subscriptions)
        self.roots: list[InclusionNode] = []
        for index, pattern in enumerate(self.subscriptions):
            self._place(InclusionNode(index), pattern)

    def _place(self, node: InclusionNode, pattern: TreePattern) -> None:
        parent = self._find_container(self.roots, pattern)
        if parent is None:
            # The new pattern may itself cover existing roots.
            covered = [
                root
                for root in self.roots
                if contains(pattern, self.subscriptions[root.index])
            ]
            for root in covered:
                self.roots.remove(root)
                node.children.append(root)
            self.roots.append(node)
        else:
            parent.children.append(node)

    def _find_container(
        self, nodes: list[InclusionNode], pattern: TreePattern
    ) -> InclusionNode | None:
        for node in nodes:
            if contains(self.subscriptions[node.index], pattern):
                deeper = self._find_container(node.children, pattern)
                return deeper if deeper is not None else node
        return None

    @property
    def n_roots(self) -> int:
        """Number of forest roots — the per-document filtering frontier."""
        return len(self.roots)

    def depth(self) -> int:
        """Longest root-to-leaf chain in the forest (1 for all-singletons)."""

        def node_depth(node: InclusionNode) -> int:
            if not node.children:
                return 1
            return 1 + max(node_depth(child) for child in node.children)

        if not self.roots:
            return 0
        return max(node_depth(root) for root in self.roots)

    # ------------------------------------------------------------------

    def route(self, corpus: DocumentCorpus) -> RoutingStats:
        """Route *corpus* through the forest.

        A node's subscription is only evaluated when its parent matched
        (containment makes that sound); matches are exact, so routing is
        perfect — the cost is the number of match operations, which only
        drops below per-subscription matching when containment actually
        structures the workload.
        """
        matchers = [PatternMatcher(p) for p in self.subscriptions]
        deliveries = 0
        match_operations = 0

        def visit(node: InclusionNode, document: XMLTree) -> None:
            nonlocal deliveries, match_operations
            match_operations += 1
            if matchers[node.index].matches(document):
                deliveries += 1
                for child in node.children:
                    visit(child, document)

        for document in corpus.documents:
            for root in self.roots:
                visit(root, document)

        return RoutingStats(
            strategy="inclusion_forest",
            documents=len(corpus),
            subscribers=len(self.subscriptions),
            deliveries=deliveries,
            true_deliveries=deliveries,
            false_positives=0,
            false_negatives=0,
            match_operations=match_operations,
        )
