"""Fluent façade assembling a routed overlay and its delivery engine.

Standing up an overlay deployment takes five decisions — topology,
subscription placement, advertisement policy (plus the selectivity
provider similarity-based policies score patterns with), the broker
service / link timing models, and the queueing discipline.  Before this
module every benchmark and example re-threaded those decisions by hand
through ``BrokerOverlay.build`` → ``attach_round_robin`` →
``advertise_*`` → ``DeliveryEngine(...)``.  :class:`OverlayBuilder`
composes them declaratively:

>>> # overlay, engine = (
>>> #     OverlayBuilder()
>>> #     .topology("random_tree", n_brokers=8, seed=11)
>>> #     .subscriptions(patterns)                  # round-robin homes
>>> #     .provider(corpus)
>>> #     .advertisement(CommunityPolicy(threshold=0.5))
>>> #     .service(ServiceModel(base=0.2, per_match=0.05))
>>> #     .links(LinkModel(default=1.0))
>>> #     .scheduling(PriorityScheduling())
>>> #     .queue_policy(64, overflow="nack")         # bounded queues
>>> #     .build()
>>> # )

Every policy argument also accepts the legacy string spellings
(``"per_subscription"`` / ``"community"`` / ``"hybrid"``, ``"fifo"`` /
``"priority"`` / ``"deadline"``), resolved through
:mod:`repro.routing.policy`.  :meth:`OverlayBuilder.build_overlay`
stops after advertisement for match-count workloads that never need a
clock; :meth:`OverlayBuilder.build_engine` attaches a fresh engine with
the configured timing models to an already-built overlay, which is how a
benchmark replays one advertisement state under several schedules.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.candidates import CandidateGenerator, resolve_candidates
from repro.core.pattern import TreePattern
from repro.core.similarity import SelectivityProvider
from repro.routing.engine import (
    ClosedLoopSource,
    DeliveryEngine,
    LinkModel,
    ServiceModel,
)
from repro.routing.overlay import TOPOLOGIES, BrokerOverlay
from repro.routing.policy import (
    AdvertisementSpec,
    QueuePolicySpec,
    SchedulingSpec,
    resolve_advertisement,
    resolve_queue_policy,
    resolve_scheduling,
)

__all__ = ["OverlayBuilder"]


class OverlayBuilder:
    """Composable recipe for a ``(BrokerOverlay, DeliveryEngine)`` pair.

    Every setter returns the builder, so a deployment reads as one
    fluent expression; :meth:`build` materialises it.  A builder is
    reusable — each ``build*`` call produces a fresh overlay — which
    makes it the natural sweep primitive: configure once, build per
    cell.
    """

    def __init__(self) -> None:
        self._topology: Optional[str] = None
        self._n_brokers = 0
        self._seed = 0
        self._edges: Optional[list[tuple[int, int]]] = None
        #: Placement program, applied in call order: ("rr", patterns) or
        #: ("at", broker_id, pattern).
        self._placements: list[tuple] = []
        self._advertisement = resolve_advertisement("per_subscription")
        self._provider: Optional[SelectivityProvider] = None
        self._candidates: Optional[CandidateGenerator] = None
        self._service: Optional[ServiceModel] = None
        self._links: Optional[LinkModel] = None
        self._scheduling = resolve_scheduling("fifo")
        self._queue_policy = resolve_queue_policy(None)
        self._sources: list[ClosedLoopSource] = []
        self._allow_topology_churn = False
        self._matching = "trie"

    # ------------------------------------------------------------------
    # topology and membership
    # ------------------------------------------------------------------

    def topology(self, name: str, n_brokers: int, seed: int = 0) -> "OverlayBuilder":
        """A named broker-tree shape from :data:`TOPOLOGIES`."""
        if name not in TOPOLOGIES:
            raise ValueError(f"unknown topology {name!r}; choose from {TOPOLOGIES}")
        self._topology = name
        self._n_brokers = n_brokers
        self._seed = seed
        self._edges = None
        return self

    def edges(
        self, n_brokers: int, edges: Iterable[tuple[int, int]]
    ) -> "OverlayBuilder":
        """An explicit broker tree, for shapes the factories don't cover."""
        self._topology = None
        self._n_brokers = n_brokers
        self._edges = [tuple(edge) for edge in edges]
        return self

    def subscriptions(self, patterns: Iterable[TreePattern]) -> "OverlayBuilder":
        """Home *patterns* round-robin across the brokers."""
        self._placements.append(("rr", list(patterns)))
        return self

    def subscribe(self, broker_id: int, pattern: TreePattern) -> "OverlayBuilder":
        """Home one pattern on an explicit broker."""
        self._placements.append(("at", broker_id, pattern))
        return self

    # ------------------------------------------------------------------
    # policies and models
    # ------------------------------------------------------------------

    def advertisement(
        self, policy: AdvertisementSpec, **overrides: object
    ) -> "OverlayBuilder":
        """The advertisement policy (instance or legacy string spelling).

        Defaults to :class:`~repro.routing.policy.PerSubscriptionPolicy`.
        """
        self._advertisement = resolve_advertisement(policy, **overrides)
        return self

    def provider(self, provider: SelectivityProvider) -> "OverlayBuilder":
        """The selectivity provider similarity-based policies score with."""
        self._provider = provider
        return self

    def candidates(
        self, generator: "CandidateGenerator | str | None"
    ) -> "OverlayBuilder":
        """Gate similarity evaluation through a candidate generator.

        *generator* is a
        :class:`~repro.core.candidates.CandidateGenerator` template — for
        example :class:`~repro.core.candidates.LSHCandidates` — or one of
        the string spellings (``"exact"``, ``"lsh"``, ``"sharded"``)
        accepted by :func:`~repro.core.candidates.resolve_candidates`;
        ``None`` (the default) clears the gate.  Only meaningful together
        with a similarity-based advertisement policy: community formation
        then consults the generator before paying for a selectivity
        probe, which is what takes clustering past the all-pairs wall.
        """
        self._candidates = resolve_candidates(generator)
        return self

    def service(self, model: ServiceModel) -> "OverlayBuilder":
        """The broker service-time model (engine default when unset).

        Passing a :class:`~repro.routing.engine.BatchServiceModel`
        switches the engine to batched queue drains: idle brokers pull
        up to ``max_batch`` queued documents per service interval and
        match them through one shared memo pool.
        """
        self._service = model
        return self

    def links(self, model: LinkModel) -> "OverlayBuilder":
        """The inter-broker link-latency model (engine default when unset)."""
        self._links = model
        return self

    def scheduling(self, policy: SchedulingSpec, **overrides: object) -> "OverlayBuilder":
        """The queueing discipline (instance or legacy string spelling).

        Defaults to :class:`~repro.routing.policy.FifoScheduling`.
        """
        self._scheduling = resolve_scheduling(policy, **overrides)
        return self

    def queue_policy(
        self, policy: QueuePolicySpec, **overrides: object
    ) -> "OverlayBuilder":
        """Queue admission at every broker (instance, capacity, or None).

        Accepts a :class:`~repro.routing.policy.QueuePolicy` instance, a
        bare capacity (``queue_policy(64, overflow="nack")``), or
        ``None`` for the unbounded default, resolved through
        :func:`~repro.routing.policy.resolve_queue_policy`.
        """
        self._queue_policy = resolve_queue_policy(policy, **overrides)
        return self

    def sources(self, *sources: ClosedLoopSource) -> "OverlayBuilder":
        """Closed-loop publishers to attach to every built engine.

        Each :class:`~repro.routing.engine.ClosedLoopSource` is
        registered via
        :meth:`~repro.routing.engine.DeliveryEngine.attach_source` in
        the given order (source indices follow it); calling again
        appends.  Open-loop ``publish_corpus`` remains available on the
        built engine alongside.
        """
        self._sources.extend(sources)
        return self

    def matching(self, mode: str) -> "OverlayBuilder":
        """The broker matching mode: ``"trie"`` (default) or ``"linear"``.

        ``"trie"`` merges each broker's patterns into one
        :class:`~repro.routing.trie.PatternTrie`, so a document costs one
        traversal per broker and ``match_operations`` counts trie work;
        ``"linear"`` is the per-pattern oracle the trie is validated
        against, counting one operation per pattern evaluation.
        """
        if mode not in ("trie", "linear"):
            raise ValueError(
                f"unknown matching mode {mode!r}; choose 'trie' or 'linear'"
            )
        self._matching = mode
        return self

    def allow_topology_churn(self, allow: bool = True) -> "OverlayBuilder":
        """Permit broker join/leave events on the built engine.

        Off by default: scheduling a
        :class:`~repro.routing.engine.TopologyEvent` mid-simulation
        re-routes in-flight documents at a retiring broker (their
        service restarts at the merge target), a timing semantics the
        deployment opts into explicitly.  The overlay's own
        ``add_broker`` / ``remove_broker`` are always available — this
        gate only covers churn scheduled *inside* a running simulation.
        """
        self._allow_topology_churn = allow
        return self

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------

    def build_overlay(self) -> BrokerOverlay:
        """A fresh overlay: topology, membership, advertisement state."""
        if self._n_brokers < 1:
            raise ValueError(
                "no topology configured: call topology() or edges() first"
            )
        if self._edges is not None:
            overlay = BrokerOverlay(
                self._n_brokers, list(self._edges), matching=self._matching
            )
        else:
            overlay = BrokerOverlay.build(
                self._topology,
                self._n_brokers,
                seed=self._seed,
                matching=self._matching,
            )
        for placement in self._placements:
            if placement[0] == "rr":
                overlay.attach_round_robin(placement[1])
            else:
                overlay.attach(placement[1], placement[2])
        overlay.advertise(
            self._advertisement, self._provider, candidates=self._candidates
        )
        return overlay

    def build_engine(self, overlay: BrokerOverlay) -> DeliveryEngine:
        """A fresh engine over *overlay* with the configured models.

        Lets one advertised overlay host several engine runs — replaying
        a stream under different rates or schedules without paying the
        advertisement flood again.
        """
        engine = DeliveryEngine(
            overlay,
            service=self._service,
            links=self._links,
            scheduling=self._scheduling,
            queue_policy=self._queue_policy,
            allow_topology_churn=self._allow_topology_churn,
        )
        for source in self._sources:
            engine.attach_source(source)
        return engine

    def build(self) -> tuple[BrokerOverlay, DeliveryEngine]:
        """The configured ``(overlay, engine)`` pair, freshly built."""
        overlay = self.build_overlay()
        return overlay, self.build_engine(overlay)

    def __repr__(self) -> str:
        shape = (
            f"edges[{self._n_brokers}]"
            if self._edges is not None
            else f"{self._topology}[{self._n_brokers}]"
        )
        return (
            f"OverlayBuilder({shape}, "
            f"advertisement={self._advertisement!r}, "
            f"scheduling={self._scheduling!r})"
        )
