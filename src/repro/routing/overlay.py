"""Multi-broker overlay routing (the paper's target deployment).

The single-broker simulation in :mod:`repro.routing.broker` measures
filtering cost at one node; the scalability argument of Section 1 is about
a *network* of brokers, each holding a routing table whose size and
filtering cost grow with the subscription population.  This module builds
that network:

* :class:`BrokerNode` — one broker: neighbours, a covering-aware
  :class:`~repro.routing.table.RoutingTable`, and the subscriptions homed
  on it;
* :class:`BrokerOverlay` — a tree of brokers (chain, star or random tree)
  that propagates subscription advertisements hop-by-hop (pruned by
  containment covering), routes document streams end-to-end by
  reverse-path forwarding, and reports per-broker match operations, table
  sizes and delivery precision/recall.

The advertisement regime is a first-class
:class:`~repro.routing.policy.AdvertisementPolicy` object consumed by
:meth:`BrokerOverlay.advertise` — the paper's trade-off is the choice of
policy:

* :class:`~repro.routing.policy.PerSubscriptionPolicy` — every
  subscription is advertised through the overlay: exact delivery, maximal
  routing state (the baseline);
* :class:`~repro.routing.policy.CommunityPolicy` — each broker first
  clusters its local subscriptions into semantic communities with a live
  :class:`~repro.core.similarity.SimilarityIndex` and advertises one
  pattern per community: routing state shrinks to one entry per community,
  delivery quality is governed by community coherence — i.e. by the
  similarity metric;
* :class:`~repro.routing.policy.HybridPolicy` — per-subscription precision
  at lightly loaded brokers, aggregation where state actually accumulates.

The legacy spellings survive: ``advertise_subscriptions()`` /
``advertise_communities(provider, threshold=...)`` delegate to
:meth:`advertise`, which also accepts the string names
``"per_subscription"`` / ``"community"`` and resolves them to policy
instances.

Every policy is maintained **incrementally under churn** through the
subscription lifecycle: :meth:`BrokerOverlay.subscribe` returns a
:class:`SubscriptionId` and immediately advertises the arrival (in
aggregating policies, by re-aggregating only the home broker and diffing
the advertisement state, reusing the index's memoised pairwise work);
:meth:`BrokerOverlay.unsubscribe` retires it again with hop-by-hop
unadvertise propagation, resurrecting and re-advertising the entries its
advertisement had covered.  :meth:`BrokerOverlay.subscribe_many` /
:meth:`BrokerOverlay.unsubscribe_many` coalesce a churn burst into one
re-aggregation and one advertisement diff per touched broker.  The bulk
path (:meth:`BrokerOverlay.attach` followed by one :meth:`advertise`
call) and the event path converge to the same routing state.

The *topology* is dynamic too: :meth:`BrokerOverlay.add_broker` grafts a
new broker (as a leaf, or splitting an existing edge) and seeds it with
exactly the advertisement state its neighbours have already forwarded —
nothing re-floods elsewhere — while :meth:`BrokerOverlay.remove_broker`
retires a broker by withdrawing its own advertisements, re-homing its
subscriptions and child subtrees onto a merge target, and transplanting
its per-link advertisement-instance records so reversible covering keeps
working across the splice.  The headline guarantee, property-tested in
``tests/test_topology_properties.py``: after any interleaving of
join/leave and subscription churn, under any policy, every routing table
equals a from-scratch rebuild of the final topology.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

from repro.core.candidates import CandidateGenerator
from repro.core.pattern import TreePattern
from repro.core.similarity import SelectivityProvider, SimilarityIndex
from repro.routing.policy import (
    AdvertisementPolicy,
    AdvertisementSpec,
    CommunityPolicy,
    PerSubscriptionPolicy,
    resolve_advertisement,
)
from repro.routing.table import RoutingTable
from repro.xmltree.corpus import DocumentCorpus
from repro.xmltree.tree import XMLTree

__all__ = [
    "BrokerId",
    "BrokerNode",
    "BrokerOverlay",
    "BrokerStep",
    "OverlayStats",
    "SubscriptionId",
    "TOPOLOGIES",
]

#: Destination tags used in broker routing tables.
_FORWARD = "forward"
_DELIVER = "deliver"

TOPOLOGIES = ("chain", "star", "random_tree")


class BrokerId(int):
    """Handle returned by :meth:`BrokerOverlay.add_broker`.

    It *is* the broker id (an int), so neighbour lists, routing-table
    destinations and stats dictionaries keep working unchanged; the
    subclass merely marks values minted by the topology lifecycle.
    Broker ids are never reused across removals.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return f"BrokerId({int(self)})"


class SubscriptionId(int):
    """Handle returned by :meth:`BrokerOverlay.subscribe`.

    It *is* the global subscriber id (an int), so delivery sets, interest
    bookkeeping and deliver-destination payloads keep working unchanged;
    the subclass merely marks values that :meth:`BrokerOverlay.unsubscribe`
    accepts.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return f"SubscriptionId({int(self)})"


@dataclass
class BrokerNode:
    """One broker of the overlay."""

    broker_id: int
    neighbors: list[int] = field(default_factory=list)
    table: RoutingTable = field(default_factory=RoutingTable)
    #: Global subscriber ids homed on this broker.
    local_subscribers: list[int] = field(default_factory=list)
    #: Communities advertised in the last aggregation, as
    #: ``(advertised_pattern, member subscriber ids)``.
    communities: list[tuple[TreePattern, tuple[int, ...]]] = field(
        default_factory=list
    )
    #: Live pairwise-similarity engine over the local subscriptions
    #: (community regime only; populated by ``advertise_communities`` and
    #: maintained by subscribe/unsubscribe).
    index: Optional[SimilarityIndex] = None
    #: subscriber id -> similarity-index handle (community regime only).
    handles: dict[int, int] = field(default_factory=dict)

    def degree(self) -> int:
        """Number of overlay neighbours."""
        return len(self.neighbors)

    def __repr__(self) -> str:
        return (
            f"BrokerNode(id={self.broker_id}, neighbors={self.neighbors}, "
            f"subscribers={len(self.local_subscribers)}, "
            f"table={len(self.table)})"
        )


@dataclass(frozen=True)
class BrokerStep:
    """Outcome of one broker-local filtering step on one document.

    The pure unit of work shared by every delivery discipline: the
    synchronous :meth:`BrokerOverlay.route` walk and the discrete-event
    :class:`~repro.routing.engine.DeliveryEngine` both apply it, so they
    deliver to identical subscriber sets by construction and differ only
    in *when* each step runs.
    """

    #: Subscriber ids the document is delivered to at this broker.
    deliveries: frozenset[int]
    #: Neighbour broker ids the document is forwarded to, in table order
    #: (deterministic across runs).
    forwards: tuple[int, ...]
    #: Filtering operations the step spent — trie operations in the
    #: default merged-trie mode, pattern-vs-document evaluations in
    #: ``"linear"`` mode — the input of a service-time model.
    match_operations: int


@dataclass(frozen=True)
class OverlayStats:
    """Outcome of routing one document stream through the overlay."""

    mode: str
    brokers: int
    documents: int
    subscribers: int
    deliveries: int
    true_deliveries: int
    false_positives: int
    false_negatives: int
    match_operations: int
    forwards: int
    advertisement_messages: int
    table_sizes: dict[int, int]
    match_operations_by_broker: dict[int, int]

    @property
    def precision(self) -> float:
        """Fraction of deliveries that were wanted."""
        if self.deliveries == 0:
            return 1.0
        return self.true_deliveries / self.deliveries

    @property
    def recall(self) -> float:
        """Fraction of wanted deliveries that happened."""
        wanted = self.true_deliveries + self.false_negatives
        if wanted == 0:
            return 1.0
        return self.true_deliveries / wanted

    @property
    def total_table_entries(self) -> int:
        """Routing state across the whole overlay."""
        return sum(self.table_sizes.values())

    @property
    def matches_per_document(self) -> float:
        """Network-wide filtering cost per routed document."""
        if self.documents == 0:
            return 0.0
        return self.match_operations / self.documents

    @property
    def forwards_per_document(self) -> float:
        """Inter-broker transmissions per routed document."""
        if self.documents == 0:
            return 0.0
        return self.forwards / self.documents


class BrokerOverlay:
    """A tree-shaped broker network with content-based routing."""

    def __init__(
        self,
        n_brokers: int,
        edges: list[tuple[int, int]],
        matching: str = "trie",
    ) -> None:
        if n_brokers < 1:
            raise ValueError("need at least one broker")
        #: Matching mode every broker table uses: ``"trie"`` (merged
        #: pattern trie, the default) or ``"linear"`` (per-pattern oracle).
        self.matching = matching
        self.brokers: dict[int, BrokerNode] = {
            broker_id: BrokerNode(
                broker_id, table=RoutingTable(matching=matching)
            )
            for broker_id in range(n_brokers)
        }
        for a, b in edges:
            if a == b or a not in self.brokers or b not in self.brokers:
                raise ValueError(f"invalid overlay edge ({a}, {b})")
            self.brokers[a].neighbors.append(b)
            self.brokers[b].neighbors.append(a)
        for node in self.brokers.values():
            node.neighbors.sort()
        self._check_tree(n_brokers, edges)
        #: Next broker id :meth:`add_broker` mints; never reused, so a
        #: broker id stays unambiguous across topology churn.
        self._next_broker = n_brokers
        #: subscriber id -> (home broker id, pattern); insertion-ordered,
        #: ids are never reused across unsubscribes.
        self.subscriptions: dict[int, tuple[int, TreePattern]] = {}
        self._next_subscriber = 0
        #: Subscriber ids whose advertisement is installed in the live
        #: per-subscription regime (the community regime tracks this via
        #: each broker's ``handles`` map instead).
        self._advertised: set[int] = set()
        self.advertisement_messages = 0
        self.mode: Optional[str] = None
        #: The live advertisement policy (None before :meth:`advertise`);
        #: churn events keep re-aggregating through it.
        self.policy: Optional[AdvertisementPolicy] = None
        #: The selectivity provider backing similarity-based policies.
        self.provider: Optional[SelectivityProvider] = None

    @staticmethod
    def _check_tree(n_brokers: int, edges: list[tuple[int, int]]) -> None:
        if len(edges) != n_brokers - 1:
            raise ValueError(
                f"an overlay tree over {n_brokers} brokers needs exactly "
                f"{n_brokers - 1} edges, got {len(edges)}"
            )
        seen = {0}
        frontier = [0]
        adjacency: dict[int, list[int]] = {i: [] for i in range(n_brokers)}
        for a, b in edges:
            adjacency[a].append(b)
            adjacency[b].append(a)
        while frontier:
            node = frontier.pop()
            for neighbor in adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        if len(seen) != n_brokers:
            raise ValueError("overlay edges do not connect all brokers")

    # ------------------------------------------------------------------
    # topology factories
    # ------------------------------------------------------------------

    @classmethod
    def chain(cls, n_brokers: int, matching: str = "trie") -> "BrokerOverlay":
        """``0 — 1 — 2 — ... — n-1`` (maximal diameter)."""
        return cls(
            n_brokers,
            [(i, i + 1) for i in range(n_brokers - 1)],
            matching=matching,
        )

    @classmethod
    def star(cls, n_brokers: int, matching: str = "trie") -> "BrokerOverlay":
        """Broker 0 as hub, all others leaves (minimal diameter)."""
        return cls(
            n_brokers,
            [(0, i) for i in range(1, n_brokers)],
            matching=matching,
        )

    @classmethod
    def random_tree(
        cls, n_brokers: int, seed: int = 0, matching: str = "trie"
    ) -> "BrokerOverlay":
        """A uniformly random recursive tree: broker *i* attaches to a
        random earlier broker."""
        rng = random.Random(seed)
        edges = [
            (rng.randrange(i), i) for i in range(1, n_brokers)
        ]
        return cls(n_brokers, edges, matching=matching)

    @classmethod
    def build(
        cls,
        topology: str,
        n_brokers: int,
        seed: int = 0,
        matching: str = "trie",
    ) -> "BrokerOverlay":
        """Factory dispatching on a topology name from :data:`TOPOLOGIES`."""
        if topology == "chain":
            return cls.chain(n_brokers, matching=matching)
        if topology == "star":
            return cls.star(n_brokers, matching=matching)
        if topology == "random_tree":
            return cls.random_tree(n_brokers, seed=seed, matching=matching)
        raise ValueError(
            f"unknown topology {topology!r}; choose from {TOPOLOGIES}"
        )

    # ------------------------------------------------------------------
    # subscription membership (state only, no advertisement traffic)
    # ------------------------------------------------------------------

    def attach(self, broker_id: int, pattern: TreePattern) -> SubscriptionId:
        """Home a new subscriber with *pattern* on *broker_id*; returns its
        global subscriber id.

        Membership only: no advertisement is sent, even when a routing
        regime is live — the bulk-load path, followed by one
        ``advertise_*`` call.  Use :meth:`subscribe` for the event-driven
        path that keeps live routing state fresh.
        """
        if broker_id not in self.brokers:
            raise ValueError(f"no broker {broker_id}")
        subscriber_id = SubscriptionId(self._next_subscriber)
        self._next_subscriber += 1
        self.subscriptions[subscriber_id] = (broker_id, pattern)
        self.brokers[broker_id].local_subscribers.append(subscriber_id)
        return subscriber_id

    def attach_round_robin(self, patterns: list[TreePattern]) -> list[int]:
        """Spread *patterns* over brokers in round-robin order.

        Rotates over the brokers in id order — after topology churn the
        id space may be sparse, so position, not id, picks the home.
        """
        order = sorted(self.brokers)
        return [
            self.attach(order[index % len(order)], pattern)
            for index, pattern in enumerate(patterns)
        ]

    def detach(self, subscription_id: int) -> TreePattern:
        """Forget a subscriber without withdrawing its advertisements.

        The membership-only inverse of :meth:`attach`: routing tables keep
        whatever state the subscriber's advertisements installed (useful
        for modelling stale tables).  Broker-internal bookkeeping that is
        not routing state — the live similarity-index population in the
        community regime — is still retired, so churn through ``detach``
        does not grow the index without bound.  Use :meth:`unsubscribe`
        for the event-driven path.  Returns the forgotten pattern.
        """
        try:
            home_id, pattern = self.subscriptions.pop(subscription_id)
        except KeyError:
            raise ValueError(
                f"unknown subscription id {subscription_id}"
            ) from None
        node = self.brokers[home_id]
        node.local_subscribers.remove(subscription_id)
        self._advertised.discard(subscription_id)
        handle = node.handles.pop(subscription_id, None)
        if handle is not None:
            node.index.remove(handle)
        return pattern

    def reset_routing(self) -> None:
        """Drop all routing state (tables, communities, ad counters)."""
        for node in self.brokers.values():
            node.table.clear()
            node.communities = []
            node.index = None
            node.handles = {}
        self._advertised = set()
        self.advertisement_messages = 0
        self.mode = None
        self.policy = None
        self.provider = None

    # ------------------------------------------------------------------
    # subscription lifecycle (event-driven)
    # ------------------------------------------------------------------

    def _register(
        self, node: BrokerNode, subscription_id: int, pattern: TreePattern
    ) -> None:
        """Admit one subscription into the live policy's advertised set."""
        if node.index is not None:
            node.handles[subscription_id] = node.index.add(pattern)
        else:
            self._advertised.add(subscription_id)

    def _is_advertised(self, node: BrokerNode, subscription_id: int) -> bool:
        """Whether the live policy ever advertised this subscription."""
        return (
            subscription_id in node.handles
            or subscription_id in self._advertised
        )

    def subscribe(
        self, broker_id: int, pattern: TreePattern
    ) -> SubscriptionId:
        """Home a new subscriber and advertise it through the live policy.

        * no policy yet (``mode is None``) — membership only, exactly like
          :meth:`attach`;
        * otherwise the arrival joins the home broker's advertised set
          (and its live :class:`~repro.core.similarity.SimilarityIndex`,
          for similarity-based policies), the broker re-aggregates, and
          only the advertisement *diff* travels the overlay — a
          per-subscription policy floods exactly the new pattern, an
          aggregating policy re-advertises only the communities the
          arrival touched, reusing the index's memoised pairwise work for
          the untouched population.
        """
        subscription_id = self.attach(broker_id, pattern)
        if self.policy is None:
            return subscription_id
        self._register(self.brokers[broker_id], subscription_id, pattern)
        self._reaggregate(broker_id)
        return subscription_id

    def unsubscribe(self, subscription_id: int) -> TreePattern:
        """Retire a subscription and withdraw its advertisements.

        The inverse of :meth:`subscribe`: the home broker drops the
        subscription from its advertised set (and index), re-aggregates,
        and the advertisement diff walks the reverse advertisement paths
        — under a per-subscription policy that unadvertises exactly the
        departing pattern, resurrecting (and re-advertising) entries it
        had covered; under an aggregating policy only the touched
        communities are re-advertised.  A subscription that was never
        advertised under the live policy (it :meth:`attach`\\ -ed after
        the bulk :meth:`advertise` call) has nothing to withdraw and is
        simply detached.  Returns the retired pattern.
        """
        if subscription_id not in self.subscriptions:
            raise ValueError(f"unknown subscription id {subscription_id}")
        home_id, pattern = self.subscriptions[subscription_id]
        node = self.brokers[home_id]
        was_advertised = self._is_advertised(node, subscription_id)
        self.detach(subscription_id)  # also retires any index entry
        if self.policy is not None and was_advertised:
            self._reaggregate(home_id)
        return pattern

    def subscribe_many(
        self, broker_id: int, patterns: Iterable[TreePattern]
    ) -> list[SubscriptionId]:
        """Home a burst of subscribers on one broker in a single batch.

        The batch equivalent of looping :meth:`subscribe`: all arrivals
        join the broker's membership (and advertised set) first, then the
        broker re-aggregates **once** and advertises one diff — so a
        burst costs one re-clustering and never floods the transient
        community shapes the per-event loop would have announced and
        withdrawn between arrivals.  Returns the new subscription ids in
        argument order.
        """
        subscription_ids = [
            self.attach(broker_id, pattern) for pattern in patterns
        ]
        if self.policy is None or not subscription_ids:
            return subscription_ids
        node = self.brokers[broker_id]
        for subscription_id in subscription_ids:
            self._register(
                node, subscription_id, self.subscriptions[subscription_id][1]
            )
        self._reaggregate(broker_id)
        return subscription_ids

    def unsubscribe_many(
        self, subscription_ids: Iterable[int]
    ) -> list[TreePattern]:
        """Retire a burst of subscriptions in a single batch.

        The batch equivalent of looping :meth:`unsubscribe`: every
        departure is detached first, then each touched broker
        re-aggregates **once** and advertises one diff.  The ids may span
        brokers; each broker still pays exactly one re-aggregation.
        Returns the retired patterns in argument order.
        """
        subscription_ids = list(subscription_ids)
        missing = [
            subscription_id
            for subscription_id in subscription_ids
            if subscription_id not in self.subscriptions
        ]
        if missing:
            raise ValueError(f"unknown subscription ids {missing}")
        if len(set(subscription_ids)) != len(subscription_ids):
            duplicated = sorted(
                subscription_id
                for subscription_id, count in Counter(
                    subscription_ids
                ).items()
                if count > 1
            )
            raise ValueError(
                f"subscription ids repeated in one batch: {duplicated}"
            )
        touched: set[int] = set()
        patterns: list[TreePattern] = []
        for subscription_id in subscription_ids:
            home_id, pattern = self.subscriptions[subscription_id]
            node = self.brokers[home_id]
            if self._is_advertised(node, subscription_id):
                touched.add(home_id)
            self.detach(subscription_id)
            patterns.append(pattern)
        if self.policy is not None:
            for home_id in sorted(touched):
                self._reaggregate(home_id)
        return patterns

    # ------------------------------------------------------------------
    # topology lifecycle (broker join/leave)
    # ------------------------------------------------------------------

    def _seed_link(self, source: BrokerNode, node: BrokerNode) -> None:
        """Hand a newly attached *node* the advertisement state it needs
        to route like the rest of the overlay.

        *source* (an existing neighbour of *node*) replays every
        advertisement instance it has forwarded onward — its active
        entries, the absorbed instances whose flood had passed through,
        and its own advertised communities — over the new link.  The
        instances are installed with :meth:`RoutingTable.seed`, i.e.
        *without* fresh-flood semantics: nothing propagates beyond the
        new broker, because everything being seeded already lives in the
        rest of the overlay.  Each seeded instance costs one
        advertisement message (the state crosses the new link once).
        """
        for pattern in source.table.forwarded_instances(
            exclude=((_FORWARD, node.broker_id),)
        ):
            self.advertisement_messages += 1
            node.table.seed(pattern, (_FORWARD, source.broker_id))

    def add_broker(
        self, parent: int, *, split: Optional[int] = None
    ) -> BrokerId:
        """Graft a new broker onto the overlay and return its id.

        With ``split=None`` the new broker joins as a leaf under
        *parent*; with ``split=child`` it splits the existing edge
        ``parent — child`` and sits between the two.  The overlay stays
        a tree either way, and broker ids are never reused.

        When a routing regime is live the join is incremental: the new
        broker receives each neighbour's forwarded advertisement state
        over its new link(s) (one message per instance, nothing
        re-floods elsewhere), gets a fresh similarity index under
        similarity-based policies, and starts with no subscriptions —
        later :meth:`subscribe` calls advertise from it exactly like
        from any seed broker.  Splitting an edge additionally re-keys
        both endpoints' link state onto the newcomer
        (:meth:`RoutingTable.rename_destination`), which costs no
        advertisement traffic at all.
        """
        if parent not in self.brokers:
            raise ValueError(f"no broker {parent}")
        parent_node = self.brokers[parent]
        if split is not None and split not in parent_node.neighbors:
            raise ValueError(
                f"({parent}, {split}) is not an overlay edge; "
                "split must name a current neighbour of parent"
            )
        broker_id = BrokerId(self._next_broker)
        self._next_broker += 1
        node = BrokerNode(
            broker_id, table=RoutingTable(matching=self.matching)
        )
        self.brokers[broker_id] = node
        if split is None:
            parent_node.neighbors.append(broker_id)
            parent_node.neighbors.sort()
            node.neighbors = [parent]
        else:
            split_node = self.brokers[split]
            parent_node.neighbors.remove(split)
            parent_node.neighbors.append(broker_id)
            parent_node.neighbors.sort()
            split_node.neighbors.remove(parent)
            split_node.neighbors.append(broker_id)
            split_node.neighbors.sort()
            node.neighbors = sorted((parent, split))
        if self.policy is None:
            return broker_id
        if self.policy.uses_similarity:
            node.index = self.policy.make_index(self.provider)
        if split is not None:
            split_node = self.brokers[split]
            parent_node.table.rename_destination(
                (_FORWARD, split), (_FORWARD, broker_id)
            )
            split_node.table.rename_destination(
                (_FORWARD, parent), (_FORWARD, broker_id)
            )
            self._seed_link(parent_node, node)
            self._seed_link(split_node, node)
        else:
            self._seed_link(parent_node, node)
        return broker_id

    @staticmethod
    def _take_flag(flags: list[bool], prefer: bool) -> bool:
        """Consume one inherited flood flag, preferring *prefer*.

        An empty record means the instance's passage left no trace at
        the merge target (it can only happen on protocols that bypassed
        the overlay's own bookkeeping); False — downstream state exists
        — is the conservative answer that never floods duplicates.
        """
        if not flags:
            return False
        choice = prefer if prefer in flags else flags[0]
        flags.remove(choice)
        return choice

    def _transplant(
        self, node: BrokerNode, target: BrokerNode, orphans: list[int]
    ) -> None:
        """Move a retiring broker's per-link advertisement state into the
        merge target.

        The retiring *node* held, per re-attached subtree, an instance
        multiset with reversible-covering flags; the *target* held the
        merged multiset of everything the retiring broker ever forwarded
        it, with its own flags.  Both records matter:

        * an instance whose flood **died at the retiring broker**
          (absorbed there with the resume-flood flag) exists nowhere
          downstream — it is re-seeded absorbed with the pending-flood
          flag, so a later resurrection still re-advertises it;
        * an instance that reached the target inherits the flag the
          target had recorded for it — False when it travelled onward
          (downstream state exists), True when it died at the target.
          Cross-subtree covering cannot be represented in the split
          per-link destinations, so an inherited-True instance that
          comes out *active* in its new destination is flooded beyond
          the target right away — exactly the advertisement a fresh
          rebuild of the new topology would have propagated.

        Each transplanted instance costs one advertisement message (the
        state crosses the spliced link once); the extra floods are
        counted by :meth:`_propagate` as usual.
        """
        inherited: dict[TreePattern, list[bool]] = {}
        for pattern, resume_flood in target.table.export_destination(
            (_FORWARD, node.broker_id)
        ):
            inherited.setdefault(pattern, []).append(resume_flood)
        target.table.remove_destination((_FORWARD, node.broker_id))
        # Advertisements from the target's side whose flood died at the
        # retiring broker: no orphan subtree has heard of them, and the
        # covering knowledge ("resurrect when the cover leaves") would
        # die with the broker.  Re-home it into each orphan's re-keyed
        # link destination with the pending-flood flag.
        pending = [
            pattern
            for pattern, died_at_node in node.table.export_destination(
                (_FORWARD, target.broker_id)
            )
            if died_at_node
        ]
        for neighbor_id in orphans:
            orphan_table = self.brokers[neighbor_id].table
            for pattern in pending:
                self.advertisement_messages += 1
                if orphan_table.seed(
                    pattern, (_FORWARD, target.broker_id), True
                ):
                    # Nothing in the orphan's own record covers it after
                    # all: the pending flood resumes into that subtree
                    # immediately, as a rebuild would have advertised it.
                    self._propagate(
                        neighbor_id, pattern, skip=target.broker_id
                    )
        for neighbor_id in orphans:
            destination = (_FORWARD, neighbor_id)
            for pattern, died_at_node in node.table.export_destination(
                destination
            ):
                self.advertisement_messages += 1
                if died_at_node:
                    target.table.seed(pattern, destination, True)
                    continue
                absorbs = target.table.covers(pattern, destination)
                flag = self._take_flag(
                    inherited.get(pattern, []), prefer=absorbs
                )
                became_active = target.table.seed(
                    pattern, destination, flag
                )
                if became_active and flag:
                    self._propagate(
                        target.broker_id, pattern, skip=neighbor_id
                    )

    def remove_broker(
        self, broker_id: int, *, merge_into: Optional[int] = None
    ) -> BrokerId:
        """Retire a broker, merging its state into a neighbour.

        ``merge_into`` names the neighbour that absorbs the retiring
        broker (default: its lowest-id neighbour).  The surgery, in
        order:

        * the retiring broker's own advertisements are withdrawn
          overlay-wide through the normal hop-by-hop unadvertise
          protocol (resurrecting whatever they covered);
        * every other neighbour re-attaches to the merge target, and —
          because only the next hop changed — re-keys its link state
          with zero advertisement traffic;
        * the merge target drops its link to the retiring broker and
          adopts, per re-attached subtree, the retiring broker's full
          advertisement-instance record for that link
          (:meth:`RoutingTable.export_destination` →
          :meth:`RoutingTable.seed`, one message per instance) — so
          reversible covering keeps working across the splice;
        * the retiring broker's subscriptions are re-homed onto the
          target (advertised ones join its live index under
          similarity-based policies) and **one** re-aggregation folds
          them into the target's advertisements, flooding only the
          resulting diff.

        Every policy stays incremental: after the merge, every routing
        table equals a from-scratch rebuild of the new topology (the
        property suite's headline guarantee).  Returns the merge
        target's id.
        """
        if broker_id not in self.brokers:
            raise ValueError(f"no broker {broker_id}")
        if len(self.brokers) == 1:
            raise ValueError("cannot remove the only broker")
        node = self.brokers[broker_id]
        if merge_into is None:
            merge_into = node.neighbors[0]
        elif merge_into not in node.neighbors:
            raise ValueError(
                f"merge target {merge_into} is not a neighbour of "
                f"broker {broker_id}"
            )
        target = self.brokers[merge_into]
        live = self.policy is not None
        if live:
            for advertised, members in node.communities:
                node.table.remove_destination((_DELIVER, members))
                self._unadvertise(broker_id, advertised)
            node.communities = []
        orphans = [
            neighbor for neighbor in node.neighbors if neighbor != merge_into
        ]
        for neighbor_id in orphans:
            neighbor = self.brokers[neighbor_id]
            neighbor.neighbors.remove(broker_id)
            neighbor.neighbors.append(merge_into)
            neighbor.neighbors.sort()
            if live:
                neighbor.table.rename_destination(
                    (_FORWARD, broker_id), (_FORWARD, merge_into)
                )
        target.neighbors.remove(broker_id)
        target.neighbors.extend(orphans)
        target.neighbors.sort()
        if live:
            self._transplant(node, target, orphans)
        adopted_advertised = False
        for subscription_id in node.local_subscribers:
            _, pattern = self.subscriptions[subscription_id]
            self.subscriptions[subscription_id] = (merge_into, pattern)
            if subscription_id in node.handles:
                adopted_advertised = True
                if target.index is not None:
                    target.handles[subscription_id] = target.index.add(
                        pattern
                    )
            elif subscription_id in self._advertised:
                adopted_advertised = True
        target.local_subscribers = sorted(
            target.local_subscribers + node.local_subscribers
        )
        del self.brokers[broker_id]
        if live and adopted_advertised:
            self._reaggregate(merge_into)
        return BrokerId(merge_into)

    def topology_signature(self) -> dict[int, frozenset]:
        """Routing state with broker and subscriber ids relabelled by
        rank.

        The comparator behind the zero-decay guarantee: a lived-in
        overlay mints fresh ids on every join and subscribe (they are
        never reused), so its tables can only be compared with a
        from-scratch rebuild after mapping broker ids — dictionary keys
        and forward payloads — and deliver-payload subscriber ids onto
        their rank among the survivors.  Two overlays route identically
        iff their signatures are equal.
        """
        broker_rank = {
            broker_id: rank
            for rank, broker_id in enumerate(sorted(self.brokers))
        }
        sub_rank = {
            subscriber_id: rank
            for rank, subscriber_id in enumerate(sorted(self.subscriptions))
        }
        signature = {}
        for broker_id, node in self.brokers.items():
            entries = set()
            for entry in node.table:
                kind, payload = entry.destination
                if kind == _DELIVER:
                    payload = tuple(
                        sorted(sub_rank[member] for member in payload)
                    )
                else:
                    payload = broker_rank[payload]
                entries.add((entry.pattern, kind, payload))
            signature[broker_rank[broker_id]] = frozenset(entries)
        return signature

    def rebuilt(
        self,
        policy: Optional[AdvertisementSpec] = None,
        provider: Optional[SelectivityProvider] = None,
    ) -> "BrokerOverlay":
        """A from-scratch overlay over this one's topology and
        membership.

        Brokers and subscriptions are re-created in rank order and the
        live policy and provider (or explicit overrides) advertise from
        nothing — the oracle every incremental-lifecycle guarantee is
        checked against: after any churn,
        ``overlay.topology_signature() ==
        overlay.rebuilt().topology_signature()``.  With no routing
        regime live (and no override), the copy is membership-only.
        """
        ids = sorted(self.brokers)
        broker_rank = {broker_id: rank for rank, broker_id in enumerate(ids)}
        edges = sorted(
            {
                (broker_rank[min(a, b)], broker_rank[max(a, b)])
                for a in self.brokers
                for b in self.brokers[a].neighbors
            }
        )
        fresh = BrokerOverlay(len(ids), edges)
        for home_id, pattern in self.subscriptions.values():
            fresh.attach(broker_rank[home_id], pattern)
        if policy is None:
            policy = self.policy
        if provider is None:
            provider = self.provider
        if policy is not None:
            fresh.advertise(policy, provider)
        return fresh

    # ------------------------------------------------------------------
    # advertisement
    # ------------------------------------------------------------------

    def _propagate(
        self, origin_id: int, pattern: TreePattern, skip: Optional[int] = None
    ) -> None:
        """Flood one advertisement away from *origin_id*.

        Each receiving broker installs ``pattern → (forward, sender)`` —
        reverse-path routing state — and re-advertises to its remaining
        neighbours only when covering did *not* absorb the entry: if an
        existing entry for the same link contains the pattern, every broker
        further out already routes the pattern's documents this way.

        ``skip`` suppresses the flood towards one neighbour of the origin —
        used when a resurrected advertisement resumes a flood mid-overlay
        and must not travel back towards its home.
        """
        frontier = [
            (neighbor, origin_id)
            for neighbor in self.brokers[origin_id].neighbors
            if neighbor != skip
        ]
        while frontier:
            broker_id, sender = frontier.pop(0)
            self.advertisement_messages += 1
            node = self.brokers[broker_id]
            if node.table.add(pattern, (_FORWARD, sender)):
                frontier.extend(
                    (neighbor, broker_id)
                    for neighbor in node.neighbors
                    if neighbor != sender
                )

    def _unadvertise(
        self, origin_id: int, pattern: TreePattern, skip: Optional[int] = None
    ) -> None:
        """Withdraw one advertisement instance along its flood paths.

        Mirrors :meth:`_propagate`: the unadvertise walks away from
        *origin_id* and, per broker, retires one instance of *pattern* from
        the reverse-path entry of the arrival link.  The walk continues
        outward only where the *active* entry actually left the table (a
        covered duplicate never travelled further in the first place), and
        every entry whose covering advertisement just left is resurrected
        and re-advertised from that broker onward — resuming the flood that
        covering had pruned.
        """
        frontier = [
            (neighbor, origin_id)
            for neighbor in self.brokers[origin_id].neighbors
            if neighbor != skip
        ]
        readvertise: list[tuple[int, int, TreePattern]] = []
        while frontier:
            broker_id, sender = frontier.pop(0)
            self.advertisement_messages += 1
            node = self.brokers[broker_id]
            removed, restored = node.table.remove_pattern(
                pattern, (_FORWARD, sender)
            )
            if removed:
                frontier.extend(
                    (neighbor, broker_id)
                    for neighbor in node.neighbors
                    if neighbor != sender
                )
                readvertise.extend(
                    (broker_id, sender, entry) for entry in restored
                )
        for broker_id, sender, entry in readvertise:
            self._propagate(broker_id, entry, skip=sender)

    def _aggregate_node(
        self, node: BrokerNode
    ) -> list[tuple[TreePattern, tuple[int, ...]]]:
        """One broker's target advertisement state under the live policy.

        Hands the policy the broker's *advertised* subscriptions — for
        similarity-based policies the live index population (every
        pairwise value an aggregation needs is memoised there, so
        re-aggregating after churn only pays for pairs involving changed
        patterns), otherwise the overlay-wide advertised set.  Members
        that merely :meth:`attach`\\ -ed after the bulk advertisement stay
        out until it is rebuilt, whatever the policy.
        """
        assert self.policy is not None
        if node.index is not None:
            advertised_members = [
                subscriber_id
                for subscriber_id in node.local_subscribers
                if subscriber_id in node.handles
            ]
        else:
            advertised_members = [
                subscriber_id
                for subscriber_id in node.local_subscribers
                if subscriber_id in self._advertised
            ]
        local_patterns = [
            self.subscriptions[subscriber_id][1]
            for subscriber_id in advertised_members
        ]
        return self.policy.aggregate(
            advertised_members, local_patterns, node.index
        )

    def _reaggregate(self, broker_id: int) -> None:
        """Refresh one broker's advertisements after churn.

        Re-aggregates the broker's local subscriptions through the live
        policy (cheap for similarity-based policies: the index memo
        already holds every surviving pair) and applies two separate
        diffs against the live aggregation:

        * local delivery entries follow the full ``(pattern, members)``
          communities — a membership change swaps the home broker's
          deliver entry in place;
        * overlay-wide advertisement traffic follows the *advertised
          pattern multiset* only — a subscriber joining or leaving an
          existing community whose advertised pattern survives costs zero
          unadvertise/re-flood messages, because the rest of the overlay
          routes on the pattern, not on the membership.
        """
        node = self.brokers[broker_id]
        fresh = self._aggregate_node(node)
        # Multiset diff in O(k): equal entries are interchangeable, so
        # only the per-entry surplus decides what departs or arrives.
        old_counts = Counter(node.communities)
        fresh_counts = Counter(fresh)
        surplus_old = old_counts - fresh_counts
        surplus_fresh = fresh_counts - old_counts
        departed: list[tuple[TreePattern, tuple[int, ...]]] = []
        for entry in node.communities:
            if surplus_old[entry] > 0:
                surplus_old[entry] -= 1
                departed.append(entry)
        unmatched: list[tuple[TreePattern, tuple[int, ...]]] = []
        for entry in fresh:
            if surplus_fresh[entry] > 0:
                surplus_fresh[entry] -= 1
                unmatched.append(entry)
        withdrawn = [advertised for advertised, _ in departed]
        for _advertised, members in departed:
            node.table.remove_destination((_DELIVER, members))
        for advertised, members in unmatched:
            node.table.add(advertised, (_DELIVER, members))
            if advertised in withdrawn:
                # Same advertised pattern, new membership: the overlay-wide
                # state is already in place.
                withdrawn.remove(advertised)
            else:
                self._propagate(broker_id, advertised)
        for advertised in withdrawn:
            self._unadvertise(broker_id, advertised)
        node.communities = fresh

    def advertise(
        self,
        policy: AdvertisementSpec,
        provider: Optional[SelectivityProvider] = None,
        candidates: "CandidateGenerator | str | None" = None,
        **overrides: object,
    ) -> None:
        """Install routing state for the whole overlay under *policy*.

        *policy* is an :class:`~repro.routing.policy.AdvertisementPolicy`
        instance, or one of the legacy string spellings
        (``"per_subscription"``, ``"community"``, ``"hybrid"`` — keyword
        overrides such as ``threshold=`` are forwarded to the resolved
        policy's constructor).  Similarity-based policies additionally
        need *provider*, the
        :class:`~repro.core.similarity.SelectivityProvider` each broker's
        live index scores patterns with.

        *candidates* — a
        :class:`~repro.core.candidates.CandidateGenerator` template (or
        the string spellings accepted by
        :func:`~repro.core.candidates.resolve_candidates`) — gates which
        pattern pairs the similarity machinery evaluates at all; it only
        makes sense for similarity-based policies and replaces whatever
        generator the policy was constructed with.

        Every broker aggregates its local subscriptions through the
        policy and floods the resulting advertisements hop-by-hop with
        covering pruning.  The policy, provider and per-broker indexes
        stay live afterwards, so :meth:`subscribe` / :meth:`unsubscribe`
        (and their batch variants) maintain the advertisement state
        incrementally instead of rebuilding it.
        """
        policy = resolve_advertisement(policy, **overrides)
        if candidates is not None:
            if not policy.uses_similarity:
                raise ValueError(
                    f"{type(policy).__name__} does not evaluate pattern "
                    "similarity; a candidate generator has nothing to gate"
                )
            policy = policy.with_candidates(candidates)
        if policy.uses_similarity and provider is None:
            raise ValueError(
                f"{type(policy).__name__} clusters over pattern similarity "
                "and needs a selectivity provider"
            )
        self.reset_routing()
        self.policy = policy
        self.provider = provider if policy.uses_similarity else None
        self.mode = policy.mode_label()
        for node in self.brokers.values():
            if policy.uses_similarity:
                node.index = policy.make_index(provider)
                node.handles = {
                    subscriber_id: node.index.add(
                        self.subscriptions[subscriber_id][1]
                    )
                    for subscriber_id in node.local_subscribers
                }
            else:
                self._advertised.update(node.local_subscribers)
            node.communities = self._aggregate_node(node)
            for advertised, members in node.communities:
                node.table.add(advertised, (_DELIVER, members))
                self._propagate(node.broker_id, advertised)

    def advertise_subscriptions(self) -> None:
        """Per-subscription advertisement: exact routing, maximal state.

        Legacy spelling of ``advertise(PerSubscriptionPolicy())``.
        """
        self.advertise(PerSubscriptionPolicy())

    def advertise_communities(
        self,
        provider: SelectivityProvider,
        threshold: float,
        metric: str = "M3",
        elect_by_selectivity: bool = True,
        ratio_prefilter: bool = True,
    ) -> None:
        """Community-aggregated advertisement.

        Legacy spelling of ``advertise(CommunityPolicy(...), provider)``:
        each broker clusters its local subscriptions with
        :func:`~repro.routing.community.leader_clustering` over a live
        :class:`~repro.core.similarity.SimilarityIndex` (one
        joint-selectivity computation per pattern pair, shared across all
        queries and across later churn events), then advertises a single
        pattern per community.  See :class:`CommunityPolicy` for the
        ``elect_by_selectivity`` and ``ratio_prefilter`` knobs.
        """
        self.advertise(
            CommunityPolicy(
                threshold,
                metric=metric,
                elect_by_selectivity=elect_by_selectivity,
                ratio_prefilter=ratio_prefilter,
            ),
            provider,
        )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def process_at(
        self,
        broker_id: int,
        document: XMLTree,
        arrived_from: Optional[int] = None,
    ) -> BrokerStep:
        """One broker-local filtering step: match *document* against
        *broker_id*'s routing table and report the outcome.

        ``arrived_from`` is the neighbour the document came in over (None
        for a locally published document); its link is excluded so the
        document never travels back the way it arrived.  The step is pure
        with respect to delivery semantics — it reads routing state and
        counts match operations, but schedules nothing — which is what
        lets the synchronous walk and the event engine share it.
        """
        if broker_id not in self.brokers:
            raise ValueError(f"no broker {broker_id}")
        node = self.brokers[broker_id]
        exclude = (
            () if arrived_from is None else ((_FORWARD, arrived_from),)
        )
        destinations, operations = node.table.destinations_for(
            document, exclude=exclude
        )
        delivered: set[int] = set()
        forwards: list[int] = []
        for kind, payload in destinations:
            if kind == _DELIVER:
                delivered.update(payload)
            else:
                forwards.append(payload)
        return BrokerStep(
            deliveries=frozenset(delivered),
            forwards=tuple(forwards),
            match_operations=operations,
        )

    def process_batch_at(
        self,
        broker_id: int,
        documents: Sequence[XMLTree],
        arrived_from: Optional[Sequence[Optional[int]]] = None,
    ) -> list[BrokerStep]:
        """One broker-local filtering pass over a whole queue drain.

        The batched counterpart of :meth:`process_at`: every document of
        the drain is matched through one shared trie memo pool (see
        :meth:`RoutingTable.destinations_for_batch`), so structure
        repeated across the batch is filtered once, and each document
        still gets its own :class:`BrokerStep` — per-document deliveries,
        table-order forwards and *attributed* match operations — equal to
        what :meth:`process_at` would have produced.  ``arrived_from``
        carries one origin link per document (the documents of one drain
        may have arrived over different links); ``None`` means every
        document was published locally.
        """
        if broker_id not in self.brokers:
            raise ValueError(f"no broker {broker_id}")
        node = self.brokers[broker_id]
        documents = list(documents)
        if arrived_from is None:
            origins: list[Optional[int]] = [None] * len(documents)
        else:
            origins = list(arrived_from)
            if len(origins) != len(documents):
                raise ValueError(
                    f"{len(documents)} documents but {len(origins)} origins"
                )
        excludes = [
            () if origin is None else ((_FORWARD, origin),)
            for origin in origins
        ]
        batch = node.table.destinations_for_batch(documents, excludes)
        steps: list[BrokerStep] = []
        for destinations, operations in zip(
            batch.destinations, batch.operations, strict=True
        ):
            delivered: set[int] = set()
            forwards: list[int] = []
            for kind, payload in destinations:
                if kind == _DELIVER:
                    delivered.update(payload)
                else:
                    forwards.append(payload)
            steps.append(
                BrokerStep(
                    deliveries=frozenset(delivered),
                    forwards=tuple(forwards),
                    match_operations=operations,
                )
            )
        return steps

    def route(
        self, document: XMLTree, publish_at: int = 0
    ) -> tuple[set[int], dict[int, int], int]:
        """Route one document published at *publish_at*, synchronously.

        Applies :meth:`process_at` broker by broker in breadth-first
        order.  Returns ``(delivered subscriber ids, match operations per
        visited broker, inter-broker forwards)``.
        """
        if publish_at not in self.brokers:
            raise ValueError(f"no broker {publish_at}")
        delivered: set[int] = set()
        operations: dict[int, int] = {}
        forwards = 0
        frontier: list[tuple[int, Optional[int]]] = [(publish_at, None)]
        while frontier:
            broker_id, origin = frontier.pop(0)
            step = self.process_at(broker_id, document, origin)
            operations[broker_id] = (
                operations.get(broker_id, 0) + step.match_operations
            )
            delivered.update(step.deliveries)
            forwards += len(step.forwards)
            frontier.extend(
                (neighbor, broker_id) for neighbor in step.forwards
            )
        return delivered, operations, forwards

    def route_corpus(
        self,
        corpus: DocumentCorpus,
        publish_at: Union[int, str] = "round_robin",
    ) -> OverlayStats:
        """Route every corpus document and score delivery quality.

        ``publish_at`` is a fixed broker id or ``"round_robin"`` to spread
        publishers over the overlay.  Ground truth comes from the corpus'
        exact match sets; a delivery to an uninterested subscriber is a
        false positive, a missed interested subscriber a false negative.
        """
        if self.mode is None:
            raise ValueError(
                "no routing state: call advertise() (or the legacy "
                "advertise_subscriptions()/advertise_communities()) first"
            )
        interest = {
            subscriber_id: corpus.match_set(pattern)
            for subscriber_id, (_, pattern) in self.subscriptions.items()
        }
        deliveries = 0
        true_deliveries = 0
        false_positives = 0
        false_negatives = 0
        total_operations = 0
        total_forwards = 0
        by_broker: dict[int, int] = {
            broker_id: 0 for broker_id in self.brokers
        }
        order = sorted(self.brokers)
        for index, document in enumerate(corpus.documents):
            if publish_at == "round_robin":
                source = order[index % len(order)]
            else:
                source = int(publish_at)
            delivered, operations, forwards = self.route(document, source)
            total_forwards += forwards
            for broker_id, ops in operations.items():
                by_broker[broker_id] += ops
                total_operations += ops
            doc_id = document.doc_id
            wanted = {
                subscriber_id
                for subscriber_id, match_set in interest.items()
                if doc_id in match_set
            }
            deliveries += len(delivered)
            true_deliveries += len(delivered & wanted)
            false_positives += len(delivered - wanted)
            false_negatives += len(wanted - delivered)
        return OverlayStats(
            mode=self.mode,
            brokers=len(self.brokers),
            documents=len(corpus),
            subscribers=len(self.subscriptions),
            deliveries=deliveries,
            true_deliveries=true_deliveries,
            false_positives=false_positives,
            false_negatives=false_negatives,
            match_operations=total_operations,
            forwards=total_forwards,
            advertisement_messages=self.advertisement_messages,
            table_sizes={
                broker_id: len(node.table)
                for broker_id, node in self.brokers.items()
            },
            match_operations_by_broker=by_broker,
        )

    def flooding_stats(self, corpus: DocumentCorpus) -> OverlayStats:
        """The no-filtering baseline: every document visits every broker
        and is delivered to every subscriber."""
        interest = [
            corpus.match_set(pattern)
            for _, pattern in self.subscriptions.values()
        ]
        total = len(corpus) * len(self.subscriptions)
        wanted = sum(len(match_set) for match_set in interest)
        return OverlayStats(
            mode="flooding",
            brokers=len(self.brokers),
            documents=len(corpus),
            subscribers=len(self.subscriptions),
            deliveries=total,
            true_deliveries=wanted,
            false_positives=total - wanted,
            false_negatives=0,
            match_operations=0,
            forwards=len(corpus) * (len(self.brokers) - 1),
            advertisement_messages=0,
            table_sizes={broker_id: 0 for broker_id in self.brokers},
            match_operations_by_broker={
                broker_id: 0 for broker_id in self.brokers
            },
        )

    def __repr__(self) -> str:
        return (
            f"BrokerOverlay(brokers={len(self.brokers)}, "
            f"subscribers={len(self.subscriptions)}, mode={self.mode!r})"
        )
