"""Multi-broker overlay routing (the paper's target deployment).

The single-broker simulation in :mod:`repro.routing.broker` measures
filtering cost at one node; the scalability argument of Section 1 is about
a *network* of brokers, each holding a routing table whose size and
filtering cost grow with the subscription population.  This module builds
that network:

* :class:`BrokerNode` — one broker: neighbours, a covering-aware
  :class:`~repro.routing.table.RoutingTable`, and the subscriptions homed
  on it;
* :class:`BrokerOverlay` — a tree of brokers (chain, star or random tree)
  that propagates subscription advertisements hop-by-hop (pruned by
  containment covering), routes document streams end-to-end by
  reverse-path forwarding, and reports per-broker match operations, table
  sizes and delivery precision/recall.

Two advertisement regimes realise the paper's trade-off:

* ``advertise_subscriptions`` — every subscription is advertised through
  the overlay: exact delivery, maximal routing state (the baseline);
* ``advertise_communities`` — each broker first clusters its local
  subscriptions into semantic communities with a live
  :class:`~repro.core.similarity.SimilarityIndex` and advertises one
  pattern per community: routing state shrinks to one entry per community,
  delivery quality is governed by community coherence — i.e. by the
  similarity metric.

Both regimes are maintained **incrementally under churn** through the
subscription lifecycle: :meth:`BrokerOverlay.subscribe` returns a
:class:`SubscriptionId` and immediately advertises the arrival (in the
community regime, by re-aggregating only the home broker's communities the
arrival touched, reusing the index's memoised pairwise work);
:meth:`BrokerOverlay.unsubscribe` retires it again with hop-by-hop
unadvertise propagation, resurrecting and re-advertising the entries its
advertisement had covered.  The bulk path (:meth:`BrokerOverlay.attach`
followed by one ``advertise_*`` call) and the event path converge to the
same routing state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.pattern import TreePattern
from repro.core.similarity import SelectivityProvider, SimilarityIndex
from repro.routing.community import leader_clustering
from repro.routing.table import RoutingTable
from repro.xmltree.corpus import DocumentCorpus
from repro.xmltree.tree import XMLTree

__all__ = [
    "BrokerNode",
    "BrokerOverlay",
    "BrokerStep",
    "OverlayStats",
    "SubscriptionId",
    "TOPOLOGIES",
]

#: Destination tags used in broker routing tables.
_FORWARD = "forward"
_DELIVER = "deliver"

TOPOLOGIES = ("chain", "star", "random_tree")


class SubscriptionId(int):
    """Handle returned by :meth:`BrokerOverlay.subscribe`.

    It *is* the global subscriber id (an int), so delivery sets, interest
    bookkeeping and deliver-destination payloads keep working unchanged;
    the subclass merely marks values that :meth:`BrokerOverlay.unsubscribe`
    accepts.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return f"SubscriptionId({int(self)})"


@dataclass
class BrokerNode:
    """One broker of the overlay."""

    broker_id: int
    neighbors: list[int] = field(default_factory=list)
    table: RoutingTable = field(default_factory=RoutingTable)
    #: Global subscriber ids homed on this broker.
    local_subscribers: list[int] = field(default_factory=list)
    #: Communities advertised in the last aggregation, as
    #: ``(advertised_pattern, member subscriber ids)``.
    communities: list[tuple[TreePattern, tuple[int, ...]]] = field(
        default_factory=list
    )
    #: Live pairwise-similarity engine over the local subscriptions
    #: (community regime only; populated by ``advertise_communities`` and
    #: maintained by subscribe/unsubscribe).
    index: Optional[SimilarityIndex] = None
    #: subscriber id -> similarity-index handle (community regime only).
    handles: dict[int, int] = field(default_factory=dict)

    def degree(self) -> int:
        return len(self.neighbors)

    def __repr__(self) -> str:
        return (
            f"BrokerNode(id={self.broker_id}, neighbors={self.neighbors}, "
            f"subscribers={len(self.local_subscribers)}, "
            f"table={len(self.table)})"
        )


@dataclass(frozen=True)
class BrokerStep:
    """Outcome of one broker-local filtering step on one document.

    The pure unit of work shared by every delivery discipline: the
    synchronous :meth:`BrokerOverlay.route` walk and the discrete-event
    :class:`~repro.routing.engine.DeliveryEngine` both apply it, so they
    deliver to identical subscriber sets by construction and differ only
    in *when* each step runs.
    """

    #: Subscriber ids the document is delivered to at this broker.
    deliveries: frozenset[int]
    #: Neighbour broker ids the document is forwarded to, in table order
    #: (deterministic across runs).
    forwards: tuple[int, ...]
    #: Pattern-vs-document evaluations the step spent — the input of a
    #: service-time model.
    match_operations: int


@dataclass(frozen=True)
class OverlayStats:
    """Outcome of routing one document stream through the overlay."""

    mode: str
    brokers: int
    documents: int
    subscribers: int
    deliveries: int
    true_deliveries: int
    false_positives: int
    false_negatives: int
    match_operations: int
    forwards: int
    advertisement_messages: int
    table_sizes: dict[int, int]
    match_operations_by_broker: dict[int, int]

    @property
    def precision(self) -> float:
        """Fraction of deliveries that were wanted."""
        if self.deliveries == 0:
            return 1.0
        return self.true_deliveries / self.deliveries

    @property
    def recall(self) -> float:
        """Fraction of wanted deliveries that happened."""
        wanted = self.true_deliveries + self.false_negatives
        if wanted == 0:
            return 1.0
        return self.true_deliveries / wanted

    @property
    def total_table_entries(self) -> int:
        """Routing state across the whole overlay."""
        return sum(self.table_sizes.values())

    @property
    def matches_per_document(self) -> float:
        """Network-wide filtering cost per routed document."""
        if self.documents == 0:
            return 0.0
        return self.match_operations / self.documents

    @property
    def forwards_per_document(self) -> float:
        """Inter-broker transmissions per routed document."""
        if self.documents == 0:
            return 0.0
        return self.forwards / self.documents


class BrokerOverlay:
    """A tree-shaped broker network with content-based routing."""

    def __init__(self, n_brokers: int, edges: list[tuple[int, int]]):
        if n_brokers < 1:
            raise ValueError("need at least one broker")
        self.brokers: dict[int, BrokerNode] = {
            broker_id: BrokerNode(broker_id) for broker_id in range(n_brokers)
        }
        for a, b in edges:
            if a == b or a not in self.brokers or b not in self.brokers:
                raise ValueError(f"invalid overlay edge ({a}, {b})")
            self.brokers[a].neighbors.append(b)
            self.brokers[b].neighbors.append(a)
        for node in self.brokers.values():
            node.neighbors.sort()
        self._check_tree(n_brokers, edges)
        #: subscriber id -> (home broker id, pattern); insertion-ordered,
        #: ids are never reused across unsubscribes.
        self.subscriptions: dict[int, tuple[int, TreePattern]] = {}
        self._next_subscriber = 0
        #: Subscriber ids whose advertisement is installed in the live
        #: per-subscription regime (the community regime tracks this via
        #: each broker's ``handles`` map instead).
        self._advertised: set[int] = set()
        self.advertisement_messages = 0
        self.mode: Optional[str] = None
        #: Community-regime parameters captured by ``advertise_communities``
        #: so churn events can keep re-aggregating:
        #: ``(provider, threshold, metric, elect_by_selectivity)``.
        self._community: Optional[
            tuple[SelectivityProvider, float, str, bool]
        ] = None

    @staticmethod
    def _check_tree(n_brokers: int, edges: list[tuple[int, int]]) -> None:
        if len(edges) != n_brokers - 1:
            raise ValueError(
                f"an overlay tree over {n_brokers} brokers needs exactly "
                f"{n_brokers - 1} edges, got {len(edges)}"
            )
        seen = {0}
        frontier = [0]
        adjacency: dict[int, list[int]] = {i: [] for i in range(n_brokers)}
        for a, b in edges:
            adjacency[a].append(b)
            adjacency[b].append(a)
        while frontier:
            node = frontier.pop()
            for neighbor in adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        if len(seen) != n_brokers:
            raise ValueError("overlay edges do not connect all brokers")

    # ------------------------------------------------------------------
    # topology factories
    # ------------------------------------------------------------------

    @classmethod
    def chain(cls, n_brokers: int) -> "BrokerOverlay":
        """``0 — 1 — 2 — ... — n-1`` (maximal diameter)."""
        return cls(n_brokers, [(i, i + 1) for i in range(n_brokers - 1)])

    @classmethod
    def star(cls, n_brokers: int) -> "BrokerOverlay":
        """Broker 0 as hub, all others leaves (minimal diameter)."""
        return cls(n_brokers, [(0, i) for i in range(1, n_brokers)])

    @classmethod
    def random_tree(cls, n_brokers: int, seed: int = 0) -> "BrokerOverlay":
        """A uniformly random recursive tree: broker *i* attaches to a
        random earlier broker."""
        rng = random.Random(seed)
        edges = [
            (rng.randrange(i), i) for i in range(1, n_brokers)
        ]
        return cls(n_brokers, edges)

    @classmethod
    def build(
        cls, topology: str, n_brokers: int, seed: int = 0
    ) -> "BrokerOverlay":
        """Factory dispatching on a topology name from :data:`TOPOLOGIES`."""
        if topology == "chain":
            return cls.chain(n_brokers)
        if topology == "star":
            return cls.star(n_brokers)
        if topology == "random_tree":
            return cls.random_tree(n_brokers, seed=seed)
        raise ValueError(
            f"unknown topology {topology!r}; choose from {TOPOLOGIES}"
        )

    # ------------------------------------------------------------------
    # subscription membership (state only, no advertisement traffic)
    # ------------------------------------------------------------------

    def attach(self, broker_id: int, pattern: TreePattern) -> SubscriptionId:
        """Home a new subscriber with *pattern* on *broker_id*; returns its
        global subscriber id.

        Membership only: no advertisement is sent, even when a routing
        regime is live — the bulk-load path, followed by one
        ``advertise_*`` call.  Use :meth:`subscribe` for the event-driven
        path that keeps live routing state fresh.
        """
        if broker_id not in self.brokers:
            raise ValueError(f"no broker {broker_id}")
        subscriber_id = SubscriptionId(self._next_subscriber)
        self._next_subscriber += 1
        self.subscriptions[subscriber_id] = (broker_id, pattern)
        self.brokers[broker_id].local_subscribers.append(subscriber_id)
        return subscriber_id

    def attach_round_robin(self, patterns: list[TreePattern]) -> list[int]:
        """Spread *patterns* over brokers in round-robin order."""
        return [
            self.attach(index % len(self.brokers), pattern)
            for index, pattern in enumerate(patterns)
        ]

    def detach(self, subscription_id: int) -> TreePattern:
        """Forget a subscriber without withdrawing its advertisements.

        The membership-only inverse of :meth:`attach`: routing tables keep
        whatever state the subscriber's advertisements installed (useful
        for modelling stale tables).  Broker-internal bookkeeping that is
        not routing state — the live similarity-index population in the
        community regime — is still retired, so churn through ``detach``
        does not grow the index without bound.  Use :meth:`unsubscribe`
        for the event-driven path.  Returns the forgotten pattern.
        """
        try:
            home_id, pattern = self.subscriptions.pop(subscription_id)
        except KeyError:
            raise ValueError(
                f"unknown subscription id {subscription_id}"
            ) from None
        node = self.brokers[home_id]
        node.local_subscribers.remove(subscription_id)
        self._advertised.discard(subscription_id)
        handle = node.handles.pop(subscription_id, None)
        if handle is not None:
            node.index.remove(handle)
        return pattern

    def reset_routing(self) -> None:
        """Drop all routing state (tables, communities, ad counters)."""
        for node in self.brokers.values():
            node.table.clear()
            node.communities = []
            node.index = None
            node.handles = {}
        self._advertised = set()
        self.advertisement_messages = 0
        self.mode = None
        self._community = None

    # ------------------------------------------------------------------
    # subscription lifecycle (event-driven)
    # ------------------------------------------------------------------

    def subscribe(
        self, broker_id: int, pattern: TreePattern
    ) -> SubscriptionId:
        """Home a new subscriber and advertise it through the live regime.

        * no regime yet (``mode is None``) — membership only, exactly like
          :meth:`attach`;
        * per-subscription regime — the pattern is installed as a local
          delivery entry and flooded hop-by-hop with covering pruning;
        * community regime — the pattern joins the home broker's live
          :class:`~repro.core.similarity.SimilarityIndex` and only the
          communities its arrival touches are re-advertised; all pairwise
          similarity work already done for the untouched population is
          reused from the index memo.
        """
        subscription_id = self.attach(broker_id, pattern)
        if self.mode is None:
            return subscription_id
        node = self.brokers[broker_id]
        if self._community is not None:
            node.handles[subscription_id] = node.index.add(pattern)
            self._reaggregate(broker_id)
        else:
            self._advertised.add(subscription_id)
            node.table.add(pattern, (_DELIVER, (subscription_id,)))
            self._propagate(broker_id, pattern)
        return subscription_id

    def unsubscribe(self, subscription_id: int) -> TreePattern:
        """Retire a subscription and withdraw its advertisements.

        The inverse of :meth:`subscribe`: in the per-subscription regime
        the delivery entry is dropped and an unadvertise message walks the
        reverse advertisement paths, resurrecting (and re-advertising)
        entries the departing pattern had covered; in the community regime
        the home broker's index forgets the pattern and only the touched
        communities are re-aggregated.  A subscription that was never
        advertised under the live regime (it :meth:`attach`\\ -ed after the
        bulk ``advertise_*`` call) has nothing to withdraw and is simply
        detached.  Returns the retired pattern.
        """
        if subscription_id not in self.subscriptions:
            raise ValueError(f"unknown subscription id {subscription_id}")
        home_id, pattern = self.subscriptions[subscription_id]
        node = self.brokers[home_id]
        was_advertised = subscription_id in self._advertised
        was_aggregated = subscription_id in node.handles
        self.detach(subscription_id)  # also retires any index entry
        if self.mode is None:
            return pattern
        if self._community is not None:
            if was_aggregated:
                self._reaggregate(home_id)
        elif was_advertised:
            node.table.remove_destination((_DELIVER, (subscription_id,)))
            self._unadvertise(home_id, pattern)
        return pattern

    # ------------------------------------------------------------------
    # advertisement
    # ------------------------------------------------------------------

    def _propagate(
        self, origin_id: int, pattern: TreePattern, skip: Optional[int] = None
    ) -> None:
        """Flood one advertisement away from *origin_id*.

        Each receiving broker installs ``pattern → (forward, sender)`` —
        reverse-path routing state — and re-advertises to its remaining
        neighbours only when covering did *not* absorb the entry: if an
        existing entry for the same link contains the pattern, every broker
        further out already routes the pattern's documents this way.

        ``skip`` suppresses the flood towards one neighbour of the origin —
        used when a resurrected advertisement resumes a flood mid-overlay
        and must not travel back towards its home.
        """
        frontier = [
            (neighbor, origin_id)
            for neighbor in self.brokers[origin_id].neighbors
            if neighbor != skip
        ]
        while frontier:
            broker_id, sender = frontier.pop(0)
            self.advertisement_messages += 1
            node = self.brokers[broker_id]
            if node.table.add(pattern, (_FORWARD, sender)):
                frontier.extend(
                    (neighbor, broker_id)
                    for neighbor in node.neighbors
                    if neighbor != sender
                )

    def _unadvertise(
        self, origin_id: int, pattern: TreePattern, skip: Optional[int] = None
    ) -> None:
        """Withdraw one advertisement instance along its flood paths.

        Mirrors :meth:`_propagate`: the unadvertise walks away from
        *origin_id* and, per broker, retires one instance of *pattern* from
        the reverse-path entry of the arrival link.  The walk continues
        outward only where the *active* entry actually left the table (a
        covered duplicate never travelled further in the first place), and
        every entry whose covering advertisement just left is resurrected
        and re-advertised from that broker onward — resuming the flood that
        covering had pruned.
        """
        frontier = [
            (neighbor, origin_id)
            for neighbor in self.brokers[origin_id].neighbors
            if neighbor != skip
        ]
        readvertise: list[tuple[int, int, TreePattern]] = []
        while frontier:
            broker_id, sender = frontier.pop(0)
            self.advertisement_messages += 1
            node = self.brokers[broker_id]
            removed, restored = node.table.remove_pattern(
                pattern, (_FORWARD, sender)
            )
            if removed:
                frontier.extend(
                    (neighbor, broker_id)
                    for neighbor in node.neighbors
                    if neighbor != sender
                )
                readvertise.extend(
                    (broker_id, sender, entry) for entry in restored
                )
        for broker_id, sender, entry in readvertise:
            self._propagate(broker_id, entry, skip=sender)

    def advertise_subscriptions(self) -> None:
        """Per-subscription advertisement: exact routing, maximal state."""
        self.reset_routing()
        self.mode = "per_subscription"
        self._advertised = set(self.subscriptions)
        for subscriber_id, (home_id, pattern) in self.subscriptions.items():
            home = self.brokers[home_id]
            home.table.add(pattern, (_DELIVER, (subscriber_id,)))
            self._propagate(home_id, pattern)

    def _cluster_node(
        self, node: BrokerNode
    ) -> list[tuple[TreePattern, tuple[int, ...]]]:
        """Cluster one broker's advertised subscriptions into communities.

        Runs :func:`~repro.routing.community.leader_clustering` over the
        broker's live similarity index (every pairwise value the clustering
        needs is memoised there, so re-clustering after churn only pays for
        pairs involving changed patterns) and elects the advertised pattern
        per community.  Only subscribers holding an index handle take part:
        members that merely :meth:`attach`\\ -ed after the bulk
        advertisement stay out of the aggregation until it is rebuilt,
        mirroring the per-subscription regime's treatment of unadvertised
        membership.
        """
        assert self._community is not None and node.index is not None
        _, threshold, _, elect_by_selectivity = self._community
        advertised_members = [
            subscriber_id
            for subscriber_id in node.local_subscribers
            if subscriber_id in node.handles
        ]
        local_patterns = [
            self.subscriptions[subscriber_id][1]
            for subscriber_id in advertised_members
        ]
        communities = leader_clustering(local_patterns, node.index, threshold)
        aggregated: list[tuple[TreePattern, tuple[int, ...]]] = []
        for community in communities:
            members = tuple(
                advertised_members[index] for index in community.members
            )
            advertised = local_patterns[community.leader]
            if elect_by_selectivity:
                advertised = max(
                    (local_patterns[index] for index in community.members),
                    key=node.index.selectivity,
                )
            aggregated.append((advertised, members))
        return aggregated

    def _reaggregate(self, broker_id: int) -> None:
        """Refresh one broker's community advertisements after churn.

        Re-clusters the broker's local subscriptions (cheap: the index
        memo already holds every surviving pair) and applies two separate
        diffs against the live aggregation:

        * local delivery entries follow the full ``(pattern, members)``
          communities — a membership change swaps the home broker's
          deliver entry in place;
        * overlay-wide advertisement traffic follows the *advertised
          pattern multiset* only — a subscriber joining or leaving an
          existing community whose advertised pattern survives costs zero
          unadvertise/re-flood messages, because the rest of the overlay
          routes on the pattern, not on the membership.
        """
        node = self.brokers[broker_id]
        fresh = self._cluster_node(node)
        unmatched = list(fresh)
        departed: list[tuple[TreePattern, tuple[int, ...]]] = []
        for entry in node.communities:
            if entry in unmatched:
                unmatched.remove(entry)
            else:
                departed.append(entry)
        withdrawn = [advertised for advertised, _ in departed]
        for advertised, members in departed:
            node.table.remove_destination((_DELIVER, members))
        for advertised, members in unmatched:
            node.table.add(advertised, (_DELIVER, members))
            if advertised in withdrawn:
                # Same advertised pattern, new membership: the overlay-wide
                # state is already in place.
                withdrawn.remove(advertised)
            else:
                self._propagate(broker_id, advertised)
        for advertised in withdrawn:
            self._unadvertise(broker_id, advertised)
        node.communities = fresh

    def advertise_communities(
        self,
        provider: SelectivityProvider,
        threshold: float,
        metric: str = "M3",
        elect_by_selectivity: bool = True,
        ratio_prefilter: bool = True,
    ) -> None:
        """Community-aggregated advertisement.

        Each broker clusters its local subscriptions with
        :func:`~repro.routing.community.leader_clustering` over a live
        :class:`~repro.core.similarity.SimilarityIndex` (one
        joint-selectivity computation per pattern pair, shared across all
        queries and across later churn events), then advertises a single
        pattern per community.  With ``elect_by_selectivity`` the advertised
        pattern is the community member with the highest selectivity — the
        member whose match set covers the most of the community's traffic,
        which trades a little precision for recall; otherwise the
        clustering leader is advertised.

        The per-broker index and the regime parameters stay live
        afterwards, so :meth:`subscribe` / :meth:`unsubscribe` maintain the
        aggregation incrementally instead of rebuilding it.

        With ``ratio_prefilter`` (the default) the clustering threshold is
        handed to each broker's index as its selectivity-ratio bound
        (``m3_prune_below``): the clustering only thresholds similarities,
        so pairs whose M3 provably cannot reach *threshold* skip the
        joint-selectivity evaluation entirely.  The bound relies on
        ``P(p ∧ q) ≤ min(P(p), P(q))``, which exact providers satisfy by
        construction; synopsis estimators need not, so pass
        ``ratio_prefilter=False`` to reproduce an estimator's raw
        clustering bit for bit.
        """
        self.reset_routing()
        self.mode = f"community(threshold={threshold})"
        self._community = (provider, threshold, metric, elect_by_selectivity)
        for node in self.brokers.values():
            node.index = SimilarityIndex(
                provider,
                metric=metric,
                m3_prune_below=threshold if ratio_prefilter else None,
            )
            node.handles = {
                subscriber_id: node.index.add(
                    self.subscriptions[subscriber_id][1]
                )
                for subscriber_id in node.local_subscribers
            }
            node.communities = self._cluster_node(node)
            for advertised, members in node.communities:
                node.table.add(advertised, (_DELIVER, members))
                self._propagate(node.broker_id, advertised)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def process_at(
        self,
        broker_id: int,
        document: XMLTree,
        arrived_from: Optional[int] = None,
    ) -> BrokerStep:
        """One broker-local filtering step: match *document* against
        *broker_id*'s routing table and report the outcome.

        ``arrived_from`` is the neighbour the document came in over (None
        for a locally published document); its link is excluded so the
        document never travels back the way it arrived.  The step is pure
        with respect to delivery semantics — it reads routing state and
        counts match operations, but schedules nothing — which is what
        lets the synchronous walk and the event engine share it.
        """
        if broker_id not in self.brokers:
            raise ValueError(f"no broker {broker_id}")
        node = self.brokers[broker_id]
        exclude = (
            () if arrived_from is None else ((_FORWARD, arrived_from),)
        )
        destinations, operations = node.table.destinations_for(
            document, exclude=exclude
        )
        delivered: set[int] = set()
        forwards: list[int] = []
        for kind, payload in destinations:
            if kind == _DELIVER:
                delivered.update(payload)
            else:
                forwards.append(payload)
        return BrokerStep(
            deliveries=frozenset(delivered),
            forwards=tuple(forwards),
            match_operations=operations,
        )

    def route(
        self, document: XMLTree, publish_at: int = 0
    ) -> tuple[set[int], dict[int, int], int]:
        """Route one document published at *publish_at*, synchronously.

        Applies :meth:`process_at` broker by broker in breadth-first
        order.  Returns ``(delivered subscriber ids, match operations per
        visited broker, inter-broker forwards)``.
        """
        if publish_at not in self.brokers:
            raise ValueError(f"no broker {publish_at}")
        delivered: set[int] = set()
        operations: dict[int, int] = {}
        forwards = 0
        frontier: list[tuple[int, Optional[int]]] = [(publish_at, None)]
        while frontier:
            broker_id, origin = frontier.pop(0)
            step = self.process_at(broker_id, document, origin)
            operations[broker_id] = (
                operations.get(broker_id, 0) + step.match_operations
            )
            delivered.update(step.deliveries)
            forwards += len(step.forwards)
            frontier.extend(
                (neighbor, broker_id) for neighbor in step.forwards
            )
        return delivered, operations, forwards

    def route_corpus(
        self,
        corpus: DocumentCorpus,
        publish_at: Union[int, str] = "round_robin",
    ) -> OverlayStats:
        """Route every corpus document and score delivery quality.

        ``publish_at`` is a fixed broker id or ``"round_robin"`` to spread
        publishers over the overlay.  Ground truth comes from the corpus'
        exact match sets; a delivery to an uninterested subscriber is a
        false positive, a missed interested subscriber a false negative.
        """
        if self.mode is None:
            raise ValueError(
                "no routing state: call advertise_subscriptions() or "
                "advertise_communities() first"
            )
        interest = {
            subscriber_id: corpus.match_set(pattern)
            for subscriber_id, (_, pattern) in self.subscriptions.items()
        }
        deliveries = 0
        true_deliveries = 0
        false_positives = 0
        false_negatives = 0
        total_operations = 0
        total_forwards = 0
        by_broker: dict[int, int] = {
            broker_id: 0 for broker_id in self.brokers
        }
        for index, document in enumerate(corpus.documents):
            if publish_at == "round_robin":
                source = index % len(self.brokers)
            else:
                source = int(publish_at)
            delivered, operations, forwards = self.route(document, source)
            total_forwards += forwards
            for broker_id, ops in operations.items():
                by_broker[broker_id] += ops
                total_operations += ops
            doc_id = document.doc_id
            wanted = {
                subscriber_id
                for subscriber_id, match_set in interest.items()
                if doc_id in match_set
            }
            deliveries += len(delivered)
            true_deliveries += len(delivered & wanted)
            false_positives += len(delivered - wanted)
            false_negatives += len(wanted - delivered)
        return OverlayStats(
            mode=self.mode,
            brokers=len(self.brokers),
            documents=len(corpus),
            subscribers=len(self.subscriptions),
            deliveries=deliveries,
            true_deliveries=true_deliveries,
            false_positives=false_positives,
            false_negatives=false_negatives,
            match_operations=total_operations,
            forwards=total_forwards,
            advertisement_messages=self.advertisement_messages,
            table_sizes={
                broker_id: len(node.table)
                for broker_id, node in self.brokers.items()
            },
            match_operations_by_broker=by_broker,
        )

    def flooding_stats(self, corpus: DocumentCorpus) -> OverlayStats:
        """The no-filtering baseline: every document visits every broker
        and is delivered to every subscriber."""
        interest = [
            corpus.match_set(pattern)
            for _, pattern in self.subscriptions.values()
        ]
        total = len(corpus) * len(self.subscriptions)
        wanted = sum(len(match_set) for match_set in interest)
        return OverlayStats(
            mode="flooding",
            brokers=len(self.brokers),
            documents=len(corpus),
            subscribers=len(self.subscriptions),
            deliveries=total,
            true_deliveries=wanted,
            false_positives=total - wanted,
            false_negatives=0,
            match_operations=0,
            forwards=len(corpus) * (len(self.brokers) - 1),
            advertisement_messages=0,
            table_sizes={broker_id: 0 for broker_id in self.brokers},
            match_operations_by_broker={
                broker_id: 0 for broker_id in self.brokers
            },
        )

    def __repr__(self) -> str:
        return (
            f"BrokerOverlay(brokers={len(self.brokers)}, "
            f"subscribers={len(self.subscriptions)}, mode={self.mode!r})"
        )
