"""Multi-broker overlay routing (the paper's target deployment).

The single-broker simulation in :mod:`repro.routing.broker` measures
filtering cost at one node; the scalability argument of Section 1 is about
a *network* of brokers, each holding a routing table whose size and
filtering cost grow with the subscription population.  This module builds
that network:

* :class:`BrokerNode` — one broker: neighbours, a covering-aware
  :class:`~repro.routing.table.RoutingTable`, and the subscriptions homed
  on it;
* :class:`BrokerOverlay` — a tree of brokers (chain, star or random tree)
  that propagates subscription advertisements hop-by-hop (pruned by
  containment covering), routes document streams end-to-end by
  reverse-path forwarding, and reports per-broker match operations, table
  sizes and delivery precision/recall.

Two advertisement regimes realise the paper's trade-off:

* ``advertise_subscriptions`` — every subscription is advertised through
  the overlay: exact delivery, maximal routing state (the baseline);
* ``advertise_communities`` — each broker first clusters its local
  subscriptions into semantic communities with a
  :class:`~repro.core.similarity.SimilarityMatrix` and advertises one
  pattern per community: routing state shrinks to one entry per community,
  delivery quality is governed by community coherence — i.e. by the
  similarity metric.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.pattern import TreePattern
from repro.core.similarity import SelectivityProvider, SimilarityMatrix
from repro.routing.community import leader_clustering
from repro.routing.table import RoutingTable
from repro.xmltree.corpus import DocumentCorpus
from repro.xmltree.tree import XMLTree

__all__ = ["BrokerNode", "BrokerOverlay", "OverlayStats", "TOPOLOGIES"]

#: Destination tags used in broker routing tables.
_FORWARD = "forward"
_DELIVER = "deliver"

TOPOLOGIES = ("chain", "star", "random_tree")


@dataclass
class BrokerNode:
    """One broker of the overlay."""

    broker_id: int
    neighbors: list[int] = field(default_factory=list)
    table: RoutingTable = field(default_factory=RoutingTable)
    #: Global subscriber ids homed on this broker.
    local_subscribers: list[int] = field(default_factory=list)
    #: Communities advertised in the last aggregation, as
    #: ``(advertised_pattern, member subscriber ids)``.
    communities: list[tuple[TreePattern, tuple[int, ...]]] = field(
        default_factory=list
    )

    def degree(self) -> int:
        return len(self.neighbors)

    def __repr__(self) -> str:
        return (
            f"BrokerNode(id={self.broker_id}, neighbors={self.neighbors}, "
            f"subscribers={len(self.local_subscribers)}, "
            f"table={len(self.table)})"
        )


@dataclass(frozen=True)
class OverlayStats:
    """Outcome of routing one document stream through the overlay."""

    mode: str
    brokers: int
    documents: int
    subscribers: int
    deliveries: int
    true_deliveries: int
    false_positives: int
    false_negatives: int
    match_operations: int
    forwards: int
    advertisement_messages: int
    table_sizes: dict[int, int]
    match_operations_by_broker: dict[int, int]

    @property
    def precision(self) -> float:
        """Fraction of deliveries that were wanted."""
        if self.deliveries == 0:
            return 1.0
        return self.true_deliveries / self.deliveries

    @property
    def recall(self) -> float:
        """Fraction of wanted deliveries that happened."""
        wanted = self.true_deliveries + self.false_negatives
        if wanted == 0:
            return 1.0
        return self.true_deliveries / wanted

    @property
    def total_table_entries(self) -> int:
        """Routing state across the whole overlay."""
        return sum(self.table_sizes.values())

    @property
    def matches_per_document(self) -> float:
        """Network-wide filtering cost per routed document."""
        if self.documents == 0:
            return 0.0
        return self.match_operations / self.documents

    @property
    def forwards_per_document(self) -> float:
        """Inter-broker transmissions per routed document."""
        if self.documents == 0:
            return 0.0
        return self.forwards / self.documents


class BrokerOverlay:
    """A tree-shaped broker network with content-based routing."""

    def __init__(self, n_brokers: int, edges: list[tuple[int, int]]):
        if n_brokers < 1:
            raise ValueError("need at least one broker")
        self.brokers: dict[int, BrokerNode] = {
            broker_id: BrokerNode(broker_id) for broker_id in range(n_brokers)
        }
        for a, b in edges:
            if a == b or a not in self.brokers or b not in self.brokers:
                raise ValueError(f"invalid overlay edge ({a}, {b})")
            self.brokers[a].neighbors.append(b)
            self.brokers[b].neighbors.append(a)
        for node in self.brokers.values():
            node.neighbors.sort()
        self._check_tree(n_brokers, edges)
        #: subscriber id -> (home broker id, pattern)
        self.subscriptions: list[tuple[int, TreePattern]] = []
        self.advertisement_messages = 0
        self.mode: Optional[str] = None

    @staticmethod
    def _check_tree(n_brokers: int, edges: list[tuple[int, int]]) -> None:
        if len(edges) != n_brokers - 1:
            raise ValueError(
                f"an overlay tree over {n_brokers} brokers needs exactly "
                f"{n_brokers - 1} edges, got {len(edges)}"
            )
        seen = {0}
        frontier = [0]
        adjacency: dict[int, list[int]] = {i: [] for i in range(n_brokers)}
        for a, b in edges:
            adjacency[a].append(b)
            adjacency[b].append(a)
        while frontier:
            node = frontier.pop()
            for neighbor in adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        if len(seen) != n_brokers:
            raise ValueError("overlay edges do not connect all brokers")

    # ------------------------------------------------------------------
    # topology factories
    # ------------------------------------------------------------------

    @classmethod
    def chain(cls, n_brokers: int) -> "BrokerOverlay":
        """``0 — 1 — 2 — ... — n-1`` (maximal diameter)."""
        return cls(n_brokers, [(i, i + 1) for i in range(n_brokers - 1)])

    @classmethod
    def star(cls, n_brokers: int) -> "BrokerOverlay":
        """Broker 0 as hub, all others leaves (minimal diameter)."""
        return cls(n_brokers, [(0, i) for i in range(1, n_brokers)])

    @classmethod
    def random_tree(cls, n_brokers: int, seed: int = 0) -> "BrokerOverlay":
        """A uniformly random recursive tree: broker *i* attaches to a
        random earlier broker."""
        rng = random.Random(seed)
        edges = [
            (rng.randrange(i), i) for i in range(1, n_brokers)
        ]
        return cls(n_brokers, edges)

    @classmethod
    def build(
        cls, topology: str, n_brokers: int, seed: int = 0
    ) -> "BrokerOverlay":
        """Factory dispatching on a topology name from :data:`TOPOLOGIES`."""
        if topology == "chain":
            return cls.chain(n_brokers)
        if topology == "star":
            return cls.star(n_brokers)
        if topology == "random_tree":
            return cls.random_tree(n_brokers, seed=seed)
        raise ValueError(
            f"unknown topology {topology!r}; choose from {TOPOLOGIES}"
        )

    # ------------------------------------------------------------------
    # subscription management
    # ------------------------------------------------------------------

    def attach(self, broker_id: int, pattern: TreePattern) -> int:
        """Home a new subscriber with *pattern* on *broker_id*; returns its
        global subscriber id."""
        if broker_id not in self.brokers:
            raise ValueError(f"no broker {broker_id}")
        subscriber_id = len(self.subscriptions)
        self.subscriptions.append((broker_id, pattern))
        self.brokers[broker_id].local_subscribers.append(subscriber_id)
        return subscriber_id

    def attach_round_robin(self, patterns: list[TreePattern]) -> list[int]:
        """Spread *patterns* over brokers in round-robin order."""
        return [
            self.attach(index % len(self.brokers), pattern)
            for index, pattern in enumerate(patterns)
        ]

    def reset_routing(self) -> None:
        """Drop all routing state (tables, communities, ad counters)."""
        for node in self.brokers.values():
            node.table = RoutingTable()
            node.communities = []
        self.advertisement_messages = 0
        self.mode = None

    # ------------------------------------------------------------------
    # advertisement
    # ------------------------------------------------------------------

    def _propagate(self, home_id: int, pattern: TreePattern) -> None:
        """Flood one advertisement away from its home broker.

        Each receiving broker installs ``pattern → (forward, sender)`` —
        reverse-path routing state — and re-advertises to its remaining
        neighbours only when covering did *not* absorb the entry: if an
        existing entry for the same link contains the pattern, every broker
        further out already routes the pattern's documents this way.
        """
        frontier = [
            (neighbor, home_id) for neighbor in self.brokers[home_id].neighbors
        ]
        while frontier:
            broker_id, sender = frontier.pop(0)
            self.advertisement_messages += 1
            node = self.brokers[broker_id]
            if node.table.add(pattern, (_FORWARD, sender)):
                frontier.extend(
                    (neighbor, broker_id)
                    for neighbor in node.neighbors
                    if neighbor != sender
                )

    def advertise_subscriptions(self) -> None:
        """Per-subscription advertisement: exact routing, maximal state."""
        self.reset_routing()
        self.mode = "per_subscription"
        for subscriber_id, (home_id, pattern) in enumerate(self.subscriptions):
            home = self.brokers[home_id]
            home.table.add(pattern, (_DELIVER, (subscriber_id,)))
            self._propagate(home_id, pattern)

    def advertise_communities(
        self,
        provider: SelectivityProvider,
        threshold: float,
        metric: str = "M3",
        elect_by_selectivity: bool = True,
    ) -> None:
        """Community-aggregated advertisement.

        Each broker clusters its local subscriptions with
        :func:`~repro.routing.community.leader_clustering` over a
        :class:`SimilarityMatrix` (one joint-selectivity computation per
        pattern pair, shared across all queries), then advertises a single
        pattern per community.  With ``elect_by_selectivity`` the advertised
        pattern is the community member with the highest selectivity — the
        member whose match set covers the most of the community's traffic,
        which trades a little precision for recall; otherwise the
        clustering leader is advertised.
        """
        self.reset_routing()
        self.mode = f"community(threshold={threshold})"
        for node in self.brokers.values():
            if not node.local_subscribers:
                continue
            local_patterns = [
                self.subscriptions[subscriber_id][1]
                for subscriber_id in node.local_subscribers
            ]
            matrix = SimilarityMatrix(provider, local_patterns, metric=metric)
            communities = leader_clustering(local_patterns, matrix, threshold)
            for community in communities:
                members = tuple(
                    node.local_subscribers[index] for index in community.members
                )
                advertised = local_patterns[community.leader]
                if elect_by_selectivity:
                    advertised = max(
                        (local_patterns[index] for index in community.members),
                        key=matrix.selectivity,
                    )
                node.communities.append((advertised, members))
                node.table.add(advertised, (_DELIVER, members))
                self._propagate(node.broker_id, advertised)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def route(
        self, document: XMLTree, publish_at: int = 0
    ) -> tuple[set[int], dict[int, int], int]:
        """Route one document published at *publish_at*.

        Returns ``(delivered subscriber ids, match operations per visited
        broker, inter-broker forwards)``.
        """
        if publish_at not in self.brokers:
            raise ValueError(f"no broker {publish_at}")
        delivered: set[int] = set()
        operations: dict[int, int] = {}
        forwards = 0
        frontier: list[tuple[int, Optional[int]]] = [(publish_at, None)]
        while frontier:
            broker_id, origin = frontier.pop(0)
            node = self.brokers[broker_id]
            exclude = () if origin is None else ((_FORWARD, origin),)
            destinations, ops = node.table.destinations_for(
                document, exclude=exclude
            )
            operations[broker_id] = operations.get(broker_id, 0) + ops
            for kind, payload in destinations:
                if kind == _DELIVER:
                    delivered.update(payload)
                else:
                    forwards += 1
                    frontier.append((payload, broker_id))
        return delivered, operations, forwards

    def route_corpus(
        self,
        corpus: DocumentCorpus,
        publish_at: Union[int, str] = "round_robin",
    ) -> OverlayStats:
        """Route every corpus document and score delivery quality.

        ``publish_at`` is a fixed broker id or ``"round_robin"`` to spread
        publishers over the overlay.  Ground truth comes from the corpus'
        exact match sets; a delivery to an uninterested subscriber is a
        false positive, a missed interested subscriber a false negative.
        """
        if self.mode is None:
            raise ValueError(
                "no routing state: call advertise_subscriptions() or "
                "advertise_communities() first"
            )
        interest = [
            corpus.match_set(pattern) for _, pattern in self.subscriptions
        ]
        deliveries = 0
        true_deliveries = 0
        false_positives = 0
        false_negatives = 0
        total_operations = 0
        total_forwards = 0
        by_broker: dict[int, int] = {
            broker_id: 0 for broker_id in self.brokers
        }
        for index, document in enumerate(corpus.documents):
            if publish_at == "round_robin":
                source = index % len(self.brokers)
            else:
                source = int(publish_at)
            delivered, operations, forwards = self.route(document, source)
            total_forwards += forwards
            for broker_id, ops in operations.items():
                by_broker[broker_id] += ops
                total_operations += ops
            doc_id = document.doc_id
            wanted = {
                subscriber_id
                for subscriber_id in range(len(self.subscriptions))
                if doc_id in interest[subscriber_id]
            }
            deliveries += len(delivered)
            true_deliveries += len(delivered & wanted)
            false_positives += len(delivered - wanted)
            false_negatives += len(wanted - delivered)
        return OverlayStats(
            mode=self.mode,
            brokers=len(self.brokers),
            documents=len(corpus),
            subscribers=len(self.subscriptions),
            deliveries=deliveries,
            true_deliveries=true_deliveries,
            false_positives=false_positives,
            false_negatives=false_negatives,
            match_operations=total_operations,
            forwards=total_forwards,
            advertisement_messages=self.advertisement_messages,
            table_sizes={
                broker_id: len(node.table)
                for broker_id, node in self.brokers.items()
            },
            match_operations_by_broker=by_broker,
        )

    def flooding_stats(self, corpus: DocumentCorpus) -> OverlayStats:
        """The no-filtering baseline: every document visits every broker
        and is delivered to every subscriber."""
        interest = [
            corpus.match_set(pattern) for _, pattern in self.subscriptions
        ]
        total = len(corpus) * len(self.subscriptions)
        wanted = sum(len(match_set) for match_set in interest)
        return OverlayStats(
            mode="flooding",
            brokers=len(self.brokers),
            documents=len(corpus),
            subscribers=len(self.subscriptions),
            deliveries=total,
            true_deliveries=wanted,
            false_positives=total - wanted,
            false_negatives=0,
            match_operations=0,
            forwards=len(corpus) * (len(self.brokers) - 1),
            advertisement_messages=0,
            table_sizes={broker_id: 0 for broker_id in self.brokers},
            match_operations_by_broker={
                broker_id: 0 for broker_id in self.brokers
            },
        )

    def __repr__(self) -> str:
        return (
            f"BrokerOverlay(brokers={len(self.brokers)}, "
            f"subscribers={len(self.subscriptions)}, mode={self.mode!r})"
        )
