"""Semantic communities of subscriptions.

The paper's motivation (Section 1): gather consumers with similar
subscriptions into *semantic communities* so documents can be disseminated
within a community without per-member filtering.  Containment is the wrong
tool (asymmetric, boolean, produces inclusion trees); the similarity metrics
of Section 4 are the right one.  This module provides two standard
clusterings over a pattern similarity function:

* :func:`leader_clustering` — greedy threshold clustering: each pattern
  joins the first community whose *leader* is similar enough, else founds a
  new community.  One pass, order-dependent, O(n · #communities) similarity
  evaluations — the shape of algorithm an online pub/sub broker can afford.
* :func:`agglomerative_clustering` — average-linkage hierarchical
  clustering down to a target community count; quadratic, but a better
  optimiser for offline re-organisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.pattern import TreePattern

__all__ = ["Community", "leader_clustering", "agglomerative_clustering"]

SimilarityFn = Callable[[TreePattern, TreePattern], float]


@dataclass
class Community:
    """A group of subscription indices with a designated leader."""

    leader: int
    members: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.leader not in self.members:
            self.members.append(self.leader)

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, index: int) -> bool:
        return index in self.members


def leader_clustering(
    patterns: Sequence[TreePattern],
    similarity: SimilarityFn,
    threshold: float,
) -> list[Community]:
    """Greedy threshold clustering of *patterns*.

    Each pattern is compared against existing community leaders in creation
    order and joins the first community with ``similarity >= threshold``;
    otherwise it becomes the leader of a new community.  ``threshold=1.0``
    therefore yields (near-)equivalence classes and ``threshold=0.0`` a
    single community.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError("threshold must be in [0, 1]")
    communities: list[Community] = []
    for index, pattern in enumerate(patterns):
        placed = False
        for community in communities:
            if similarity(patterns[community.leader], pattern) >= threshold:
                community.members.append(index)
                placed = True
                break
        if not placed:
            communities.append(Community(leader=index))
    return communities


def agglomerative_clustering(
    patterns: Sequence[TreePattern],
    similarity: SimilarityFn,
    n_communities: int,
    min_similarity: float = 0.0,
) -> list[Community]:
    """Average-linkage agglomerative clustering down to *n_communities*.

    Merging stops early when the best average inter-cluster similarity
    drops below *min_similarity*.  The member most similar to the rest of
    its community becomes the leader.
    """
    if n_communities < 1:
        raise ValueError("need at least one community")
    n = len(patterns)
    if n == 0:
        return []

    # Precompute the symmetric similarity matrix once.
    sims = [[0.0] * n for _ in range(n)]
    for i in range(n):
        sims[i][i] = 1.0
        for j in range(i + 1, n):
            value = similarity(patterns[i], patterns[j])
            sims[i][j] = value
            sims[j][i] = value

    clusters: list[list[int]] = [[i] for i in range(n)]

    def average_linkage(a: list[int], b: list[int]) -> float:
        total = sum(sims[i][j] for i in a for j in b)
        return total / (len(a) * len(b))

    while len(clusters) > n_communities:
        best_pair: Optional[tuple[int, int]] = None
        best_score = -1.0
        for a in range(len(clusters)):
            for b in range(a + 1, len(clusters)):
                score = average_linkage(clusters[a], clusters[b])
                if score > best_score:
                    best_score = score
                    best_pair = (a, b)
        if best_pair is None or best_score < min_similarity:
            break
        a, b = best_pair
        clusters[a].extend(clusters[b])
        del clusters[b]

    communities: list[Community] = []
    for members in clusters:
        leader = max(
            members,
            key=lambda i: sum(sims[i][j] for j in members),
        )
        communities.append(Community(leader=leader, members=list(members)))
    return communities
