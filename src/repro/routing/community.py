"""Semantic communities of subscriptions.

The paper's motivation (Section 1): gather consumers with similar
subscriptions into *semantic communities* so documents can be disseminated
within a community without per-member filtering.  Containment is the wrong
tool (asymmetric, boolean, produces inclusion trees); the similarity metrics
of Section 4 are the right one.  This module provides two standard
clusterings over a pattern similarity function:

* :func:`leader_clustering` — greedy threshold clustering: each pattern
  joins the first community whose *leader* is similar enough, else founds a
  new community.  One pass, order-dependent, O(n · #communities) similarity
  evaluations — the shape of algorithm an online pub/sub broker can afford.
* :func:`agglomerative_clustering` — average-linkage hierarchical
  clustering down to a target community count; quadratic, but a better
  optimiser for offline re-organisation.

Both accept any ``similarity(p, q)`` callable, including a
:class:`~repro.core.similarity.SimilarityMatrix` or a live
:class:`~repro.core.similarity.SimilarityIndex`, whose memos share the
dominant joint-selectivity work across clustering runs (and with the
overlay layer) — churn-facing brokers re-cluster through the same index
they mutate, paying only for pairs involving changed patterns.
:func:`agglomerative_clustering` additionally detects an engine aligned
with its pattern population and reads the precomputed values directly;
:func:`leader_clustering` stays lazy on purpose — it only ever needs
O(n · #communities) of the n² pairs.

Both also accept a ``candidates=`` template — a
:class:`~repro.core.candidates.CandidateGenerator` such as
:class:`~repro.core.candidates.LSHCandidates` — restricting which pairs
are evaluated at all: leader clustering only compares a pattern against
the community leaders colliding with it (the per-pattern cost drops from
O(#communities) similarity evaluations to O(bands) bucket lookups plus
the few collisions), and agglomerative clustering only evaluates
candidate pairs, scoring the rest 0.  With
:class:`~repro.core.candidates.ExactCandidates` the results are
identical to the un-gated clusterings; with LSH they trade a measured
amount of recall for sublinear candidate generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.candidates import CandidateGenerator
from repro.core.pattern import TreePattern
from repro.core.similarity import SimilarityIndex, SimilarityMatrix

__all__ = ["Community", "leader_clustering", "agglomerative_clustering"]

SimilarityFn = Callable[[TreePattern, TreePattern], float]


def _pairwise_values(
    patterns: Sequence[TreePattern],
    similarity: SimilarityFn,
    candidates: Optional[CandidateGenerator] = None,
) -> list[list[float]]:
    """The full symmetric similarity matrix over *patterns*.

    An aligned :class:`SimilarityMatrix` (same population, in order) hands
    over its cached values; an aligned :class:`SimilarityIndex` evaluates
    through its memo (only never-seen pairs reach the provider); any other
    callable is evaluated once per unordered pair.  With a candidate
    generator, only candidate pairs are evaluated — every other entry is
    scored 0.0 without dispatching the similarity callable.
    """
    if candidates is not None:
        generator = candidates.spawn()
        for index, pattern in enumerate(patterns):
            generator.add(index, pattern)
        n = len(patterns)
        sims = [[0.0] * n for _ in range(n)]
        for i in range(n):
            sims[i][i] = 1.0
        for i, j in generator.pairs():
            value = similarity(patterns[i], patterns[j])
            sims[i][j] = value
            sims[j][i] = value
        return sims
    if isinstance(similarity, SimilarityMatrix) and similarity.patterns == list(
        patterns
    ):
        return similarity.values
    if isinstance(similarity, SimilarityIndex) and similarity.patterns == list(
        patterns
    ):
        handles = similarity.handles()
        rows = [similarity.row(handle) for handle in handles]
        return [
            [row[other] for other in handles] for row in rows
        ]
    n = len(patterns)
    sims = [[0.0] * n for _ in range(n)]
    for i in range(n):
        sims[i][i] = 1.0
        for j in range(i + 1, n):
            value = similarity(patterns[i], patterns[j])
            sims[i][j] = value
            sims[j][i] = value
    return sims


@dataclass
class Community:
    """A group of subscription indices with a designated leader."""

    leader: int
    members: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.leader not in self.members:
            self.members.append(self.leader)

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, index: int) -> bool:
        return index in self.members


def leader_clustering(
    patterns: Sequence[TreePattern],
    similarity: SimilarityFn,
    threshold: float,
    candidates: Optional[CandidateGenerator] = None,
) -> list[Community]:
    """Greedy threshold clustering of *patterns*.

    Each pattern is compared against existing community leaders in creation
    order and joins the first community with ``similarity >= threshold``;
    otherwise it becomes the leader of a new community.  ``threshold=1.0``
    therefore yields (near-)equivalence classes and ``threshold=0.0`` a
    single community.

    With a *candidates* template, only the leaders the generator reports
    as candidates of the incoming pattern are compared — still in
    community-creation order, so
    :class:`~repro.core.candidates.ExactCandidates` (whose candidate set
    is every leader) reproduces the un-gated clustering exactly, while
    :class:`~repro.core.candidates.LSHCandidates` makes placement cost
    independent of the total community count.  The template itself is
    never mutated: a fresh spawn holds the leaders-only population.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError("threshold must be in [0, 1]")
    communities: list[Community] = []
    if candidates is None:
        for index, pattern in enumerate(patterns):
            placed = False
            for community in communities:
                if similarity(patterns[community.leader], pattern) >= threshold:
                    community.members.append(index)
                    placed = True
                    break
            if not placed:
                communities.append(Community(leader=index))
        return communities
    generator = candidates.spawn()
    #: leader pattern-index -> its community, in creation order.  Keys
    #: ascend with creation, so sorting candidate leader indices
    #: reproduces the oracle's first-fit order.
    by_leader: dict[int, Community] = {}
    for index, pattern in enumerate(patterns):
        placed = False
        for leader in sorted(generator.candidates_of(pattern)):
            if similarity(patterns[leader], pattern) >= threshold:
                by_leader[leader].members.append(index)
                placed = True
                break
        if not placed:
            community = Community(leader=index)
            communities.append(community)
            by_leader[index] = community
            generator.add(index, pattern)
    return communities


def agglomerative_clustering(
    patterns: Sequence[TreePattern],
    similarity: SimilarityFn,
    n_communities: int,
    min_similarity: float = 0.0,
    candidates: Optional[CandidateGenerator] = None,
) -> list[Community]:
    """Average-linkage agglomerative clustering down to *n_communities*.

    Merging stops early when the best average inter-cluster similarity
    drops below *min_similarity*.  The member most similar to the rest of
    its community becomes the leader.  With a *candidates* template,
    only candidate pairs are evaluated for the similarity matrix — the
    rest score 0, so non-candidate clusters can only merge through
    shared candidate mass.

    Average linkage is cached per cluster pair: after a merge, only the
    pairs involving the merged cluster are recomputed from the similarity
    matrix — every untouched pair keeps its cached sum.  The recomputation
    deliberately iterates members in the same order as a full rescan
    would, so results (including near-tie merge decisions) are
    bit-identical to the naive rescan-everything implementation.
    """
    if n_communities < 1:
        raise ValueError("need at least one community")
    n = len(patterns)
    if n == 0:
        return []

    sims = _pairwise_values(patterns, similarity, candidates)

    # Active cluster uids in creation order (always ascending: merges keep
    # the earlier uid, deletions preserve order); ``members[uid]`` holds
    # pattern indices, ``pair_sum[(u, v)]`` (u < v) the similarity mass
    # between two active clusters, summed over members of u then v.
    uids: list[int] = list(range(n))
    members: dict[int, list[int]] = {uid: [uid] for uid in uids}
    pair_sum: dict[tuple[int, int], float] = {
        (i, j): sims[i][j] for i in range(n) for j in range(i + 1, n)
    }

    def key(u: int, v: int) -> tuple[int, int]:
        return (u, v) if u < v else (v, u)

    def linkage_sum(u: int, v: int) -> float:
        first, second = (u, v) if u < v else (v, u)
        return sum(
            sims[i][j] for i in members[first] for j in members[second]
        )

    while len(uids) > n_communities:
        best_pair: Optional[tuple[int, int]] = None
        best_score = -1.0
        for a in range(len(uids)):
            for b in range(a + 1, len(uids)):
                u, v = uids[a], uids[b]
                score = pair_sum[key(u, v)] / (len(members[u]) * len(members[v]))
                if score > best_score:
                    best_score = score
                    best_pair = (a, b)
        if best_pair is None or best_score < min_similarity:
            break
        a, b = best_pair
        u, v = uids[a], uids[b]
        members[u].extend(members.pop(v))
        del uids[b]
        pair_sum.pop(key(u, v))
        for w in uids:
            if w != u:
                pair_sum.pop(key(v, w))
                pair_sum[key(u, w)] = linkage_sum(u, w)

    communities: list[Community] = []
    for uid in uids:
        group = members[uid]
        leader = max(
            group,
            key=lambda i: sum(
                1.0 if i == j else sims[i][j] for j in group
            ),
        )
        communities.append(Community(leader=leader, members=list(group)))
    return communities
