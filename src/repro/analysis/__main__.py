"""The reprolint command line: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean, 1 violations found, 2 the analysis itself failed.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.engine import (
    AnalysisError,
    Rule,
    render_json,
    run_analysis,
)
from repro.analysis.rules import default_rules


def _select_rules(spec: str | None) -> Sequence[Rule]:
    """The default rules, filtered by a comma-separated code list."""
    rules = default_rules()
    if spec is None:
        return rules
    wanted = {code.strip().upper() for code in spec.split(",") if code.strip()}
    known = {rule.code for rule in rules}
    unknown = wanted - known
    if unknown:
        raise AnalysisError(
            f"unknown rule code(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}"
        )
    return [rule for rule in rules if rule.code in wanted]


def main(argv: Sequence[str] | None = None) -> int:
    """Run reprolint over the given paths; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "reprolint: check the project's determinism/purity invariants "
            "(seeded randomness, no wall clock, stable hashes, ordered "
            "iteration, frozen models, engine isolation, export and "
            "docstring hygiene) at the source level"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyse (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="directory repo-relative rule scopes anchor on (default: .)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    try:
        rules = _select_rules(args.rules)
        if args.list_rules:
            for rule in rules:
                print(f"{rule.code} {rule.name}: {rule.description}")
            return 0
        report = run_analysis(
            [Path(p) for p in args.paths],
            rules,
            root=Path(args.root),
            check_unused=args.rules is None,
        )
    except AnalysisError as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(report))
    else:
        print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
