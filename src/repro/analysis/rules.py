"""The reprolint rules: this project's invariants as source-level checks.

Every headline guarantee of the reproduction — synchronous walk equals
event engine, trie equals linear oracle, incremental churn equals fresh
rebuild, sharded candidate generation bit-identical across workers —
rests on determinism and broker-local purity.  These rules encode the
source-level discipline those guarantees assume:

* :class:`UnseededRandomRule` (RL001) — all randomness flows through an
  injected, seeded :class:`random.Random`;
* :class:`WallClockRule` (RL002) — simulated time never reads the wall
  clock;
* :class:`ProcessHashRule` (RL003) — keys that may cross process or run
  boundaries never use ``PYTHONHASHSEED``-dependent ``hash()`` / ``id()``;
* :class:`UnorderedIterationRule` (RL004) — routing code never iterates
  a set where the iteration order can leak into an observable result;
* :class:`FrozenModelRule` (RL005) — service/link models and policies
  are frozen dataclasses, so engine replay cannot be poisoned by mutable
  policy state;
* :class:`EngineIsolationRule` (RL006) — broker-local step code stays
  engine-agnostic;
* :class:`ExportConsistencyRule` (RL007) — package ``__all__`` listings
  and re-exports agree;
* :class:`DocstringRule` (RL008) — every public API carries a docstring.

Rules are plain objects satisfying :class:`repro.analysis.engine.Rule`;
:func:`default_rules` returns the standard set in code order.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.analysis.engine import Rule, SourceFile, Violation

__all__ = [
    "DocstringRule",
    "EngineIsolationRule",
    "ExportConsistencyRule",
    "FrozenModelRule",
    "ProcessHashRule",
    "UnorderedIterationRule",
    "UnseededRandomRule",
    "WallClockRule",
    "default_rules",
]


class ScopedRule:
    """Shared path scoping: prefix allowlist plus prefix denylist."""

    #: Repo-relative path prefixes the rule runs on ("" matches all).
    scope: tuple[str, ...] = ("",)
    #: Repo-relative path prefixes the rule never runs on.
    excluded: tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        """Prefix match against :attr:`scope` minus :attr:`excluded`."""
        if any(relpath.startswith(prefix) for prefix in self.excluded):
            return False
        return any(relpath.startswith(prefix) for prefix in self.scope)


def _call_name(node: ast.Call) -> str | None:
    """The bare name a call invokes, if the callee is a plain name."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _enclosing_function(
    source: SourceFile, node: ast.AST
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """The innermost function definition containing *node*, if any."""
    parents = source.parent_map()
    current = parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = parents.get(current)
    return None


class UnseededRandomRule(ScopedRule):
    """RL001: no ambient or unseeded randomness in library code.

    ``random.random()`` (and every other module-level helper) draws from
    the interpreter-global RNG, and ``random.Random()`` with no arguments
    seeds from the OS — both make clustering, sharding and the event
    engine unrepeatable.  Library code must accept an injected
    ``random.Random(seed)`` (or construct one from an explicit seed).
    """

    code = "RL001"
    name = "unseeded-random"
    description = (
        "randomness must flow through an injected seeded random.Random; "
        "no module-level random.* calls, no unseeded Random()"
    )
    scope = ("src/repro",)

    def check(self, source: SourceFile) -> Iterator[Violation]:
        """Flag ambient ``random.*`` calls and unseeded constructions."""
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                bad = [a.name for a in node.names if a.name not in ("Random",)]
                if bad:
                    yield source.violation(
                        self.code,
                        f"from random import {', '.join(bad)}: import the "
                        "Random class and inject a seeded instance instead",
                        node.lineno,
                    )
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
            ):
                if func.attr == "Random":
                    if not node.args and not node.keywords:
                        yield source.violation(
                            self.code,
                            "random.Random() without a seed is "
                            "OS-entropy-seeded; pass an explicit seed",
                            node.lineno,
                        )
                else:
                    yield source.violation(
                        self.code,
                        f"random.{func.attr}() uses the ambient global RNG; "
                        "route randomness through an injected seeded Random",
                        node.lineno,
                    )
            elif _call_name(node) == "Random" and not node.args and not node.keywords:
                yield source.violation(
                    self.code,
                    "Random() without a seed is OS-entropy-seeded; "
                    "pass an explicit seed",
                    node.lineno,
                )


class WallClockRule(ScopedRule):
    """RL002: simulated time never reads the wall clock.

    The delivery engine's clock is simulation time; a single
    ``time.time()`` or ``datetime.now()`` in library or test code makes
    results machine- and moment-dependent.  Benchmarks are exempt —
    measuring wall-clock there is the point.
    """

    code = "RL002"
    name = "wall-clock"
    description = (
        "no wall-clock reads (time.time/perf_counter/datetime.now) "
        "outside benchmarks/"
    )
    scope = ("",)
    excluded = ("benchmarks/",)

    _TIME_ATTRS = frozenset(
        {
            "time",
            "time_ns",
            "monotonic",
            "monotonic_ns",
            "perf_counter",
            "perf_counter_ns",
            "process_time",
            "process_time_ns",
        }
    )
    _DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

    def check(self, source: SourceFile) -> Iterator[Violation]:
        """Flag wall-clock imports and call sites."""
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    bad = [
                        a.name for a in node.names if a.name in self._TIME_ATTRS
                    ]
                    if bad:
                        yield source.violation(
                            self.code,
                            f"from time import {', '.join(bad)}: wall-clock "
                            "reads are banned outside benchmarks/",
                            node.lineno,
                        )
                continue
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            func = node.func
            owner = func.value
            if (
                isinstance(owner, ast.Name)
                and owner.id == "time"
                and func.attr in self._TIME_ATTRS
            ):
                yield source.violation(
                    self.code,
                    f"time.{func.attr}() reads the wall clock; simulated "
                    "components must take time as an input",
                    node.lineno,
                )
            elif func.attr in self._DATETIME_ATTRS and (
                (isinstance(owner, ast.Name) and owner.id in ("datetime", "date"))
                or (
                    isinstance(owner, ast.Attribute)
                    and owner.attr in ("datetime", "date")
                    and isinstance(owner.value, ast.Name)
                    and owner.value.id == "datetime"
                )
            ):
                yield source.violation(
                    self.code,
                    f"datetime wall-clock read ({func.attr}); simulated "
                    "components must take time as an input",
                    node.lineno,
                )


class ProcessHashRule(ScopedRule):
    """RL003: no ``PYTHONHASHSEED``/address-dependent keys.

    Builtin ``hash()`` of a string is salted per process and ``id()`` is
    an address: either one inside an LSH bucket key, a memo key that is
    compared across runs, or anything pickled to a worker silently breaks
    cross-process bit-identity.  The banding scheme uses ``blake2b``
    precisely for this reason; everything else must too.  ``__hash__``
    implementations are exempt — delegating to ``hash()`` on the
    constituents is what they are for, and those hashes never leave the
    process by construction.
    """

    code = "RL003"
    name = "process-hash"
    description = (
        "builtin hash()/id() are process-dependent; use a stable digest "
        "(e.g. blake2b) for keys that cross process or run boundaries"
    )
    scope = ("src/repro",)

    def check(self, source: SourceFile) -> Iterator[Violation]:
        """Flag ``hash()`` / ``id()`` calls outside ``__hash__`` bodies."""
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name not in ("hash", "id"):
                continue
            enclosing = _enclosing_function(source, node)
            if enclosing is not None and enclosing.name == "__hash__":
                continue
            yield source.violation(
                self.code,
                f"builtin {name}() is process-dependent "
                "(PYTHONHASHSEED / object address); use a stable digest "
                "for anything that crosses a process or run boundary",
                node.lineno,
            )


class UnorderedIterationRule(ScopedRule):
    """RL004: routing code never leaks set iteration order.

    With string elements, set iteration order depends on
    ``PYTHONHASHSEED``; a list built from it, a first-match return, or a
    keyed ``min``/``max`` tie-break then differs between runs.  Routing
    code must wrap such iterations in ``sorted(...)`` (or prove the sink
    order-insensitive and suppress with a justification).

    The check is syntactic: an expression is *set-like* when it is a set
    display/comprehension, a ``set()``/``frozenset()`` call, a set
    operator chain over set-like operands, a name assigned or annotated
    set-like in the same function, or a ``self`` attribute assigned or
    annotated set-like in the same class.  Iterating one is flagged
    except in provably order-insensitive consumers (set builds and
    reductions such as ``sum``/``any``/``all``/``sorted``/keyless
    ``min``/``max``).
    """

    code = "RL004"
    name = "unordered-iteration"
    description = (
        "iteration over a set feeding an ordering-sensitive sink must be "
        "explicitly ordered (sorted(...))"
    )
    scope = ("src/repro/routing",)

    _SET_CALLS = frozenset({"set", "frozenset"})
    _SET_METHODS = frozenset(
        {"intersection", "union", "difference", "symmetric_difference", "copy"}
    )
    _SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    #: Reductions whose result cannot depend on iteration order (keyless
    #: min/max are value-based; ties over totally ordered keys cannot
    #: produce distinct results).
    _ORDER_FREE_CALLS = frozenset({"set", "frozenset", "sum", "any", "all", "len", "sorted", "min", "max"})

    def _is_set_annotation(self, annotation: ast.expr | None) -> bool:
        """Whether a type annotation names a set type."""
        if annotation is None:
            return False
        target = annotation
        if isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Attribute):
            return target.attr in ("Set", "FrozenSet", "AbstractSet", "MutableSet")
        if isinstance(target, ast.Name):
            return target.id in (
                "set",
                "frozenset",
                "Set",
                "FrozenSet",
                "AbstractSet",
                "MutableSet",
            )
        return False

    def _enclosing_scope(
        self, source: SourceFile, node: ast.AST
    ) -> tuple[ast.AST | None, ast.ClassDef | None]:
        """Innermost enclosing function (None = module) and class."""
        parents = source.parent_map()
        function: ast.AST | None = None
        klass: ast.ClassDef | None = None
        current = parents.get(node)
        while current is not None:
            if function is None and isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                function = current
            if klass is None and isinstance(current, ast.ClassDef):
                klass = current
            current = parents.get(current)
        return function, klass

    def _collect_set_names(
        self, source: SourceFile
    ) -> tuple[dict[ast.AST | None, set[str]], dict[ast.ClassDef | None, set[str]]]:
        """Set-like bindings per enclosing function, self-attrs per class.

        One literal pass only: ``a = set(); b = a`` does not mark ``b`` —
        the rule favours precision over transitive inference.
        """
        names: dict[ast.AST | None, set[str]] = {}
        attrs: dict[ast.ClassDef | None, set[str]] = {}
        for node in ast.walk(source.tree):
            value: ast.expr | None = None
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, list(node.targets)
            elif isinstance(node, ast.AnnAssign):
                value, targets = node.value, [node.target]
                if self._is_set_annotation(node.annotation):
                    value = ast.Set(elts=[])  # annotation alone marks it
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in args.posonlyargs + args.args + args.kwonlyargs:
                    if self._is_set_annotation(arg.annotation):
                        names.setdefault(node, set()).add(arg.arg)
                continue
            if value is None or not self._is_setish(value, set(), set()):
                continue
            function, klass = self._enclosing_scope(source, node)
            for target in targets:
                if isinstance(target, ast.Name):
                    if function is None and klass is not None:
                        # Class-level annotation/assignment: an instance
                        # attribute (e.g. a dataclass field), not a name.
                        attrs.setdefault(klass, set()).add(target.id)
                    else:
                        names.setdefault(function, set()).add(target.id)
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attrs.setdefault(klass, set()).add(target.attr)
        return names, attrs

    def _is_setish(
        self, node: ast.expr, names: set[str], attrs: set[str]
    ) -> bool:
        """Whether *node* syntactically evaluates to a set."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if _call_name(node) in self._SET_CALLS:
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self._SET_METHODS
            ):
                return self._is_setish(node.func.value, names, attrs)
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, self._SET_OPS):
            return self._is_setish(node.left, names, attrs) or self._is_setish(
                node.right, names, attrs
            )
        if isinstance(node, ast.Name):
            return node.id in names
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr in attrs
        return False

    def _consumer_is_order_free(
        self, source: SourceFile, comp: ast.expr
    ) -> bool:
        """Whether the comprehension *comp* feeds an order-free consumer."""
        if isinstance(comp, ast.SetComp):
            return True
        if not isinstance(comp, ast.GeneratorExp):
            return False
        parent = source.parent_map().get(comp)
        if not isinstance(parent, ast.Call):
            return False
        name = _call_name(parent)
        if name not in self._ORDER_FREE_CALLS:
            return False
        return not (
            name in ("min", "max")
            and any(kw.arg == "key" for kw in parent.keywords)
        )

    def check(self, source: SourceFile) -> Iterator[Violation]:
        """Flag order-leaking iteration over set-like expressions."""
        names_by_scope, attrs_by_class = self._collect_set_names(source)
        for node in ast.walk(source.tree):
            iters: list[tuple[ast.expr, int, str]] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append((node.iter, node.lineno, "for loop"))
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                if self._consumer_is_order_free(source, node):
                    continue
                for gen in node.generators:
                    iters.append((gen.iter, node.lineno, "comprehension"))
            elif isinstance(node, ast.Call):
                name = _call_name(node)
                if name in ("list", "tuple", "enumerate", "next") and node.args:
                    iters.append((node.args[0], node.lineno, f"{name}()"))
                elif (
                    name in ("min", "max")
                    and node.args
                    and any(kw.arg == "key" for kw in node.keywords)
                ):
                    iters.append((node.args[0], node.lineno, f"keyed {name}()"))
            if not iters:
                continue
            function, klass = self._enclosing_scope(source, node)
            names = names_by_scope.get(function, set()) | names_by_scope.get(
                None, set()
            )
            attrs = attrs_by_class.get(klass, set())
            for candidate, line, context in iters:
                if self._is_setish(candidate, names, attrs):
                    yield source.violation(
                        self.code,
                        f"{context} iterates a set; wrap in sorted(...) or "
                        "prove the sink order-insensitive and suppress",
                        line,
                    )


class FrozenModelRule(ScopedRule):
    """RL005: service/link models and policies are frozen dataclasses.

    The engine replays workloads assuming model and policy objects it
    holds cannot drift between runs; a mutable field on a
    ``ServiceModel`` or a scheduling policy breaks bit-for-bit replay.
    Every subclass of the model/policy roots must therefore be declared
    ``@dataclass(frozen=True)``.
    """

    code = "RL005"
    name = "frozen-model"
    description = (
        "ServiceModel/LinkModel/QueuePolicy/ClosedLoopSource and "
        "advertisement/scheduling policy subclasses must be "
        "@dataclass(frozen=True)"
    )
    scope = ("src/repro", "tests/", "benchmarks/", "examples/")

    #: Nominal roots whose subclasses (and own definitions, for the
    #: model classes) must be frozen dataclasses.
    _MODEL_NAMES = frozenset(
        {"ServiceModel", "LinkModel", "QueuePolicy", "ClosedLoopSource"}
    )
    _BASE_NAMES = frozenset(
        {
            "ServiceModel",
            "BatchServiceModel",
            "LinkModel",
            "QueuePolicy",
            "ClosedLoopSource",
            "AdvertisementPolicy",
            "PerSubscriptionPolicy",
            "CommunityPolicy",
            "HybridPolicy",
            "SchedulingPolicy",
            "FifoScheduling",
            "PriorityScheduling",
            "DeadlineScheduling",
            "WeightedFairScheduling",
        }
    )

    def _base_name(self, base: ast.expr) -> str | None:
        """The (rightmost) name of one base-class expression."""
        if isinstance(base, ast.Name):
            return base.id
        if isinstance(base, ast.Attribute):
            return base.attr
        return None

    def _is_frozen_dataclass(self, node: ast.ClassDef) -> bool:
        """Whether the class carries ``@dataclass(frozen=True)``."""
        for decorator in node.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            name = (
                decorator.func.id
                if isinstance(decorator.func, ast.Name)
                else decorator.func.attr
                if isinstance(decorator.func, ast.Attribute)
                else None
            )
            if name != "dataclass":
                continue
            if any(
                keyword.arg == "frozen"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
                for keyword in decorator.keywords
            ):
                return True
        return False

    def check(self, source: SourceFile) -> Iterator[Violation]:
        """Flag model/policy classes that are not frozen dataclasses."""
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = {self._base_name(base) for base in node.bases}
            is_model_root = node.name in self._MODEL_NAMES and not (
                bases & self._BASE_NAMES
            )
            is_subclass = bool(bases & self._BASE_NAMES)
            if not (is_model_root or is_subclass):
                continue
            if not self._is_frozen_dataclass(node):
                yield source.violation(
                    self.code,
                    f"{node.name} must be @dataclass(frozen=True): mutable "
                    "model/policy state breaks engine replay determinism",
                    node.lineno,
                )


class EngineIsolationRule(ScopedRule):
    """RL006: broker-local step code never reaches into the engine.

    ``overlay.process_at`` / ``process_batch_at``, the trie and the
    routing table are the pure broker-local step shared by the
    synchronous walk and the event engine; the sync == async equivalence
    proof rests on them not observing engine state.  These modules must
    not import :mod:`repro.routing.engine` or name ``DeliveryEngine``.
    """

    code = "RL006"
    name = "engine-isolation"
    description = (
        "broker-local step modules (overlay/table/trie) must not import "
        "or reference the delivery engine"
    )
    scope = (
        "src/repro/routing/overlay.py",
        "src/repro/routing/table.py",
        "src/repro/routing/trie.py",
    )

    def check(self, source: SourceFile) -> Iterator[Violation]:
        """Flag engine imports and ``DeliveryEngine`` references."""
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.endswith("routing.engine"):
                        yield source.violation(
                            self.code,
                            "broker-local step code must not import the "
                            "delivery engine",
                            node.lineno,
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module.endswith("engine") and "routing" in (
                    module if "." in module else "routing"
                ):
                    yield source.violation(
                        self.code,
                        "broker-local step code must not import the "
                        "delivery engine",
                        node.lineno,
                    )
            elif isinstance(node, ast.Name) and node.id == "DeliveryEngine":
                yield source.violation(
                    self.code,
                    "broker-local step code must not reference "
                    "DeliveryEngine state",
                    node.lineno,
                )
            elif isinstance(node, ast.Attribute) and node.attr == "DeliveryEngine":
                yield source.violation(
                    self.code,
                    "broker-local step code must not reference "
                    "DeliveryEngine state",
                    node.lineno,
                )


class ExportConsistencyRule(ScopedRule):
    """RL007: package ``__init__`` re-exports and ``__all__`` agree.

    A name listed in ``__all__`` but never bound breaks
    ``from package import *`` and the public-API tests; a public name
    imported into the package namespace but missing from ``__all__`` is
    an accidental API.  Package ``__init__`` modules must keep the two
    in sync, with no duplicates.
    """

    code = "RL007"
    name = "export-consistency"
    description = (
        "package __init__ must declare __all__, every listed name must "
        "be bound, and every public re-export must be listed"
    )
    scope = ("src/repro",)

    def applies_to(self, relpath: str) -> bool:
        """Only package ``__init__`` modules are checked."""
        return super().applies_to(relpath) and relpath.endswith("__init__.py")

    def check(self, source: SourceFile) -> Iterator[Violation]:
        """Cross-check ``__all__`` against the module's bindings."""
        module = source.tree
        exported: list[tuple[str, int]] = []
        all_lineno: int | None = None
        bound: dict[str, int] = {}
        for node in module.body:
            if isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    bound[alias.asname or alias.name] = node.lineno
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound[(alias.asname or alias.name).split(".")[0]] = node.lineno
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound[node.name] = node.lineno
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if target.id == "__all__":
                            all_lineno = node.lineno
                            if isinstance(node.value, (ast.List, ast.Tuple)):
                                for element in node.value.elts:
                                    if isinstance(
                                        element, ast.Constant
                                    ) and isinstance(element.value, str):
                                        exported.append(
                                            (element.value, element.lineno)
                                        )
                        else:
                            bound[target.id] = node.lineno
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                bound[node.target.id] = node.lineno
        if all_lineno is None:
            yield source.violation(
                self.code, "package __init__ must declare __all__", 1
            )
            return
        seen: set[str] = set()
        for name, lineno in exported:
            if name in seen:
                yield source.violation(
                    self.code, f"duplicate __all__ entry {name!r}", lineno
                )
            seen.add(name)
            if name not in bound:
                yield source.violation(
                    self.code,
                    f"__all__ lists {name!r} but the module never binds it",
                    lineno,
                )
        for name, lineno in sorted(bound.items()):
            if name.startswith("_"):
                continue
            if name not in seen:
                yield source.violation(
                    self.code,
                    f"public re-export {name!r} is missing from __all__",
                    lineno,
                )


class DocstringRule(ScopedRule):
    """RL008: every public API carries a docstring.

    Public modules, classes, functions and methods are the reproduction's
    contract surface; an undocumented one is unreviewable.  Dunder
    methods are exempt (the language defines their contract), as are
    ``@overload`` stubs and property setters/deleters.
    """

    code = "RL008"
    name = "public-docstring"
    description = (
        "public modules, classes, functions and methods must carry a "
        "docstring"
    )
    scope = ("src/repro",)

    def _is_exempt(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        """Overload stubs and property setters/deleters are exempt."""
        for decorator in node.decorator_list:
            if isinstance(decorator, ast.Name) and decorator.id == "overload":
                return True
            if isinstance(decorator, ast.Attribute) and decorator.attr in (
                "setter",
                "deleter",
            ):
                return True
        return False

    def check(self, source: SourceFile) -> Iterator[Violation]:
        """Flag public definitions without docstrings."""
        if ast.get_docstring(source.tree) is None:
            yield source.violation(
                self.code, "module is missing a docstring", 1
            )
        parents = source.parent_map()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                if node.name.startswith("_"):
                    continue
                if ast.get_docstring(node) is None:
                    yield source.violation(
                        self.code,
                        f"public class {node.name} is missing a docstring",
                        node.lineno,
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("_"):
                    continue
                parent = parents.get(node)
                if isinstance(parent, ast.ClassDef) and parent.name.startswith(
                    "_"
                ):
                    continue
                if not isinstance(parent, (ast.Module, ast.ClassDef)):
                    continue  # nested helpers are not API surface
                if self._is_exempt(node):
                    continue
                if ast.get_docstring(node) is None:
                    kind = (
                        "method" if isinstance(parent, ast.ClassDef) else "function"
                    )
                    yield source.violation(
                        self.code,
                        f"public {kind} {node.name} is missing a docstring",
                        node.lineno,
                    )


def default_rules() -> Sequence[Rule]:
    """The standard reprolint rule set, in code order."""
    return (
        UnseededRandomRule(),
        WallClockRule(),
        ProcessHashRule(),
        UnorderedIterationRule(),
        FrozenModelRule(),
        EngineIsolationRule(),
        ExportConsistencyRule(),
        DocstringRule(),
    )
