"""The reprolint analysis engine: files, suppressions, reports.

The engine is deliberately boring: it walks Python files, parses each one
once, hands the parse to every applicable :class:`Rule`, and folds the
rule verdicts together with the file's suppression comments into an
:class:`AnalysisReport`.  All policy about *what* constitutes a violation
lives in the rules (:mod:`repro.analysis.rules`); all policy about *how*
violations are silenced, counted and serialised lives here — so a new
rule never needs to reimplement suppression or output handling.

Suppression syntax
------------------

A violation is silenced by a comment carrying the rule code **and a
written justification** (the ``--`` separator is mandatory)::

    value = time.perf_counter()  # reprolint: disable=RL002 -- harness timing only

A comment on its own line covers the next line, so multi-line statements
can be suppressed from above::

    # reprolint: disable=RL004 -- verdict is order-insensitive (set build)
    for item in pending_set:
        ...

A whole file opts out of a rule with ``disable-file``::

    # reprolint: disable-file=RL002 -- this module *measures* wall-clock

Suppressions are themselves checked: a suppression without a
justification raises :data:`CODE_BAD_SUPPRESSION` (and does not
suppress), and a suppression that never matched a violation raises
:data:`CODE_UNUSED_SUPPRESSION` — so stale pragmas cannot accumulate.

Exit-code contract (used by ``python -m repro.analysis`` and CI):

* ``0`` — no active violations (suppressed ones are fine);
* ``1`` — at least one active violation;
* ``2`` — the analysis itself failed (unreadable file, syntax error,
  unknown rule name).
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator, Protocol, Sequence

__all__ = [
    "CODE_BAD_SUPPRESSION",
    "CODE_UNUSED_SUPPRESSION",
    "AnalysisError",
    "AnalysisReport",
    "Rule",
    "SourceFile",
    "Suppression",
    "Violation",
    "iter_python_files",
    "render_json",
    "run_analysis",
]

#: Meta-code for a suppression comment missing its justification string.
CODE_BAD_SUPPRESSION = "RL100"

#: Meta-code for a suppression that silenced nothing.
CODE_UNUSED_SUPPRESSION = "RL101"

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable-file|disable)\s*=\s*"
    r"(?P<codes>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)"
    r"(?:\s*--\s*(?P<why>.*\S))?\s*$"
)


class AnalysisError(Exception):
    """The analysis itself could not run (exit code 2, not a finding)."""


@dataclass(frozen=True)
class Violation:
    """One finding: a rule, a location, and a human-readable message."""

    rule: str
    message: str
    path: str
    line: int
    suppressed: bool = False
    justification: str | None = None

    def to_json(self) -> dict[str, object]:
        """The JSON-serialisable form consumed by ``--format=json``."""
        payload: dict[str, object] = {
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "suppressed": self.suppressed,
        }
        if self.justification is not None:
            payload["justification"] = self.justification
        return payload

    @classmethod
    def from_json(cls, payload: dict[str, object]) -> "Violation":
        """Rebuild a violation from its :meth:`to_json` form."""
        return cls(
            rule=str(payload["rule"]),
            message=str(payload["message"]),
            path=str(payload["path"]),
            line=int(payload["line"]),  # type: ignore[arg-type]
            suppressed=bool(payload.get("suppressed", False)),
            justification=(
                None
                if payload.get("justification") is None
                else str(payload["justification"])
            ),
        )


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# reprolint: disable[-file]=...`` comment."""

    codes: tuple[str, ...]
    justification: str
    line: int
    file_level: bool
    #: Source lines this suppression covers (empty for file-level).
    covered_lines: tuple[int, ...] = ()

    def covers(self, code: str, line: int) -> bool:
        """Whether this suppression silences *code* reported at *line*."""
        if code not in self.codes:
            return False
        return self.file_level or line in self.covered_lines


class SourceFile:
    """One parsed Python file: text, AST, and suppression comments."""

    def __init__(self, path: Path, root: Path) -> None:
        self.path = path
        try:
            self.relpath = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            self.relpath = path.as_posix()
        try:
            self.text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise AnalysisError(f"{path}: unreadable: {exc}") from exc
        try:
            self.tree = ast.parse(self.text, filename=str(path))
        except SyntaxError as exc:
            raise AnalysisError(f"{path}:{exc.lineno}: syntax error: {exc.msg}") from exc
        self.lines = self.text.splitlines()
        self.suppressions, self.malformed = _parse_suppressions(self.text)
        self._parents: dict[ast.AST, ast.AST] | None = None

    def parent_map(self) -> dict[ast.AST, ast.AST]:
        """Child → parent links for the file's AST, built on first use."""
        if self._parents is None:
            self._parents = {
                child: parent
                for parent in ast.walk(self.tree)
                for child in ast.iter_child_nodes(parent)
            }
        return self._parents

    def violation(self, rule: str, message: str, line: int) -> Violation:
        """A violation of *rule* at *line* of this file."""
        return Violation(rule=rule, message=message, path=self.relpath, line=line)


def _parse_suppressions(
    text: str,
) -> tuple[list[Suppression], list[tuple[int, str]]]:
    """All reprolint comments in *text*, plus malformed ones.

    Returns ``(suppressions, malformed)`` where *malformed* holds
    ``(line, reason)`` pairs for pragmas without a justification.
    """
    suppressions: list[Suppression] = []
    malformed: list[tuple[int, str]] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return suppressions, malformed
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        if "reprolint:" not in token.string:
            continue
        match = _SUPPRESS_RE.search(token.string)
        row = token.start[0]
        if match is None:
            malformed.append((row, "malformed reprolint pragma"))
            continue
        codes = tuple(
            code.strip() for code in match.group("codes").split(",") if code.strip()
        )
        justification = (match.group("why") or "").strip()
        if not justification:
            malformed.append((row, "suppression is missing its justification"))
            continue
        file_level = match.group("kind") == "disable-file"
        own_line = token.line[: token.start[1]].strip() == ""
        covered = () if file_level else ((row, row + 1) if own_line else (row,))
        suppressions.append(
            Suppression(
                codes=codes,
                justification=justification,
                line=row,
                file_level=file_level,
                covered_lines=covered,
            )
        )
    return suppressions, malformed


class Rule(Protocol):
    """The pluggable rule contract reprolint drives.

    A rule owns a stable ``code`` (``"RL001"``), a short ``name``, a
    one-line ``description``, a path predicate :meth:`applies_to`, and a
    :meth:`check` generator producing :class:`Violation` instances for
    one parsed file.  Rules never see suppressions — the engine applies
    those uniformly afterwards.
    """

    code: str
    name: str
    description: str

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule runs on the file at repo-relative *relpath*."""
        ...

    def check(self, source: SourceFile) -> Iterator[Violation]:
        """Yield every violation of this rule found in *source*."""
        ...


@dataclass
class AnalysisReport:
    """The outcome of one reprolint run over a set of files."""

    violations: list[Violation] = field(default_factory=list)
    suppressed: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    rule_codes: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """True when no active violations remain."""
        return not self.violations

    def to_json(self) -> dict[str, object]:
        """The JSON-serialisable form consumed by ``--format=json``."""
        by_rule: dict[str, int] = {}
        for violation in self.violations:
            by_rule[violation.rule] = by_rule.get(violation.rule, 0) + 1
        return {
            "version": 1,
            "ok": self.ok,
            "files_checked": self.files_checked,
            "rules": list(self.rule_codes),
            "violations": [v.to_json() for v in self.violations],
            "suppressed": [v.to_json() for v in self.suppressed],
            "summary": {"total": len(self.violations), "by_rule": by_rule},
        }

    @classmethod
    def from_json(cls, payload: dict[str, object]) -> "AnalysisReport":
        """Rebuild a report from its :meth:`to_json` form."""
        return cls(
            violations=[
                Violation.from_json(entry)  # type: ignore[arg-type]
                for entry in payload.get("violations", [])  # type: ignore[union-attr]
            ],
            suppressed=[
                Violation.from_json(entry)  # type: ignore[arg-type]
                for entry in payload.get("suppressed", [])  # type: ignore[union-attr]
            ],
            files_checked=int(payload.get("files_checked", 0)),  # type: ignore[arg-type]
            rule_codes=tuple(payload.get("rules", ())),  # type: ignore[arg-type]
        )

    def render(self) -> str:
        """The human-readable report (one ``path:line: CODE message`` each)."""
        lines = [
            f"{v.path}:{v.line}: {v.rule} {v.message}" for v in self.violations
        ]
        lines.append(
            f"reprolint: {len(self.violations)} violation(s), "
            f"{len(self.suppressed)} suppressed, "
            f"{self.files_checked} file(s) checked"
        )
        return "\n".join(lines)


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Every ``*.py`` file under *paths*, sorted, skipping hidden dirs."""
    seen: set[Path] = set()
    for path in paths:
        if not path.exists():
            raise AnalysisError(f"{path}: no such file or directory")
        if path.is_file():
            candidates: Iterable[Path] = [path] if path.suffix == ".py" else []
        else:
            candidates = sorted(path.rglob("*.py"))
        for candidate in candidates:
            if any(
                part.startswith(".") or part == "__pycache__"
                for part in candidate.parts
            ):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def run_analysis(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    root: Path | None = None,
    check_unused: bool = True,
) -> AnalysisReport:
    """Run *rules* over every Python file under *paths*.

    *root* anchors the repo-relative paths rules scope on (defaults to
    the current directory).  With *check_unused* (the default), stale
    suppressions are reported as :data:`CODE_UNUSED_SUPPRESSION`
    violations; pass False when running a filtered rule subset, where a
    suppression for an unselected rule would look stale.
    """
    root = root or Path.cwd()
    report = AnalysisReport(rule_codes=tuple(rule.code for rule in rules))
    for path in iter_python_files(paths):
        source = SourceFile(path, root)
        report.files_checked += 1
        for line, reason in source.malformed:
            report.violations.append(
                source.violation(CODE_BAD_SUPPRESSION, reason, line)
            )
        used: set[int] = set()
        emitted: set[Violation] = set()
        for rule in rules:
            if not rule.applies_to(source.relpath):
                continue
            for violation in rule.check(source):
                if violation in emitted:
                    continue
                emitted.add(violation)
                match = next(
                    (
                        s
                        for s in source.suppressions
                        if s.covers(violation.rule, violation.line)
                    ),
                    None,
                )
                if match is None:
                    report.violations.append(violation)
                else:
                    used.add(match.line)
                    report.suppressed.append(
                        replace(
                            violation,
                            suppressed=True,
                            justification=match.justification,
                        )
                    )
        if check_unused:
            for suppression in source.suppressions:
                if suppression.line not in used:
                    report.violations.append(
                        source.violation(
                            CODE_UNUSED_SUPPRESSION,
                            "suppression silenced nothing: "
                            f"disable={','.join(suppression.codes)}",
                            suppression.line,
                        )
                    )
    report.violations.sort(key=lambda v: (v.path, v.line, v.rule))
    report.suppressed.sort(key=lambda v: (v.path, v.line, v.rule))
    return report


def render_json(report: AnalysisReport) -> str:
    """The report as deterministic, round-trippable JSON text."""
    return json.dumps(report.to_json(), indent=2, sort_keys=True)
