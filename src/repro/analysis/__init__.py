"""reprolint: the project's determinism/purity invariants as lint rules.

The reproduction's headline guarantees (sync walk == event engine,
trie == linear oracle, incremental churn == fresh rebuild, sharded
candidates bit-identical across workers) presuppose source-level
discipline — seeded randomness, no wall-clock reads, stable hashes,
ordered iteration, frozen models, engine-agnostic broker steps.  This
package checks that discipline mechanically::

    python -m repro.analysis src tests benchmarks examples

See :mod:`repro.analysis.engine` for the suppression syntax and the
exit-code contract, :mod:`repro.analysis.rules` for the rule catalogue,
and ``docs/static-analysis.md`` for the narrative documentation.
"""

from repro.analysis.engine import (
    CODE_BAD_SUPPRESSION,
    CODE_UNUSED_SUPPRESSION,
    AnalysisError,
    AnalysisReport,
    Rule,
    SourceFile,
    Suppression,
    Violation,
    iter_python_files,
    render_json,
    run_analysis,
)
from repro.analysis.rules import (
    DocstringRule,
    EngineIsolationRule,
    ExportConsistencyRule,
    FrozenModelRule,
    ProcessHashRule,
    UnorderedIterationRule,
    UnseededRandomRule,
    WallClockRule,
    default_rules,
)

__all__ = [
    "CODE_BAD_SUPPRESSION",
    "CODE_UNUSED_SUPPRESSION",
    "AnalysisError",
    "AnalysisReport",
    "Rule",
    "SourceFile",
    "Suppression",
    "Violation",
    "iter_python_files",
    "render_json",
    "run_analysis",
    "DocstringRule",
    "EngineIsolationRule",
    "ExportConsistencyRule",
    "FrozenModelRule",
    "ProcessHashRule",
    "UnorderedIterationRule",
    "UnseededRandomRule",
    "WallClockRule",
    "default_rules",
]
