"""DTD-driven random tree-pattern generation.

Reimplements the paper's custom XPath generator (Section 5.1): given a DTD,
it creates valid tree patterns controlled by

* ``height`` — maximum pattern height h [10];
* ``p_star`` — probability a node's tag is replaced by ``*`` [0.1];
* ``p_descendant`` — probability an edge becomes a ``//`` descendant edge
  [0.1];
* ``p_branch`` — probability of spawning an extra child at a node [0.1];
* ``theta`` — Zipf skew for choosing among candidate child tags [1].

Walks follow the DTD's child graph, so every generated pattern is
*DTD-consistent*: each tag appears in a context the DTD allows (which does
not imply any given document matches it — that split into positive/negative
workloads is the job of :mod:`repro.generators.workload`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.labels import DESCENDANT, WILDCARD
from repro.core.pattern import PatternNode, TreePattern
from repro.dtd.model import DTD
from repro.generators.zipf import zipf_choice

__all__ = ["PatternGenConfig", "PatternGenerator"]


@dataclass(frozen=True)
class PatternGenConfig:
    """Generator parameters; defaults are the paper's (Section 5.1)."""

    height: int = 10
    p_star: float = 0.1
    p_descendant: float = 0.1
    p_branch: float = 0.1
    theta: float = 1.0
    p_stop: float = 0.25       # chance of ending a walk early at each level
    max_branches: int = 3      # cap on children spawned at one node

    def __post_init__(self) -> None:
        if self.height < 1:
            raise ValueError("height must be at least 1")
        for field_name in ("p_star", "p_descendant", "p_branch", "p_stop"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be a probability")


class PatternGenerator:
    """Generates random DTD-consistent tree patterns.

    >>> from repro.dtd.builtin import nitf_dtd
    >>> gen = PatternGenerator(nitf_dtd(), seed=3)
    >>> pattern = gen.generate()
    >>> 1 <= pattern.height() <= 1 + 2 * gen.config.height
    True
    """

    def __init__(
        self,
        dtd: DTD,
        seed: int = 0,
        config: Optional[PatternGenConfig] = None,
    ):
        self.dtd = dtd
        self.config = config or PatternGenConfig()
        self._rng = random.Random(seed)
        self._child_graph = dtd.child_graph()

    def generate(self) -> TreePattern:
        """Generate one tree pattern rooted at the DTD's document element."""
        top = self._generate_node(self.dtd.root, self.config.height)
        if self._rng.random() < self.config.p_descendant:
            top = PatternNode(DESCENDANT, (top,))
        return TreePattern((top,))

    def generate_many(self, count: int, distinct: bool = True) -> list[TreePattern]:
        """Generate *count* patterns; with ``distinct=True`` duplicates are
        re-drawn (the paper's workloads are sets of distinct patterns)."""
        patterns: list[TreePattern] = []
        seen: set[TreePattern] = set()
        attempts = 0
        limit = max(count * 100, 1000)
        while len(patterns) < count:
            attempts += 1
            if attempts > limit:
                raise RuntimeError(
                    f"could not generate {count} distinct patterns "
                    f"(got {len(patterns)} after {attempts} attempts)"
                )
            pattern = self.generate()
            if distinct:
                if pattern in seen:
                    continue
                seen.add(pattern)
            patterns.append(pattern)
        return patterns

    def stream(self) -> Iterator[TreePattern]:
        """Endless stream of patterns."""
        while True:
            yield self.generate()

    # ------------------------------------------------------------------

    def _generate_node(self, element: str, height_left: int) -> PatternNode:
        config = self.config
        rng = self._rng
        label = WILDCARD if rng.random() < config.p_star else element

        candidates = list(self._child_graph.get(element, ()))
        children: list[PatternNode] = []
        if candidates and height_left > 1 and rng.random() >= config.p_stop:
            branch_count = 1
            while (
                branch_count < min(config.max_branches, len(candidates))
                and rng.random() < config.p_branch
            ):
                branch_count += 1
            chosen: list[str] = []
            remaining = list(candidates)
            for _ in range(branch_count):
                tag = zipf_choice(remaining, config.theta, rng)
                remaining.remove(tag)
                chosen.append(tag)
            for tag in chosen:
                descendant = rng.random() < config.p_descendant
                budget = height_left - 1 - (1 if descendant else 0)
                child = self._generate_node(tag, max(budget, 1))
                if descendant:
                    child = PatternNode(DESCENDANT, (child,))
                children.append(child)
        return PatternNode(label, tuple(children))
