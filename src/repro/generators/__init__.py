"""Workload substrate: Zipf sampling, DTD-driven document generation, and
tree-pattern workload generation (Section 5.1 of the paper)."""

from repro.generators.docgen import (
    DocumentGenerator,
    GeneratorConfig,
    generate_documents,
)
from repro.generators.querygen import PatternGenConfig, PatternGenerator
from repro.generators.workload import PatternWorkload, WorkloadBuilder
from repro.generators.zipf import ZipfSampler, zipf_choice

__all__ = [
    "ZipfSampler",
    "zipf_choice",
    "GeneratorConfig",
    "DocumentGenerator",
    "generate_documents",
    "PatternGenConfig",
    "PatternGenerator",
    "PatternWorkload",
    "WorkloadBuilder",
]
