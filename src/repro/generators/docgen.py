"""DTD-driven random XML document generation.

Stands in for IBM's *XML Generator* tool [13], which the paper used to
produce its data sets: 10,000 random documents per DTD, roughly 100 tag
pairs each, at most 10 levels deep, with tag names chosen uniformly wherever
the DTD leaves a choice.

Generation walks the DTD's content models:

* sequence particles emit their children in order;
* choice particles pick an alternative uniformly at random;
* ``?`` includes its particle with probability ``p_optional``;
* ``*``/``+`` repeat geometrically with continuation probability
  ``p_repeat`` (``+`` guarantees the first instance);
* expansion stops at ``max_depth`` levels and at ``max_nodes`` nodes, so
  recursive DTDs (NITF's enriched text, for instance) terminate.

With ``include_values=True``, elements with ``#PCDATA`` content receive a
leaf child drawn from a small per-element value vocabulary — the paper's
Figure 1 convention where ``"Mozart"`` is a node of the tree.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.dtd.model import DTD, Occurs, Particle
from repro.xmltree.tree import XMLTree, XMLTreeBuilder

__all__ = ["GeneratorConfig", "DocumentGenerator", "generate_documents"]


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the document generator (paper defaults in brackets)."""

    max_depth: int = 10          # levels per document [10]
    max_nodes: int = 400         # hard cap on document size
    p_optional: float = 0.5      # chance an optional particle is emitted
    p_repeat: float = 0.45       # geometric continuation for * / +
    max_repeats: int = 4         # cap on repetitions of one particle
    include_values: bool = False # emit #PCDATA value leaves
    values_per_element: int = 8  # vocabulary size per PCDATA element

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if not 0.0 <= self.p_optional <= 1.0:
            raise ValueError("p_optional must be a probability")
        if not 0.0 <= self.p_repeat < 1.0:
            raise ValueError("p_repeat must be in [0, 1)")


class DocumentGenerator:
    """Generates random documents valid for a DTD.

    >>> from repro.dtd.builtin import nitf_dtd
    >>> gen = DocumentGenerator(nitf_dtd(), seed=42)
    >>> doc = gen.generate()
    >>> doc.labels[0]
    'nitf'
    """

    def __init__(
        self,
        dtd: DTD,
        seed: int = 0,
        config: Optional[GeneratorConfig] = None,
    ):
        self.dtd = dtd
        self.config = config or GeneratorConfig()
        self._rng = random.Random(seed)
        self._node_budget = 0

    def generate(self, doc_id: int = -1) -> XMLTree:
        """Generate one document."""
        builder = XMLTreeBuilder()
        self._node_budget = self.config.max_nodes
        root = self._emit_element(builder, self.dtd.root, parent=-1, depth=1)
        assert root == 0
        return builder.build(doc_id=doc_id)

    def stream(self, count: int, start_id: int = 0) -> Iterator[XMLTree]:
        """Generate a stream of *count* documents with sequential ids."""
        for offset in range(count):
            yield self.generate(doc_id=start_id + offset)

    # ------------------------------------------------------------------

    def _emit_element(
        self, builder: XMLTreeBuilder, name: str, parent: int, depth: int
    ) -> int:
        self._node_budget -= 1
        index = builder.add(name, parent)
        element = self.dtd.element(name)
        if depth >= self.config.max_depth or self._node_budget <= 0:
            return index
        if element.content is not None:
            self._emit_particle(builder, element.content, index, depth)
        if (
            element.has_pcdata
            and self.config.include_values
            and self._node_budget > 0
        ):
            value = self._value_for(name)
            self._node_budget -= 1
            builder.add(value, index)
        return index

    def _emit_particle(
        self, builder: XMLTreeBuilder, particle: Particle, parent: int, depth: int
    ) -> None:
        for _ in range(self._occurrence_count(particle.occurs)):
            if self._node_budget <= 0:
                return
            if particle.kind == "element":
                assert particle.name is not None
                self._emit_element(builder, particle.name, parent, depth + 1)
            elif particle.kind == "seq":
                for child in particle.children:
                    self._emit_particle(builder, child, parent, depth)
            elif particle.kind == "choice":
                chosen = self._rng.choice(particle.children)
                self._emit_particle(builder, chosen, parent, depth)
            # 'pcdata' particles are handled at the element level

    def _occurrence_count(self, occurs: Occurs) -> int:
        rng = self._rng
        config = self.config
        if occurs == Occurs.ONE:
            return 1
        if occurs == Occurs.OPTIONAL:
            return 1 if rng.random() < config.p_optional else 0
        count = 1 if occurs == Occurs.PLUS else (
            1 if rng.random() < config.p_repeat else 0
        )
        while count and count < config.max_repeats and rng.random() < config.p_repeat:
            count += 1
        return count

    def _value_for(self, element_name: str) -> str:
        slot = self._rng.randrange(self.config.values_per_element)
        return f"{element_name}-v{slot}"


def generate_documents(
    dtd: DTD,
    count: int,
    seed: int = 0,
    config: Optional[GeneratorConfig] = None,
) -> list[XMLTree]:
    """Generate *count* documents with ids ``0 .. count-1``."""
    generator = DocumentGenerator(dtd, seed=seed, config=config)
    return list(generator.stream(count))
