"""Zipf-distributed sampling.

The paper's tree-pattern generator selects element tag names with a Zipf
distribution of skew θ (θ = 1 in the experiments): the k-th ranked candidate
is chosen with probability proportional to ``1 / k**θ``.  θ = 0 degrades to
the uniform distribution.
"""

from __future__ import annotations

import bisect
import random
from functools import lru_cache
from typing import Sequence, TypeVar

__all__ = ["ZipfSampler", "zipf_choice"]

T = TypeVar("T")


@lru_cache(maxsize=4096)
def _cumulative_weights(n: int, theta: float) -> tuple[float, ...]:
    """Cumulative Zipf distribution over ranks 0..n-1 (cached: generators
    re-sample the same candidate-list sizes constantly)."""
    weights = [1.0 / (rank + 1) ** theta for rank in range(n)]
    total = sum(weights)
    cumulative: list[float] = []
    running = 0.0
    for weight in weights:
        running += weight / total
        cumulative.append(running)
    cumulative[-1] = 1.0  # guard against float drift
    return tuple(cumulative)


class ZipfSampler:
    """Samples ranks ``0 .. n-1`` with probability ∝ ``1/(rank+1)**theta``.

    >>> sampler = ZipfSampler(4, theta=1.0, rng=random.Random(1))
    >>> all(0 <= sampler.sample() < 4 for _ in range(100))
    True
    """

    __slots__ = ("n", "theta", "_rng", "_cumulative")

    def __init__(self, n: int, theta: float = 1.0, rng: random.Random | None = None):
        if n < 1:
            raise ValueError("need at least one rank")
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self.n = n
        self.theta = theta
        # No ambient randomness: a sampler constructed without an rng is
        # deterministic, not OS-seeded, so every workload is replayable.
        self._rng = rng if rng is not None else random.Random(0)
        self._cumulative = _cumulative_weights(n, theta)

    def sample(self) -> int:
        """Draw one rank."""
        return bisect.bisect_left(self._cumulative, self._rng.random())

    def probability(self, rank: int) -> float:
        """Probability mass of *rank*."""
        if not 0 <= rank < self.n:
            raise IndexError(rank)
        previous = self._cumulative[rank - 1] if rank else 0.0
        return self._cumulative[rank] - previous


def zipf_choice(items: Sequence[T], theta: float, rng: random.Random) -> T:
    """Choose one of *items* Zipf-skewed toward the front of the sequence."""
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    if len(items) == 1:
        return items[0]
    cumulative = _cumulative_weights(len(items), theta)
    return items[bisect.bisect_left(cumulative, rng.random())]
