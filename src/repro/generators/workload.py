"""Positive / negative pattern workload construction (Section 5.1).

For each DTD the paper builds two pattern sets over the document corpus D:

* ``SP`` — 1,000 distinct *positive* patterns, each matching at least one
  document of D;
* ``SN`` — 1,000 distinct *negative* patterns matching no document of D.

Both come from the same DTD-driven generator; this module classifies
generated patterns against the exact corpus and, when the generator's
natural negative rate is too low to fill ``SN``, derives extra negatives by
re-rooting a positive pattern's tag into a DTD context where it cannot occur
(the mutated pattern is still checked against the corpus before admission).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.core.pattern import PatternNode, TreePattern
from repro.dtd.model import DTD
from repro.generators.querygen import PatternGenConfig, PatternGenerator
from repro.xmltree.corpus import DocumentCorpus

__all__ = ["PatternWorkload", "WorkloadBuilder"]


@dataclass
class PatternWorkload:
    """The classified pattern sets plus bookkeeping about their creation."""

    positive: list[TreePattern] = field(default_factory=list)
    negative: list[TreePattern] = field(default_factory=list)
    generated: int = 0
    mutated_negatives: int = 0

    def __repr__(self) -> str:
        return (
            f"PatternWorkload(positive={len(self.positive)}, "
            f"negative={len(self.negative)}, generated={self.generated})"
        )


class WorkloadBuilder:
    """Builds ``SP``/``SN`` workloads for a corpus.

    >>> # builder = WorkloadBuilder(dtd, corpus, seed=1)
    >>> # workload = builder.build(n_positive=100, n_negative=100)
    """

    def __init__(
        self,
        dtd: DTD,
        corpus: DocumentCorpus,
        seed: int = 0,
        config: Optional[PatternGenConfig] = None,
    ):
        self.dtd = dtd
        self.corpus = corpus
        self.config = config or PatternGenConfig()
        self._rng = random.Random(seed)
        self._generator = PatternGenerator(dtd, seed=seed, config=self.config)

    def build(
        self,
        n_positive: int,
        n_negative: int,
        max_attempts_factor: int = 200,
    ) -> PatternWorkload:
        """Generate patterns until both sets are filled.

        Natural generation runs first; if ``SN`` is still short after the
        attempt budget, the remainder is synthesised by mutation.
        """
        workload = PatternWorkload()
        seen: set[TreePattern] = set()
        attempts_budget = max_attempts_factor * (n_positive + n_negative)

        while (
            len(workload.positive) < n_positive
            or len(workload.negative) < n_negative
        ) and workload.generated < attempts_budget:
            pattern = self._generator.generate()
            workload.generated += 1
            if pattern in seen:
                continue
            seen.add(pattern)
            if self.corpus.match_count(pattern) > 0:
                if len(workload.positive) < n_positive:
                    workload.positive.append(pattern)
            elif len(workload.negative) < n_negative:
                workload.negative.append(pattern)

        while len(workload.negative) < n_negative:
            mutated = self._mutate_to_negative(workload, seen)
            if mutated is None:
                raise RuntimeError(
                    f"could not complete the negative workload: "
                    f"{len(workload.negative)}/{n_negative} found"
                )
            seen.add(mutated)
            workload.negative.append(mutated)
            workload.mutated_negatives += 1

        if len(workload.positive) < n_positive:
            raise RuntimeError(
                f"could not complete the positive workload: "
                f"{len(workload.positive)}/{n_positive} found "
                f"after {workload.generated} attempts"
            )
        return workload

    # ------------------------------------------------------------------

    def _mutate_to_negative(
        self, workload: PatternWorkload, seen: set[TreePattern]
    ) -> Optional[TreePattern]:
        """Derive a negative pattern by grafting a foreign element name into
        a freshly generated pattern, then verifying it matches nothing."""
        element_names = sorted(self.dtd.elements)
        for _ in range(2000):
            base = self._generator.generate()
            leaves = _leaf_positions(base)
            if not leaves:
                continue
            target = self._rng.choice(leaves)
            foreign = self._rng.choice(element_names)
            mutated = _replace_leaf(base, target, foreign)
            if mutated in seen:
                continue
            if self.corpus.match_count(mutated) == 0:
                return mutated
        return None


def _leaf_positions(pattern: TreePattern) -> list[tuple[int, ...]]:
    """Tree positions (child-index paths) of all leaf nodes."""
    positions: list[tuple[int, ...]] = []

    def walk(node: PatternNode, position: tuple[int, ...]) -> None:
        if not node.children:
            positions.append(position)
            return
        for index, child in enumerate(node.children):
            walk(child, position + (index,))

    for index, child in enumerate(pattern.root_children):
        walk(child, (index,))
    return positions


def _replace_leaf(
    pattern: TreePattern, position: tuple[int, ...], new_label: str
) -> TreePattern:
    """Rebuild *pattern* with the leaf at *position* relabeled."""

    def rebuild(node: PatternNode, position: tuple[int, ...]) -> PatternNode:
        if not position:
            return PatternNode(new_label, node.children)
        index = position[0]
        children = list(node.children)
        children[index] = rebuild(children[index], position[1:])
        return PatternNode(node.label, tuple(children))

    top_index = position[0]
    children = list(pattern.root_children)
    children[top_index] = rebuild(children[top_index], position[1:])
    return TreePattern(tuple(children))
