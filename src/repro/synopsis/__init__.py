"""The document-stream synopsis: matching-set summaries, pruning, and
compression (Section 3 of the paper)."""

from repro.synopsis.compression import (
    CompressionReport,
    compress_to_ratio,
    compress_to_size,
)
from repro.synopsis.counters import CounterSummary
from repro.synopsis.hashes import DistinctHasher, HashSample
from repro.synopsis.node import LabelTree, SynopsisNode
from repro.synopsis.pruning import (
    delete_low_cardinality,
    fold_leaves,
    merge_same_label,
    node_pair_similarity,
)
from repro.synopsis.reservoir import DocumentReservoir, ReservoirDecision
from repro.synopsis.serialize import (
    dump_synopsis,
    load_synopsis,
    synopsis_from_dict,
    synopsis_to_dict,
)
from repro.synopsis.setops import SampleView, intersect_views, union_views
from repro.synopsis.size import SynopsisSize, measure
from repro.synopsis.synopsis import MODES, DocumentSynopsis
from repro.synopsis.windowed import WindowedEstimator, WindowedSynopsis

__all__ = [
    "DocumentSynopsis",
    "MODES",
    "LabelTree",
    "SynopsisNode",
    "CounterSummary",
    "DistinctHasher",
    "HashSample",
    "DocumentReservoir",
    "ReservoirDecision",
    "SampleView",
    "union_views",
    "intersect_views",
    "fold_leaves",
    "delete_low_cardinality",
    "merge_same_label",
    "node_pair_similarity",
    "CompressionReport",
    "compress_to_ratio",
    "compress_to_size",
    "synopsis_to_dict",
    "synopsis_from_dict",
    "dump_synopsis",
    "load_synopsis",
    "SynopsisSize",
    "measure",
    "WindowedSynopsis",
    "WindowedEstimator",
]
