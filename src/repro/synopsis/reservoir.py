"""Document-level reservoir sampling (Vitter, 1985) — the "Sets" scheme.

Section 3.2's second representation admits whole documents into the synopsis
with probability ``min(1, s/k)`` for the k-th stream document; when the
reservoir is full, a uniformly random resident document is evicted and its
identifier removed *from every synopsis node*.  The result is that the
synopsis always reflects a uniform random sample of ``s`` documents from the
stream prefix.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

__all__ = ["ReservoirDecision", "DocumentReservoir"]


@dataclass(frozen=True)
class ReservoirDecision:
    """Outcome of offering one document to the reservoir."""

    admitted: bool
    evicted: Optional[int] = None


class DocumentReservoir:
    """Classic reservoir sampler over the document-id stream.

    >>> res = DocumentReservoir(size=2, rng=random.Random(0))
    >>> decisions = [res.offer(i) for i in range(10)]
    >>> len(res.members()) == 2
    True
    """

    __slots__ = ("size", "_rng", "_seen", "_members")

    def __init__(self, size: int, rng: Optional[random.Random] = None):
        if size < 1:
            raise ValueError("reservoir size must be positive")
        self.size = size
        # No ambient randomness: a reservoir constructed without an rng
        # samples deterministically, so synopses rebuild bit-identically.
        self._rng = rng if rng is not None else random.Random(0)
        self._seen = 0
        self._members: list[int] = []

    def offer(self, doc_id: int) -> ReservoirDecision:
        """Offer *doc_id* (the next stream document) to the reservoir.

        Returns whether it was admitted and, if admission required evicting a
        resident document, which one — the caller must then purge the evicted
        id from all synopsis matching sets.
        """
        self._seen += 1
        if len(self._members) < self.size:
            self._members.append(doc_id)
            return ReservoirDecision(admitted=True)
        # Admit with probability size/k by choosing a uniform slot in [0, k).
        slot = self._rng.randrange(self._seen)
        if slot < self.size:
            evicted = self._members[slot]
            self._members[slot] = doc_id
            return ReservoirDecision(admitted=True, evicted=evicted)
        return ReservoirDecision(admitted=False)

    def members(self) -> list[int]:
        """Current resident document ids (order is internal)."""
        return list(self._members)

    @property
    def seen(self) -> int:
        """How many documents have been offered so far."""
        return self._seen

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._members

    def __len__(self) -> int:
        return len(self._members)
