"""Counter matching-set summaries (the Chan et al. VLDB'02 baseline).

In counter mode every synopsis node keeps the exact number of documents that
contain its root-to-node label path.  Counters are maintained along *every*
node of each inserted skeleton path (deduplicated per document), so a node's
counter already equals its full matching-set cardinality and no freeze pass
is needed.

What counters cannot do is capture cross-path correlations: ``SEL`` in
counter mode replaces set union/intersection/cardinality by max / scaled
product / value, i.e. it assumes branch independence — the failure mode the
paper illustrates with ``a[b][d]`` (true selectivity 0, estimated 1/4) and
``a[c/f][c/o]`` (true 1/3, estimated 1/9) on the Figure 2 data.
"""

from __future__ import annotations

__all__ = ["CounterSummary"]


class CounterSummary:
    """A document counter; one per synopsis node in counter mode."""

    __slots__ = ("count",)

    def __init__(self, count: int = 0):
        self.count = count

    def increment(self, by: int = 1) -> None:
        """Count *by* additional documents."""
        self.count += by

    def merge_max(self, other: "CounterSummary") -> None:
        """Counter analogue of sample union (used by node merges)."""
        self.count = max(self.count, other.count)

    def merge_min(self, other: "CounterSummary") -> None:
        """Counter analogue of sample intersection."""
        self.count = min(self.count, other.count)

    def copy(self) -> "CounterSummary":
        """An independent copy of this summary."""
        return CounterSummary(self.count)

    def __repr__(self) -> str:
        return f"CounterSummary({self.count})"
