"""Distinct sampling of document identifiers (Gibbons, VLDB'01).

The "Hashes" matching-set representation keeps, at each synopsis node, a
bounded-size *distinct sample* of the document ids hitting the node.  A
shared hash function maps every id to a geometric *level*::

    Prob[ level(x) >= l ] = 2**-l

A sample at level ``l`` contains exactly the inserted ids with
``level(x) >= l``; when it outgrows its capacity the level is bumped and the
sample sub-sampled, halving it in expectation.  Because **every sample in the
synopsis shares one hash function**, any two samples can be aligned to a
common level and then combined with *exact* set operations — the key property
the set-expression estimators of Ganguly et al. (SIGMOD'03) rely on, and what
lets ``SEL`` evaluate arbitrary union/intersection trees over them.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["DistinctHasher", "HashSample"]

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def _splitmix64(x: int) -> int:
    """One round of the splitmix64 mixer; a cheap, well-distributed 64-bit
    permutation (public domain constants from Steele et al.)."""
    x = (x + _GOLDEN) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class DistinctHasher:
    """Seeded level function shared by all samples of one synopsis."""

    __slots__ = ("seed", "_cache")

    #: Levels are capped so 2**level stays a sane float; with 64 hash bits
    #: the cap is unreachable in practice.
    MAX_LEVEL = 64

    def __init__(self, seed: int = 0):
        self.seed = seed & _MASK64
        self._cache: dict[int, int] = {}

    def level_of(self, x: int) -> int:
        """Geometric level of id *x*: trailing zero bits of its hash.

        The id is mixed *before* the seed is combined: document ids are
        contiguous integers, and xor-ing a raw contiguous range with the
        seed would merely permute it, giving every seed the same level
        profile.
        """
        cached = self._cache.get(x)
        if cached is not None:
            return cached
        h = _splitmix64(_splitmix64(x & _MASK64) ^ self.seed)
        if h == 0:
            level = self.MAX_LEVEL
        else:
            level = (h & -h).bit_length() - 1
        self._cache[x] = level
        return level

    def filter_to_level(self, ids: Iterable[int], level: int) -> frozenset[int]:
        """Ids from *ids* whose level is at least *level*."""
        if level <= 0:
            return frozenset(ids)
        level_of = self.level_of
        return frozenset(x for x in ids if level_of(x) >= level)


class HashSample:
    """A bounded distinct sample: ``(level, {ids with level(x) >= level})``.

    >>> hasher = DistinctHasher(seed=7)
    >>> sample = HashSample(hasher, capacity=4)
    >>> for doc in range(100):
    ...     sample.insert(doc)
    >>> len(sample) <= 4
    True
    >>> 0 < sample.estimate_cardinality()
    True
    """

    __slots__ = ("hasher", "capacity", "level", "ids")

    def __init__(self, hasher: DistinctHasher, capacity: int):
        if capacity < 1:
            raise ValueError("hash-sample capacity must be positive")
        self.hasher = hasher
        self.capacity = capacity
        self.level = 0
        self.ids: set[int] = set()

    def __len__(self) -> int:
        return len(self.ids)

    def __iter__(self) -> Iterator[int]:
        return iter(self.ids)

    def __contains__(self, x: int) -> bool:
        return x in self.ids

    def insert(self, x: int) -> None:
        """Offer id *x* to the sample."""
        if self.hasher.level_of(x) >= self.level:
            self.ids.add(x)
            self._shrink_to_capacity()

    def discard(self, x: int) -> None:
        """Remove id *x* if present (used by document-level eviction)."""
        self.ids.discard(x)

    def _shrink_to_capacity(self) -> None:
        while len(self.ids) > self.capacity:
            self.level += 1
            level_of = self.hasher.level_of
            threshold = self.level
            self.ids = {x for x in self.ids if level_of(x) >= threshold}

    def subsample_to(self, level: int) -> None:
        """Raise this sample's level to *level* (no-op if already there)."""
        if level > self.level:
            self.level = level
            level_of = self.hasher.level_of
            self.ids = {x for x in self.ids if level_of(x) >= level}

    def estimate_cardinality(self) -> float:
        """Unbiased estimate of the number of distinct ids inserted."""
        return len(self.ids) * float(2**self.level)

    def union_in_place(self, other: "HashSample") -> None:
        """Merge *other* into this sample (Section 3.2's union: align to the
        max level, union the id sets, sub-sample if over budget)."""
        target = max(self.level, other.level)
        self.subsample_to(target)
        level_of = self.hasher.level_of
        for x in other.ids:
            if level_of(x) >= self.level:
                self.ids.add(x)
        self._shrink_to_capacity()

    def intersect_in_place(self, other: "HashSample") -> None:
        """Replace contents by the aligned intersection with *other* (used by
        the same-label merge pruning, which intersects the merged samples)."""
        target = max(self.level, other.level)
        self.subsample_to(target)
        other_ids = other.ids
        if target > other.level:
            other_ids = {
                x for x in other_ids if self.hasher.level_of(x) >= target
            }
        self.ids &= other_ids

    def copy(self) -> "HashSample":
        """Deep copy sharing the hasher."""
        duplicate = HashSample(self.hasher, self.capacity)
        duplicate.level = self.level
        duplicate.ids = set(self.ids)
        return duplicate
