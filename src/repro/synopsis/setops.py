"""Set-expression evaluation over matching-set samples.

``SEL`` (Algorithm 1) combines matching sets with unions and intersections
and finally takes a cardinality.  During evaluation we represent every
intermediate result as an immutable :class:`SampleView` — a ``(level, ids)``
pair under the synopsis's shared :class:`~repro.synopsis.hashes.DistinctHasher`.

Because all stored samples share one hash function, aligning two views to
``level = max(l1, l2)`` and applying the *exact* set operation yields a
coherent distinct sample of the true set expression, whose cardinality is
estimated as ``|ids| * 2**level`` (Ganguly, Garofalakis, Rastogi —
SIGMOD'03).  Explicit sets ("Sets" mode) are the degenerate case ``level=0``,
for which every estimate is exact over the sampled documents.
"""

from __future__ import annotations

from functools import reduce
from typing import Iterable, Optional, Sequence

from repro.synopsis.hashes import DistinctHasher, HashSample

__all__ = ["SampleView", "union_views", "intersect_views"]


class SampleView:
    """Immutable view of a distinct sample at some level.

    ``hasher`` may be ``None`` for level-0 explicit sets; operations between
    views of one synopsis always share the hasher (or its absence).
    """

    __slots__ = ("level", "ids", "hasher")

    def __init__(
        self,
        ids: frozenset[int],
        level: int = 0,
        hasher: Optional[DistinctHasher] = None,
    ):
        if level > 0 and hasher is None:
            raise ValueError("a leveled view needs a hasher for re-alignment")
        self.ids = ids
        self.level = level
        self.hasher = hasher

    # -- constructors -------------------------------------------------------

    @classmethod
    def empty(cls, hasher: Optional[DistinctHasher] = None) -> "SampleView":
        """The empty view (level 0 — the identity for union alignment)."""
        return cls(frozenset(), 0, hasher)

    @classmethod
    def of_set(cls, ids: Iterable[int]) -> "SampleView":
        """Exact (level-0) view of an explicit id collection."""
        return cls(frozenset(ids), 0, None)

    @classmethod
    def of_hash_sample(cls, sample: HashSample) -> "SampleView":
        """View of a stored hash sample."""
        return cls(frozenset(sample.ids), sample.level, sample.hasher)

    # -- alignment ----------------------------------------------------------

    def at_level(self, level: int) -> frozenset[int]:
        """This view's ids sub-sampled to *level* (>= own level)."""
        if level == self.level or not self.ids:
            return self.ids
        if level < self.level:
            raise ValueError("cannot lower a sample's level")
        assert self.hasher is not None
        return self.hasher.filter_to_level(self.ids, level)

    def _hasher_for(self, other: "SampleView") -> Optional[DistinctHasher]:
        return self.hasher or other.hasher

    # -- operations ---------------------------------------------------------

    def union(self, other: "SampleView") -> "SampleView":
        """Aligned union of two views."""
        level = max(self.level, other.level)
        return SampleView(
            self.at_level(level) | other.at_level(level),
            level,
            self._hasher_for(other),
        )

    def intersect(self, other: "SampleView") -> "SampleView":
        """Aligned intersection of two views."""
        level = max(self.level, other.level)
        return SampleView(
            self.at_level(level) & other.at_level(level),
            level,
            self._hasher_for(other),
        )

    def estimate_cardinality(self) -> float:
        """Estimated cardinality of the underlying set: ``|ids| * 2**level``."""
        return len(self.ids) * float(2**self.level)

    def jaccard(self, other: "SampleView") -> float:
        """Estimated Jaccard similarity ``|A∩B| / |A∪B|``; 1.0 when both
        views are empty (identical empty sets — used by pruning scores)."""
        level = max(self.level, other.level)
        mine = self.at_level(level)
        theirs = other.at_level(level)
        union_size = len(mine | theirs)
        if union_size == 0:
            return 1.0
        return len(mine & theirs) / union_size

    def is_empty(self) -> bool:
        """True when no sampled ids remain (the estimate is then 0)."""
        return not self.ids

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SampleView):
            return NotImplemented
        return self.level == other.level and self.ids == other.ids

    def __hash__(self) -> int:
        return hash((self.level, self.ids))

    def __repr__(self) -> str:
        return f"SampleView(level={self.level}, n={len(self.ids)})"


def union_views(views: Sequence[SampleView]) -> SampleView:
    """Union of many views; the empty union is the empty view."""
    if not views:
        return SampleView.empty()
    return reduce(SampleView.union, views)


def intersect_views(views: Sequence[SampleView]) -> SampleView:
    """Intersection of many views; requires at least one operand."""
    if not views:
        raise ValueError("intersection of zero views is undefined")
    return reduce(SampleView.intersect, views)
