"""Synopsis nodes and (possibly nested) node labels.

A freshly-built synopsis is a tree whose nodes carry plain tag labels.  Two
pruning operations complicate this:

* **folding** (Section 3.3) replaces a parent-leaf pair by a single node with
  a *nested* label such as ``c[f][o[n]]`` — represented here by a
  :class:`LabelTree`;
* **merging** same-label nodes turns the tree into a DAG — so nodes track a
  list of parents, not a single one.
"""

from __future__ import annotations

from typing import Iterator, Optional

__all__ = ["LabelTree", "SynopsisNode"]


class LabelTree:
    """An immutable tree of tag atoms: a plain label has no children, a
    folded label nests the labels of folded-away descendants."""

    __slots__ = ("tag", "children")

    def __init__(self, tag: str, children: tuple["LabelTree", ...] = ()):
        object.__setattr__(self, "tag", tag)
        object.__setattr__(self, "children", tuple(children))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("LabelTree is immutable")

    def atoms(self) -> int:
        """Number of tag atoms (used by the size accounting of Section 5.1:
        each atom occupies one label slot)."""
        return 1 + sum(child.atoms() for child in self.children)

    def iter_atoms(self) -> Iterator[str]:
        """Yield every tag atom, pre-order."""
        yield self.tag
        for child in self.children:
            yield from child.iter_atoms()

    def with_folded(self, folded: "LabelTree") -> "LabelTree":
        """Return this label with *folded* appended as a nested component."""
        return LabelTree(self.tag, self.children + (folded,))

    def render(self) -> str:
        """Human-readable nested form, e.g. ``c[f][o[n]]`` (Figure 3)."""
        if not self.children:
            return self.tag
        return self.tag + "".join(f"[{c.render()}]" for c in self.children)

    def _key(self) -> tuple:
        return (self.tag, tuple(sorted(c._key() for c in self.children)))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabelTree):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return f"LabelTree({self.render()!r})"


class SynopsisNode:
    """One node of the document synopsis.

    ``summary`` is the node's *stored* matching-set summary — a counter, an
    explicit id set, or a distinct-sampling hash sample, depending on the
    synopsis mode.  The *full* matching set of a node (the union over its
    descendants, Section 3.2) is computed and cached by the synopsis's
    freeze pass, not stored here.
    """

    __slots__ = ("node_id", "label", "children", "parents", "summary")

    def __init__(self, node_id: int, label: LabelTree, summary):
        self.node_id = node_id
        self.label = label
        self.children: list["SynopsisNode"] = []
        self.parents: list["SynopsisNode"] = []
        self.summary = summary

    @property
    def tag(self) -> str:
        """Root tag atom of the (possibly nested) label."""
        return self.label.tag

    @property
    def is_leaf(self) -> bool:
        """True when the node has no synopsis children.

        A folded node with nested label components is still a leaf for
        structural purposes; its nested components are *virtual* children
        expanded only during selectivity evaluation.
        """
        return not self.children

    def child_by_tag(self, tag: str) -> Optional["SynopsisNode"]:
        """First child whose root tag atom equals *tag*, if any."""
        for child in self.children:
            if child.label.tag == tag:
                return child
        return None

    def add_child(self, child: "SynopsisNode") -> None:
        """Link *child* below this node (DAG-aware: appends, never replaces)."""
        if child not in self.children:
            self.children.append(child)
        if self not in child.parents:
            child.parents.append(self)

    def remove_child(self, child: "SynopsisNode") -> None:
        """Unlink *child* from this node."""
        self.children.remove(child)
        child.parents.remove(self)

    def __repr__(self) -> str:
        return (
            f"SynopsisNode(id={self.node_id}, label={self.label.render()!r}, "
            f"children={len(self.children)})"
        )
