"""Synopsis persistence.

A broker restarting should not have to replay the document stream to
rebuild its synopsis; this module round-trips a
:class:`~repro.synopsis.synopsis.DocumentSynopsis` — including folded
labels, DAG structure after merges, and every matching-set representation —
through a plain-JSON-compatible dict.

The format is versioned and self-describing::

    {"format": "repro-synopsis", "version": 1, "mode": "hashes", ...}
"""

from __future__ import annotations

import json
from typing import Any

from repro.synopsis.counters import CounterSummary
from repro.synopsis.hashes import HashSample
from repro.synopsis.node import LabelTree, SynopsisNode
from repro.synopsis.synopsis import DocumentSynopsis

__all__ = ["synopsis_to_dict", "synopsis_from_dict", "dump_synopsis", "load_synopsis"]

FORMAT_NAME = "repro-synopsis"
FORMAT_VERSION = 1


def _label_to_list(label: LabelTree) -> list:
    return [label.tag, [_label_to_list(child) for child in label.children]]


def _label_from_list(data: list) -> LabelTree:
    tag, children = data
    return LabelTree(tag, tuple(_label_from_list(child) for child in children))


def _summary_to_jsonable(synopsis: DocumentSynopsis, node: SynopsisNode) -> Any:
    if synopsis.mode == "counters":
        return node.summary.count
    if synopsis.mode == "sets":
        return sorted(node.summary)
    return {"level": node.summary.level, "ids": sorted(node.summary.ids)}


def synopsis_to_dict(synopsis: DocumentSynopsis) -> dict:
    """Serialise *synopsis* to a JSON-compatible dict."""
    nodes = []
    id_order: list[int] = []
    for node in synopsis.iter_nodes():
        id_order.append(node.node_id)
        nodes.append(
            {
                "id": node.node_id,
                "label": _label_to_list(node.label),
                "children": [child.node_id for child in node.children],
                "summary": _summary_to_jsonable(synopsis, node),
            }
        )
    payload = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "mode": synopsis.mode,
        "capacity": synopsis.capacity,
        "seed": synopsis.seed,
        "n_documents": synopsis.n_documents,
        "next_doc_id": synopsis._next_doc_id,
        "pruned": synopsis._pruned,
        "root_id": synopsis.root.node_id,
        "nodes": nodes,
    }
    if synopsis.reservoir is not None:
        # Residents cannot be reconstructed from the summaries: pruning may
        # have deleted a resident document's last stored occurrence.
        payload["reservoir_members"] = sorted(synopsis.reservoir.members())
    return payload


def synopsis_from_dict(data: dict) -> DocumentSynopsis:
    """Rebuild a synopsis from :func:`synopsis_to_dict` output."""
    if data.get("format") != FORMAT_NAME:
        raise ValueError("not a serialised repro synopsis")
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported synopsis format version {data.get('version')}")

    synopsis = DocumentSynopsis(
        mode=data["mode"], capacity=data["capacity"], seed=data["seed"]
    )
    synopsis.n_documents = data["n_documents"]
    synopsis._next_doc_id = data["next_doc_id"]

    # Recreate all nodes first, then wire edges (the graph may be a DAG).
    nodes_by_id: dict[int, SynopsisNode] = {}
    max_id = 0
    for entry in data["nodes"]:
        label = _label_from_list(entry["label"])
        node = SynopsisNode(entry["id"], label, None)
        node.summary = _summary_from_jsonable(synopsis, entry["summary"])
        nodes_by_id[entry["id"]] = node
        max_id = max(max_id, entry["id"])
    synopsis._next_node_id = max_id + 1

    for entry in data["nodes"]:
        node = nodes_by_id[entry["id"]]
        for child_id in entry["children"]:
            node.add_child(nodes_by_id[child_id])

    synopsis.root = nodes_by_id[data["root_id"]]
    if data["pruned"]:
        synopsis.mark_pruned()
    else:
        # Rebuild the sets-mode document index for cheap eviction, and the
        # reservoir's resident list.
        if synopsis.mode == "sets":
            index: dict[int, list[SynopsisNode]] = {}
            for node in synopsis.iter_nodes():
                for doc_id in node.summary:
                    index.setdefault(doc_id, []).append(node)
            synopsis._doc_index = index
    if synopsis.mode == "sets":
        assert synopsis.reservoir is not None
        synopsis.reservoir._members = list(data["reservoir_members"])
        synopsis.reservoir._seen = data["n_documents"]
    return synopsis


def _summary_from_jsonable(synopsis: DocumentSynopsis, data: Any):
    if synopsis.mode == "counters":
        return CounterSummary(int(data))
    if synopsis.mode == "sets":
        return set(data)
    assert synopsis.hasher is not None
    sample = HashSample(synopsis.hasher, synopsis.capacity)
    sample.level = int(data["level"])
    sample.ids = set(data["ids"])
    return sample


def dump_synopsis(synopsis: DocumentSynopsis, path: str) -> None:
    """Write *synopsis* to a JSON file."""
    with open(path, "w") as handle:
        json.dump(synopsis_to_dict(synopsis), handle)


def load_synopsis(path: str) -> DocumentSynopsis:
    """Read a synopsis from a JSON file."""
    with open(path) as handle:
        return synopsis_from_dict(json.load(handle))
