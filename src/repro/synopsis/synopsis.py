"""The document synopsis ``HS`` (Section 3).

A synopsis summarises the streaming document history as a rooted label
structure — a tree while only insertions have occurred, a DAG once pruning
has merged nodes.  Each node corresponds to a root-originating label path of
the stream's skeleton trees and carries a matching-set summary in one of
three representations:

* ``"counters"`` — exact per-node document counts (baseline of [4]);
* ``"sets"``     — explicit id sets over a document-level reservoir sample;
* ``"hashes"``   — per-node bounded distinct samples under a shared hash.

Insertion follows Section 3.1: for each root-to-leaf path of the incoming
document's skeleton tree, walk/extend the synopsis and record the document id
at the path's final node (counters instead increment every node on the path,
once per document).  The *full* matching set of a node — needed by ``SEL`` —
is the union of stored summaries over its descendants and is computed by a
memoised freeze pass, invalidated by further updates.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional

from repro.core.labels import ROOT_LABEL
from repro.synopsis.counters import CounterSummary
from repro.synopsis.hashes import DistinctHasher, HashSample
from repro.synopsis.node import LabelTree, SynopsisNode
from repro.synopsis.reservoir import DocumentReservoir
from repro.synopsis.setops import SampleView
from repro.xmltree.skeleton import skeleton_paths
from repro.xmltree.tree import XMLTree

__all__ = ["DocumentSynopsis", "MODES"]

MODES = ("counters", "sets", "hashes")


class DocumentSynopsis:
    """Incrementally-maintained summary of an XML document stream.

    Parameters
    ----------
    mode:
        Matching-set representation: ``"counters"``, ``"sets"`` or
        ``"hashes"``.
    capacity:
        Per-node maximum hash-sample size (``"hashes"``), or the global
        reservoir size in documents (``"sets"``).  Ignored by counters.
    seed:
        Seeds the shared distinct-sampling hash and the reservoir RNG,
        making synopsis contents reproducible.
    """

    def __init__(self, mode: str = "hashes", capacity: int = 1000, seed: int = 0):
        if mode not in MODES:
            raise ValueError(f"unknown synopsis mode {mode!r}; pick one of {MODES}")
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.mode = mode
        self.capacity = capacity
        self.seed = seed
        self.hasher: Optional[DistinctHasher] = (
            DistinctHasher(seed) if mode == "hashes" else None
        )
        self.reservoir: Optional[DocumentReservoir] = (
            DocumentReservoir(capacity, random.Random(seed)) if mode == "sets" else None
        )
        self._next_node_id = 0
        self._next_doc_id = 0
        self.root = self._new_node(ROOT_LABEL)
        self.n_documents = 0  # documents offered to the synopsis
        self._doc_index: dict[int, list[SynopsisNode]] = {}
        self._pruned = False
        self._full_cache: Optional[dict[int, SampleView]] = None

    # ------------------------------------------------------------------
    # node management
    # ------------------------------------------------------------------

    def _new_summary(self):
        if self.mode == "counters":
            return CounterSummary()
        if self.mode == "sets":
            return set()
        assert self.hasher is not None
        return HashSample(self.hasher, self.capacity)

    def _new_node(self, tag: str) -> SynopsisNode:
        node = SynopsisNode(self._next_node_id, LabelTree(tag), self._new_summary())
        self._next_node_id += 1
        return node

    def iter_nodes(self) -> Iterator[SynopsisNode]:
        """Yield every node reachable from the root exactly once (DAG-safe)."""
        seen: set[int] = set()
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.node_id in seen:
                continue
            seen.add(node.node_id)
            yield node
            stack.extend(node.children)

    @property
    def n_nodes(self) -> int:
        """Number of synopsis nodes, including the root."""
        return sum(1 for _ in self.iter_nodes())

    # ------------------------------------------------------------------
    # insertion (Section 3.1)
    # ------------------------------------------------------------------

    def insert_document(self, tree: XMLTree) -> int:
        """Insert one streamed document; returns the document id used.

        Ids are taken from ``tree.doc_id`` when set (callers streaming a
        corpus should pre-assign unique ids), else allocated sequentially.
        """
        doc_id = tree.doc_id if tree.doc_id >= 0 else self._next_doc_id
        self._next_doc_id = max(self._next_doc_id, doc_id + 1)
        self.insert_paths(doc_id, skeleton_paths(tree))
        return doc_id

    def insert_paths(self, doc_id: int, paths: Iterator[tuple[str, ...]]) -> None:
        """Insert a document given its skeleton root-to-leaf label paths."""
        self.n_documents += 1
        self._full_cache = None

        if self.mode == "sets":
            assert self.reservoir is not None
            decision = self.reservoir.offer(doc_id)
            if decision.evicted is not None:
                self._purge_document(decision.evicted)
            if not decision.admitted:
                return

        touched: set[int] = set()
        touched_nodes: list[SynopsisNode] = []
        final_nodes: list[SynopsisNode] = []
        for path in paths:
            node = self.root
            if node.node_id not in touched:
                touched.add(node.node_id)
                touched_nodes.append(node)
            index = 0
            while index < len(path):
                tag = path[index]
                child = node.child_by_tag(tag)
                if child is None:
                    if self._folded_component(node, tag) is not None:
                        # The remainder of this path was folded into `node`
                        # by compression; record the document here.
                        break
                    child = self._new_node(tag)
                    node.add_child(child)
                node = child
                if node.node_id not in touched:
                    touched.add(node.node_id)
                    touched_nodes.append(node)
                index += 1
            final_nodes.append(node)

        if self.mode == "counters":
            for node in touched_nodes:
                node.summary.increment()
        elif self.mode == "sets":
            recorded: list[SynopsisNode] = []
            for node in final_nodes:
                if doc_id not in node.summary:
                    node.summary.add(doc_id)
                    recorded.append(node)
            self._doc_index[doc_id] = recorded
        else:
            for node in final_nodes:
                node.summary.insert(doc_id)

    @staticmethod
    def _folded_component(node: SynopsisNode, tag: str) -> Optional[LabelTree]:
        for component in node.label.children:
            if component.tag == tag:
                return component
        return None

    def _purge_document(self, doc_id: int) -> None:
        """Remove an evicted document id from all matching sets (sets mode)."""
        if not self._pruned and doc_id in self._doc_index:
            for node in self._doc_index.pop(doc_id):
                node.summary.discard(doc_id)
            return
        self._doc_index.pop(doc_id, None)
        # Folding may have moved ids into the root's stored summary, so the
        # root is scanned too.
        for node in self.iter_nodes():
            node.summary.discard(doc_id)

    # ------------------------------------------------------------------
    # full matching sets (freeze pass)
    # ------------------------------------------------------------------

    def stored_view(self, node: SynopsisNode) -> SampleView:
        """View of the node's *stored* summary (sets/hashes modes)."""
        if self.mode == "sets":
            return SampleView.of_set(node.summary)
        if self.mode == "hashes":
            return SampleView.of_hash_sample(node.summary)
        raise TypeError("counter summaries have no sample view")

    def full_view(self, node: SynopsisNode) -> SampleView:
        """Full matching-set sample of *node*: the union of stored samples
        over the node and all its descendants (memoised; Section 3.2)."""
        if self.mode == "counters":
            raise TypeError("counter mode exposes full_count, not full_view")
        if self._full_cache is None:
            self._full_cache = {}
        cache = self._full_cache
        order: list[SynopsisNode] = []
        seen: set[int] = set()

        def collect(current: SynopsisNode) -> None:
            if current.node_id in seen or current.node_id in cache:
                return
            seen.add(current.node_id)
            for child in current.children:
                collect(child)
            order.append(current)

        collect(node)
        for current in order:
            view = self.stored_view(current)
            for child in current.children:
                view = view.union(cache[child.node_id])
            cache[current.node_id] = view
        return cache[node.node_id]

    def full_count(self, node: SynopsisNode) -> float:
        """Full matching-set cardinality (exact for counters, estimated
        otherwise)."""
        if self.mode == "counters":
            return float(node.summary.count)
        return self.full_view(node).estimate_cardinality()

    def invalidate(self) -> None:
        """Drop memoised full views (pruning operations call this)."""
        self._full_cache = None

    @property
    def represented_documents(self) -> float:
        """(Estimated) number of documents represented by the synopsis —
        the denominator ``|S(rs)|`` of Algorithm 2."""
        if self.mode == "counters":
            return float(self.root.summary.count)
        if self.mode == "sets":
            assert self.reservoir is not None
            return float(len(self.reservoir))
        return self.full_view(self.root).estimate_cardinality()

    # ------------------------------------------------------------------
    # mutation hooks used by pruning (Section 3.3)
    # ------------------------------------------------------------------

    def mark_pruned(self) -> None:
        """Record that structural pruning has happened; document-id purge
        falls back to a full scan from now on."""
        self._pruned = True
        self.invalidate()

    def summary_union_into(self, target: SynopsisNode, source: SynopsisNode) -> None:
        """Union *source*'s stored summary into *target*'s (fold operation)."""
        if self.mode == "counters":
            target.summary.merge_max(source.summary)
        elif self.mode == "sets":
            target.summary |= source.summary
        else:
            target.summary.union_in_place(source.summary)

    def summary_intersection(self, first: SynopsisNode, second: SynopsisNode):
        """New stored summary equal to the intersection of the nodes' *full*
        matching sets (merge operation keeps the inclusion property)."""
        if self.mode == "counters":
            return CounterSummary(min(first.summary.count, second.summary.count))
        full_first = self.full_view(first)
        full_second = self.full_view(second)
        intersection = full_first.intersect(full_second)
        if self.mode == "sets":
            return set(intersection.ids)
        assert self.hasher is not None
        sample = HashSample(self.hasher, self.capacity)
        sample.level = intersection.level
        sample.ids = set(intersection.ids)
        sample._shrink_to_capacity()
        return sample

    def entry_count(self, node: SynopsisNode) -> int:
        """Number of stored entries at *node* (size accounting)."""
        if self.mode == "counters":
            return 1
        return len(node.summary)

    def __repr__(self) -> str:
        return (
            f"DocumentSynopsis(mode={self.mode!r}, nodes={self.n_nodes}, "
            f"documents={self.n_documents})"
        )
