"""Synopsis pruning operators (Section 3.3).

Three operations shrink a synopsis while trying to minimise the precision
lost by selectivity estimation:

* :func:`fold_leaves` — fold a leaf into its parent(s) when their matching
  sets are similar, nesting the leaf's label (``c[f]``) and unioning the
  summaries.  A fold with similarity 1.0 is lossless.
* :func:`delete_low_cardinality` — drop leaves whose matching sets are small
  and therefore contribute little to any estimate.
* :func:`merge_same_label` — merge two same-label nodes with similar matching
  sets; the merged node keeps the *intersection* of the samples (preserving
  the parent-child inclusion property) and inherits both parent lists, which
  turns the synopsis into a DAG.

Similarity between matching sets is the estimated Jaccard ratio
``|S(t) ∩ S(t')| / |S(t) ∪ S(t')|`` computed on full-sample views; in counter
mode the ratio of the smaller to the larger count is used instead (counts
cannot see correlation, only magnitude).

All operators score candidates against the full-view cache taken at the start
of the pass, apply their mutations greedily in decreasing-score order, and
invalidate the cache at the end.
"""

from __future__ import annotations

from typing import Optional

from repro.synopsis.node import SynopsisNode
from repro.synopsis.synopsis import DocumentSynopsis

__all__ = [
    "fold_leaves",
    "delete_low_cardinality",
    "merge_same_label",
    "node_pair_similarity",
]


def node_pair_similarity(
    synopsis: DocumentSynopsis, first: SynopsisNode, second: SynopsisNode
) -> float:
    """Estimated matching-set similarity of two synopsis nodes in [0, 1]."""
    if synopsis.mode == "counters":
        counts = sorted((first.summary.count, second.summary.count))
        if counts[1] == 0:
            return 1.0
        return counts[0] / counts[1]
    return synopsis.full_view(first).jaccard(synopsis.full_view(second))


def _fold_score(synopsis: DocumentSynopsis, leaf: SynopsisNode) -> float:
    """Average similarity of *leaf* to its parents (multi-parent leaves are
    folded into all parents, scored by the mean ratio, as in the paper)."""
    if not leaf.parents:
        return -1.0
    total = 0.0
    for parent in leaf.parents:
        total += node_pair_similarity(synopsis, leaf, parent)
    return total / len(leaf.parents)


def fold_leaves(
    synopsis: DocumentSynopsis,
    min_similarity: float = 0.0,
    max_folds: Optional[int] = None,
    lossless_only: bool = False,
) -> int:
    """One folding pass; returns the number of leaves folded.

    Candidates are scored once against the pass-start full views, then folded
    greedily in decreasing-score order.  Folding a leaf into its parents does
    not change any node's *full* matching set (the parent's full set already
    contained the leaf's), so scores remain valid throughout the pass.
    """
    threshold = 1.0 if lossless_only else min_similarity
    candidates = [
        (node, _fold_score(synopsis, node))
        for node in synopsis.iter_nodes()
        if node.is_leaf and node is not synopsis.root
    ]
    candidates = [(n, s) for n, s in candidates if s >= threshold]
    candidates.sort(key=lambda pair: (-pair[1], pair[0].node_id))

    folds = 0
    for leaf, _score in candidates:
        if max_folds is not None and folds >= max_folds:
            break
        if not leaf.is_leaf or not leaf.parents:
            continue  # became non-leaf/detached earlier in the pass
        for parent in list(leaf.parents):
            parent.label = parent.label.with_folded(leaf.label)
            synopsis.summary_union_into(parent, leaf)
            parent.remove_child(leaf)
        folds += 1
    if folds:
        synopsis.mark_pruned()
    return folds


def delete_low_cardinality(
    synopsis: DocumentSynopsis,
    max_deletions: int,
    max_cardinality: Optional[float] = None,
) -> int:
    """Delete up to *max_deletions* leaves in increasing matching-set size.

    Only leaves whose (estimated) full cardinality is at most
    *max_cardinality* are eligible when the bound is given.  Deleting a leaf
    can expose its parent as a new leaf; repeated passes prune whole
    subtrees, as Figure 3 illustrates.
    """
    candidates = [
        (node, synopsis.full_count(node))
        for node in synopsis.iter_nodes()
        if node.is_leaf and node is not synopsis.root
    ]
    if max_cardinality is not None:
        candidates = [(n, c) for n, c in candidates if c <= max_cardinality]
    candidates.sort(key=lambda pair: (pair[1], pair[0].node_id))

    deletions = 0
    for leaf, _count in candidates[:max_deletions]:
        for parent in list(leaf.parents):
            parent.remove_child(leaf)
        deletions += 1
    if deletions:
        synopsis.mark_pruned()
    return deletions


def _children_ids(node: SynopsisNode) -> frozenset[int]:
    return frozenset(child.node_id for child in node.children)


# Same-label groups larger than this are compared only between
# cardinality-neighbours instead of all-pairs, keeping passes near-linear.
_PAIR_GROUP_LIMIT = 40


def _candidate_merge_pairs(
    synopsis: DocumentSynopsis,
) -> list[tuple[float, SynopsisNode, SynopsisNode]]:
    groups: dict[tuple, list[SynopsisNode]] = {}
    for node in synopsis.iter_nodes():
        if node is synopsis.root:
            continue
        if node.is_leaf:
            key = ("leaf", node.label)
        else:
            key = ("inner", node.label, _children_ids(node))
        groups.setdefault(key, []).append(node)

    pairs: list[tuple[float, SynopsisNode, SynopsisNode]] = []
    for members in groups.values():
        if len(members) < 2:
            continue
        members.sort(key=lambda n: (synopsis.full_count(n), n.node_id))
        if len(members) <= _PAIR_GROUP_LIMIT:
            for i, first in enumerate(members):
                for second in members[i + 1 :]:
                    score = node_pair_similarity(synopsis, first, second)
                    pairs.append((score, first, second))
        else:
            for first, second in zip(members, members[1:], strict=False):
                score = node_pair_similarity(synopsis, first, second)
                pairs.append((score, first, second))
    return pairs


def merge_same_label(
    synopsis: DocumentSynopsis,
    min_similarity: float = 0.0,
    max_merges: Optional[int] = None,
) -> int:
    """One merging pass; returns the number of node pairs merged.

    Eligible pairs are same-label leaves, or same-label inner nodes with
    identical children sets ("their children have already been merged").
    Greedy in decreasing similarity; each node participates in at most one
    merge per pass.  The survivor's stored summary becomes the intersection
    of the pair's full samples and it inherits both parent lists (DAG).
    """
    pairs = _candidate_merge_pairs(synopsis)
    pairs = [(s, a, b) for s, a, b in pairs if s >= min_similarity]
    pairs.sort(key=lambda item: (-item[0], item[1].node_id, item[2].node_id))

    consumed: set[int] = set()
    merges = 0
    for _score, first, second in pairs:
        if max_merges is not None and merges >= max_merges:
            break
        if first.node_id in consumed or second.node_id in consumed:
            continue
        if second.node_id < first.node_id:
            first, second = second, first
        _merge_pair(synopsis, first, second)
        consumed.add(first.node_id)
        consumed.add(second.node_id)
        merges += 1
    if merges:
        synopsis.mark_pruned()
    return merges


def _merge_pair(
    synopsis: DocumentSynopsis, survivor: SynopsisNode, victim: SynopsisNode
) -> None:
    """Merge *victim* into *survivor*."""
    survivor.summary = synopsis.summary_intersection(survivor, victim)
    for parent in list(victim.parents):
        parent.remove_child(victim)
        parent.add_child(survivor)
    for child in list(victim.children):
        victim.remove_child(child)
