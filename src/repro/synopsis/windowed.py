"""Sliding-window synopsis maintenance.

The base synopsis summarises the *entire* document history; on an infinite,
drifting stream (the paper's setting is "a possibly infinite stream of XML
documents") one usually wants estimates over recent history only.  Counters
and hash samples cannot delete individual documents, so the standard
generational scheme is used:

* documents are inserted into an **active** generation synopsis;
* every ``window // 2`` documents the active generation is rotated into the
  **frozen** slot and a fresh active generation starts;
* estimates combine the frozen and active generations, so at any time they
  cover between ``window/2`` and ``window`` of the most recent documents —
  never anything older than ``window``.

This trades a 2× space factor for O(1) expiry, the usual deal for
non-decomposable stream summaries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.synopsis.synopsis import DocumentSynopsis
from repro.xmltree.tree import XMLTree

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.core.pattern import TreePattern

__all__ = ["WindowedSynopsis", "WindowedEstimator"]


class WindowedSynopsis:
    """Two-generation sliding-window wrapper around
    :class:`DocumentSynopsis`.

    >>> windowed = WindowedSynopsis(window=100, mode="hashes", capacity=32)
    >>> # windowed.insert_document(tree); WindowedEstimator(windowed)...
    """

    def __init__(
        self,
        window: int,
        mode: str = "hashes",
        capacity: int = 1000,
        seed: int = 0,
    ):
        if window < 2:
            raise ValueError("window must cover at least two documents")
        self.window = window
        self.mode = mode
        self.capacity = capacity
        self.seed = seed
        self._generation = 0
        self.active = self._new_generation()
        self.frozen: Optional[DocumentSynopsis] = None

    def _new_generation(self) -> DocumentSynopsis:
        self._generation += 1
        return DocumentSynopsis(
            mode=self.mode,
            capacity=self.capacity,
            # Distinct hash seeds per generation keep samples independent.
            seed=self.seed + self._generation,
        )

    @property
    def half_window(self) -> int:
        """Documents per generation (the rotation period)."""
        return self.window // 2

    def insert_document(self, tree: XMLTree) -> int:
        """Insert a document, rotating generations when the active one is
        half-window full."""
        doc_id = self.active.insert_document(tree)
        if self.active.n_documents >= self.half_window:
            self.frozen = self.active
            self.active = self._new_generation()
        return doc_id

    @property
    def covered_documents(self) -> int:
        """How many recent documents current estimates reflect."""
        total = self.active.n_documents
        if self.frozen is not None:
            total += self.frozen.n_documents
        return total

    def generations(self) -> list[DocumentSynopsis]:
        """The synopses contributing to estimates (frozen first)."""
        result = []
        if self.frozen is not None:
            result.append(self.frozen)
        if self.active.n_documents > 0 or not result:
            result.append(self.active)
        return result


class WindowedEstimator:
    """Selectivity/similarity provider over a :class:`WindowedSynopsis`.

    Estimates are document-count-weighted averages over the generations:
    ``P(p) = Σ_g P_g(p) · N_g / Σ_g N_g``.
    """

    def __init__(self, windowed: WindowedSynopsis):
        self.windowed = windowed

    def _combine(self, pattern: "TreePattern") -> float:
        # Local import: repro.core.selectivity itself imports this package.
        from repro.core.selectivity import SelectivityEstimator

        total_docs = 0
        weighted = 0.0
        for generation in self.windowed.generations():
            if generation.n_documents == 0:
                continue
            estimator = SelectivityEstimator(generation)
            weighted += (
                estimator.selectivity(pattern) * generation.n_documents
            )
            total_docs += generation.n_documents
        if total_docs == 0:
            return 0.0
        return weighted / total_docs

    def selectivity(self, pattern: "TreePattern") -> float:
        """Estimated ``P(p)`` over the current window."""
        return self._combine(pattern)

    def joint_selectivity(self, p: "TreePattern", q: "TreePattern") -> float:
        """Estimated ``P(p ∧ q)`` over the current window."""
        from repro.core.pattern_algebra import merge_patterns

        return self._combine(merge_patterns(p, q))
