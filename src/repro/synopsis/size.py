"""Synopsis size accounting (Section 5.1).

The paper measures ``|HS|`` as the sum of the number of nodes, the number of
edges, the number of labels, and the total number of entries of all matching
sets, each assumed to fit in one 32-bit integer.  Folded nodes contribute one
label slot per nested tag atom, which is why folding is not free — it trades
matching-set entries for label atoms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.synopsis.synopsis import DocumentSynopsis

__all__ = ["SynopsisSize", "measure"]


@dataclass(frozen=True)
class SynopsisSize:
    """Breakdown of a synopsis's size in 32-bit words."""

    nodes: int
    edges: int
    label_atoms: int
    entries: int

    @property
    def total(self) -> int:
        """``|HS|`` — the paper's size measure."""
        return self.nodes + self.edges + self.label_atoms + self.entries

    @property
    def approx_bytes(self) -> int:
        """Four bytes per 32-bit word, as in the paper's 600 kB example."""
        return 4 * self.total

    def __str__(self) -> str:
        return (
            f"|HS|={self.total} (nodes={self.nodes}, edges={self.edges}, "
            f"labels={self.label_atoms}, entries={self.entries})"
        )


def measure(synopsis: DocumentSynopsis) -> SynopsisSize:
    """Measure ``|HS|`` for *synopsis*."""
    nodes = 0
    edges = 0
    label_atoms = 0
    entries = 0
    for node in synopsis.iter_nodes():
        nodes += 1
        edges += len(node.children)
        label_atoms += node.label.atoms()
        entries += synopsis.entry_count(node)
    return SynopsisSize(nodes=nodes, edges=edges, label_atoms=label_atoms, entries=entries)
