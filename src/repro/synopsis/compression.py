"""Compression driver: shrink a synopsis to a target size ratio α.

Section 5.2 fixes the order in which the pruning operators are applied —
"first, folding leaf nodes with the same matching set as their parents
(lossless compression); then, folding and deleting low-cardinality nodes;
finally, merging same-label nodes" — and reports that this ordering gave the
best overall results.  :func:`compress_to_ratio` follows it: after the
lossless folds it alternates lossy folds (with a decaying similarity
threshold), small batches of low-cardinality deletions, and same-label
merges, until ``|HcS| <= α · |HS|`` or no operator makes progress.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.synopsis.pruning import delete_low_cardinality, fold_leaves, merge_same_label
from repro.synopsis.size import SynopsisSize, measure
from repro.synopsis.synopsis import DocumentSynopsis

__all__ = ["CompressionReport", "compress_to_ratio", "compress_to_size"]


@dataclass
class CompressionReport:
    """What a compression run did to the synopsis."""

    initial: SynopsisSize
    final: SynopsisSize
    target_total: int
    folds: int = 0
    deletions: int = 0
    merges: int = 0
    rounds: int = 0
    threshold_floor: float = 0.0
    notes: list[str] = field(default_factory=list)

    @property
    def achieved_ratio(self) -> float:
        """``α = |HcS| / |HS|`` actually reached."""
        if self.initial.total == 0:
            return 1.0
        return self.final.total / self.initial.total

    @property
    def reached_target(self) -> bool:
        """True when the requested budget was met."""
        return self.final.total <= self.target_total

    def __str__(self) -> str:
        return (
            f"compressed {self.initial.total} -> {self.final.total} words "
            f"(alpha={self.achieved_ratio:.3f}) in {self.rounds} rounds: "
            f"{self.folds} folds, {self.deletions} deletions, {self.merges} merges"
        )


# Threshold schedule for the lossy phases: each round relaxes the similarity
# requirement for folds/merges, so cheap (high-similarity) compressions are
# exhausted before damaging ones are attempted.
_THRESHOLD_SCHEDULE = (0.95, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.0)


def compress_to_ratio(
    synopsis: DocumentSynopsis,
    alpha: float,
    deletion_batch_fraction: float = 0.05,
) -> CompressionReport:
    """Compress *synopsis* in place until ``|HcS| / |HS| <= alpha``.

    ``alpha=1.0`` applies only the lossless folds.  Returns a report with the
    achieved ratio; the target may be unreachable for tiny synopses (a root
    plus a handful of nodes cannot shrink arbitrarily), in which case
    ``report.reached_target`` is False.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError("alpha must be in (0, 1]")
    initial = measure(synopsis)
    return compress_to_size(
        synopsis,
        target_total=int(initial.total * alpha),
        deletion_batch_fraction=deletion_batch_fraction,
        _initial=initial,
    )


def compress_to_size(
    synopsis: DocumentSynopsis,
    target_total: int,
    deletion_batch_fraction: float = 0.05,
    _initial: SynopsisSize | None = None,
) -> CompressionReport:
    """Compress *synopsis* in place until ``|HcS| <= target_total`` words."""
    initial = _initial or measure(synopsis)
    report = CompressionReport(
        initial=initial, final=initial, target_total=target_total
    )

    # Phase 1 — lossless folds (identical parent/child matching sets).
    report.folds += fold_leaves(synopsis, lossless_only=True)
    current = measure(synopsis)

    # Phase 2/3 — lossy folds + deletions, then merges, relaxing thresholds.
    for threshold in _THRESHOLD_SCHEDULE:
        report.threshold_floor = threshold
        while current.total > target_total:
            report.rounds += 1
            progressed = 0

            folded = fold_leaves(synopsis, min_similarity=threshold)
            report.folds += folded
            progressed += folded

            batch = max(1, int(synopsis.n_nodes * deletion_batch_fraction))
            deleted = delete_low_cardinality(synopsis, max_deletions=batch)
            report.deletions += deleted
            progressed += deleted

            merged = merge_same_label(synopsis, min_similarity=threshold)
            report.merges += merged
            progressed += merged

            current = measure(synopsis)
            if not progressed:
                break
        if current.total <= target_total:
            break

    if current.total > target_total:
        report.notes.append(
            f"target {target_total} unreachable; stopped at {current.total}"
        )
    report.final = current
    synopsis.invalidate()
    return report
