"""Per-figure experiment runners (Section 5.2).

Each ``figure*`` function regenerates the data behind one figure of the
paper, as x/y series per curve, using reduced or full scale depending on the
configs passed in.  The mapping is:

* :func:`figure4`  — Erel of positive queries vs max hash/set size;
* :func:`figure5`  — log10(Esqr) of negative queries vs max size;
* :func:`figure6`  — Erel vs total synopsis size |HS| (xCBL in the paper);
* :func:`figure7`  — Erel of M1 vs max size;
* :func:`figure8`  — Erel of M2 vs max size;
* :func:`figure9`  — Erel of M3 vs max size;
* :func:`figure10` — Erel and Esqr vs compression ratio α (Hashes);
* :func:`setup_summary` — the Section 5.1 workload statistics and the
  realised Table 1 parameters.

Counters do not depend on the swept size, so their curve is the constant
line the paper plots.  Series whose error is identically zero on negative
workloads are dropped from Figure 5, mirroring the paper's footnote about
Sets/Hashes on xCBL.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import (
    EvaluationResult,
    PreparedExperiment,
    evaluate,
    prepare,
)

__all__ = [
    "Series",
    "FigureResult",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "setup_summary",
    "ALL_FIGURES",
]

MODES = ("counters", "sets", "hashes")


@dataclass
class Series:
    """One curve of a figure."""

    label: str
    xs: list[float] = field(default_factory=list)
    ys: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one data point to the curve."""
        self.xs.append(x)
        self.ys.append(y)


@dataclass
class FigureResult:
    """All curves of one regenerated figure."""

    figure_id: str
    title: str
    xlabel: str
    ylabel: str
    series: list[Series] = field(default_factory=list)

    def series_by_label(self, label: str) -> Series:
        """The curve named *label* (KeyError if absent)."""
        for candidate in self.series:
            if candidate.label == label:
                return candidate
        raise KeyError(label)

    @property
    def labels(self) -> list[str]:
        """Curve labels in figure order."""
        return [series.label for series in self.series]


def _default_configs(
    configs: Optional[Sequence[ExperimentConfig]],
) -> list[ExperimentConfig]:
    if configs is not None:
        return list(configs)
    return [ExperimentConfig.quick("nitf"), ExperimentConfig.quick("xcbl")]


def _sweep(
    prepared: PreparedExperiment, mode: str
) -> list[tuple[int, EvaluationResult]]:
    """Evaluate *mode* across the configured size sweep.

    Counter summaries have no size knob: one evaluation is reused for every
    swept x, reproducing the paper's flat Counters curves.
    """
    config = prepared.config
    if mode == "counters":
        result = evaluate(prepared, "counters", 1)
        return [(size, result) for size in config.sizes]
    return [(size, evaluate(prepared, mode, size)) for size in config.sizes]


def _size_sweep_figure(
    figure_id: str,
    title: str,
    ylabel: str,
    configs: Optional[Sequence[ExperimentConfig]],
    y_of,
    drop_all_zero: bool = False,
) -> FigureResult:
    figure = FigureResult(
        figure_id=figure_id,
        title=title,
        xlabel="Maximal size of hashes/sets",
        ylabel=ylabel,
    )
    for config in _default_configs(configs):
        prepared = prepare(config)
        for mode in MODES:
            series = Series(label=f"{mode.capitalize()} - {config.dtd_name.upper()}")
            for size, result in _sweep(prepared, mode):
                y = y_of(result)
                if y is None:
                    continue
                series.add(size, y)
            if drop_all_zero and not series.ys:
                continue
            figure.series.append(series)
    return figure


def figure4(
    configs: Optional[Sequence[ExperimentConfig]] = None,
) -> FigureResult:
    """Average absolute relative error of positive queries (Figure 4)."""
    return _size_sweep_figure(
        "figure4",
        "Average absolute relative error of positive queries",
        "Erel (%)",
        configs,
        lambda result: result.erel_positive.percent,
    )


def figure5(
    configs: Optional[Sequence[ExperimentConfig]] = None,
) -> FigureResult:
    """log10 RMS error of negative queries (Figure 5).

    Curves with zero error everywhere are omitted, as in the paper (Sets and
    Hashes produced no error for xCBL negatives).
    """
    def y_of(result: EvaluationResult) -> Optional[float]:
        value = result.esqr_negative.value
        if value <= 0.0:
            return None
        return math.log10(value)

    return _size_sweep_figure(
        "figure5",
        "Log10 of the root mean square error of negative queries",
        "log10(Esqr)",
        configs,
        y_of,
        drop_all_zero=True,
    )


def figure6(
    configs: Optional[Sequence[ExperimentConfig]] = None,
) -> FigureResult:
    """Erel as a function of the total synopsis size |HS| (Figure 6).

    The paper shows xCBL; pass configs to change the data set.  The x axis
    is the measured size of each evaluated synopsis, so Counters contribute
    a single point (their size does not vary with the sweep).
    """
    if configs is None:
        configs = [ExperimentConfig.quick("xcbl")]
    figure = FigureResult(
        figure_id="figure6",
        title="Erel as a function of the total size of the synopsis",
        xlabel="Size of synopsis",
        ylabel="Erel (%)",
    )
    for config in configs:
        prepared = prepare(config)
        for mode in MODES:
            series = Series(label=f"{mode.capitalize()} - {config.dtd_name.upper()}")
            if mode == "counters":
                result = evaluate(prepared, "counters", 1)
                series.add(result.synopsis_size.total, result.erel_positive.percent)
            else:
                for size in config.sizes:
                    result = evaluate(prepared, mode, size)
                    series.add(
                        result.synopsis_size.total, result.erel_positive.percent
                    )
            figure.series.append(series)
    return figure


def _metric_figure(
    figure_id: str,
    metric: str,
    formula: str,
    configs: Optional[Sequence[ExperimentConfig]],
) -> FigureResult:
    return _size_sweep_figure(
        figure_id,
        f"Average absolute relative error of proximity metric {formula}",
        "Erel (%)",
        configs,
        lambda result: result.metric_errors[metric].percent,
    )


def figure7(
    configs: Optional[Sequence[ExperimentConfig]] = None,
) -> FigureResult:
    """Erel of M1(p,q) = P(p|q) (Figure 7)."""
    return _metric_figure("figure7", "M1", "M1(p,q) = P(p|q)", configs)


def figure8(
    configs: Optional[Sequence[ExperimentConfig]] = None,
) -> FigureResult:
    """Erel of M2(p,q) = (P(p|q)+P(q|p))/2 (Figure 8)."""
    return _metric_figure(
        "figure8", "M2", "M2(p,q) = (P(p|q)+P(q|p))/2", configs
    )


def figure9(
    configs: Optional[Sequence[ExperimentConfig]] = None,
) -> FigureResult:
    """Erel of M3(p,q) = P(p∧q)/P(p∨q) (Figure 9)."""
    return _metric_figure(
        "figure9", "M3", "M3(p,q) = P(p^q)/P(p v q)", configs
    )


def figure10(
    configs: Optional[Sequence[ExperimentConfig]] = None,
) -> FigureResult:
    """Erel and Esqr as functions of the compression ratio α (Figure 10).

    Hashes only, at each config's ``fixed_hash_size``, as in the paper
    (which fixes the hash size to 1,000 entries).  Esqr curves that are zero
    everywhere are dropped (the paper notes xCBL produced no negative-query
    error).
    """
    figure = FigureResult(
        figure_id="figure10",
        title="Erel and Esqr as a function of the compression ratio",
        xlabel="Compression ratio alpha (%)",
        ylabel="Erel (%) / log10(Esqr)",
    )
    for config in _default_configs(configs):
        prepared = prepare(config)
        erel_series = Series(label=f"Erel - {config.dtd_name.upper()}")
        esqr_series = Series(label=f"Esqr - {config.dtd_name.upper()}")
        for alpha in config.alphas:
            result = evaluate(
                prepared, "hashes", config.fixed_hash_size, alpha=alpha
            )
            x = 100.0 * alpha
            erel_series.add(x, result.erel_positive.percent)
            esqr = result.esqr_negative.value
            if esqr > 0.0:
                esqr_series.add(x, math.log10(esqr))
        figure.series.append(erel_series)
        if esqr_series.ys:
            figure.series.append(esqr_series)
    return figure


def setup_summary(
    configs: Optional[Sequence[ExperimentConfig]] = None,
) -> dict[str, dict[str, float]]:
    """The Section 5.1 data-set and workload statistics, per DTD.

    Returns, for each DTD: document count, average tag pairs, average and
    maximum depth, and the positive workload's average / most selective /
    least selective pattern selectivities (in percent) — the numbers quoted
    in the paper's setup prose (8.27% / 36.17% averages etc.).
    """
    summary: dict[str, dict[str, float]] = {}
    for config in _default_configs(configs):
        prepared = prepare(config)
        corpus = prepared.corpus
        avg, low, high = prepared.workload_profile()
        summary[config.dtd_name] = {
            "documents": float(len(corpus)),
            "avg_tag_pairs": corpus.average_edges(),
            "avg_depth": corpus.average_depth(),
            "max_depth": float(max(d.depth() for d in prepared.documents)),
            "positive_avg_selectivity_pct": 100.0 * avg,
            "positive_min_selectivity_pct": 100.0 * low,
            "positive_max_selectivity_pct": 100.0 * high,
            "n_positive": float(len(prepared.positive)),
            "n_negative": float(len(prepared.negative)),
        }
    return summary


#: Registry used by the command-line entry point and the benchmarks.
ALL_FIGURES = {
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
}
