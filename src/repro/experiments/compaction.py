"""Stream compaction measurement (the Section 5.1 anecdote).

The synopsis factorises common label paths, so its node count can be far
smaller than the number of tag nodes streamed through it.  The paper
quantifies this with a *compaction ratio* — synopsis nodes divided by total
streamed tag nodes — and quotes three reference points:

* DBLP: 7,991,221 tag nodes → a 137-node synopsis → 0.0017%;
* their NITF corpus: 36.3% (recursive news documents share few paths);
* their xCBL corpus: 0.082% (rigid commercial records share almost all).

:func:`measure_compaction` reproduces the measurement for any document
stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.synopsis.synopsis import DocumentSynopsis
from repro.xmltree.tree import XMLTree

__all__ = ["CompactionResult", "measure_compaction"]


@dataclass(frozen=True)
class CompactionResult:
    """Outcome of streaming documents through a structure-only synopsis."""

    documents: int
    total_tag_nodes: int
    synopsis_nodes: int

    @property
    def ratio(self) -> float:
        """Synopsis nodes / streamed tag nodes (lower = more compaction)."""
        if self.total_tag_nodes == 0:
            return 0.0
        return self.synopsis_nodes / self.total_tag_nodes

    @property
    def percent(self) -> float:
        """The compaction ratio as a percentage."""
        return 100.0 * self.ratio

    def __str__(self) -> str:
        return (
            f"{self.total_tag_nodes} tag nodes over {self.documents} documents "
            f"-> {self.synopsis_nodes}-node synopsis "
            f"(compaction {self.percent:.4f}%)"
        )


def measure_compaction(documents: Iterable[XMLTree]) -> CompactionResult:
    """Stream *documents* into a counter synopsis and report the ratio.

    Counters are used because only the label structure matters here; the
    matching-set representation does not affect the node count.
    """
    synopsis = DocumentSynopsis(mode="counters")
    n_documents = 0
    total_tags = 0
    for document in documents:
        n_documents += 1
        total_tags += len(document)
        synopsis.insert_document(document)
    # The synopsis root '/.' is bookkeeping, not a document tag.
    return CompactionResult(
        documents=n_documents,
        total_tag_nodes=total_tags,
        synopsis_nodes=synopsis.n_nodes - 1,
    )
