"""Experiment harness and per-figure runners for the paper's evaluation."""

from repro.experiments.compaction import CompactionResult, measure_compaction
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    ALL_FIGURES,
    FigureResult,
    Series,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    setup_summary,
)
from repro.experiments.ground_truth import (
    GroundTruth,
    exact_metric_values,
    exact_selectivities,
)
from repro.experiments.harness import (
    EvaluationResult,
    PreparedExperiment,
    build_synopsis,
    clear_caches,
    evaluate,
    prepare,
)
from repro.experiments.report import figure_to_csv, render_figure, render_summary

__all__ = [
    "ExperimentConfig",
    "CompactionResult",
    "measure_compaction",
    "GroundTruth",
    "exact_selectivities",
    "exact_metric_values",
    "PreparedExperiment",
    "EvaluationResult",
    "prepare",
    "build_synopsis",
    "evaluate",
    "clear_caches",
    "Series",
    "FigureResult",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "setup_summary",
    "ALL_FIGURES",
    "render_figure",
    "figure_to_csv",
    "render_summary",
]
