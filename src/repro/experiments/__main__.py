"""Command-line figure regeneration.

Usage::

    python -m repro.experiments figure4 figure5 --scale quick
    python -m repro.experiments all --scale tiny --dtd nitf
    python -m repro.experiments summary --scale paper --csv out/

``--scale paper`` runs the full Section 5.1 setup (hours in pure Python);
``quick`` (default) preserves the curve shapes in minutes; ``tiny`` is a
smoke test.
"""

from __future__ import annotations

# reprolint: disable-file=RL002 -- the CLI prints wall-clock elapsed time per
# regenerated figure as a progress measurement; it never feeds results.
import argparse
import pathlib
import sys
import time

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import ALL_FIGURES, setup_summary
from repro.experiments.report import figure_to_csv, render_figure, render_summary

_SCALES = {
    "tiny": ExperimentConfig.tiny,
    "quick": ExperimentConfig.quick,
    "paper": ExperimentConfig.paper,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: regenerate the requested figures, return exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures as text tables.",
    )
    parser.add_argument(
        "targets",
        nargs="+",
        help="figure4..figure10, 'summary', or 'all'",
    )
    parser.add_argument("--scale", choices=sorted(_SCALES), default="quick")
    parser.add_argument(
        "--dtd",
        choices=("nitf", "xcbl", "both"),
        default="both",
        help="data set(s) to run on",
    )
    parser.add_argument(
        "--csv",
        type=pathlib.Path,
        default=None,
        help="directory to also write <figure>.csv files into",
    )
    args = parser.parse_args(argv)

    preset = _SCALES[args.scale]
    dtd_names = ("nitf", "xcbl") if args.dtd == "both" else (args.dtd,)
    configs = [preset(name) for name in dtd_names]

    targets = list(args.targets)
    if "all" in targets:
        targets = ["summary"] + sorted(ALL_FIGURES)

    for target in targets:
        started = time.perf_counter()
        if target == "summary":
            print(render_summary(setup_summary(configs)))
        elif target in ALL_FIGURES:
            figure = ALL_FIGURES[target](configs)
            print(render_figure(figure))
            if args.csv is not None:
                args.csv.mkdir(parents=True, exist_ok=True)
                path = args.csv / f"{target}.csv"
                path.write_text(figure_to_csv(figure))
                print(f"(csv written to {path})")
        else:
            parser.error(f"unknown target {target!r}")
        print(f"[{target}: {time.perf_counter() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
