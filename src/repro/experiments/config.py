"""Experiment configuration (Table 1 of the paper).

Two presets are provided:

* :meth:`ExperimentConfig.paper` — the paper's scale: 10,000 documents,
  1,000 positive + 1,000 negative patterns, 5,000 random pattern pairs, and
  hash/set sizes swept from 50 to 10,000.  Hours of pure-Python compute;
  use it for a faithful full run.
* :meth:`ExperimentConfig.quick` — the same experiment geometry scaled
  down (documents, workload and sweep sizes shrunk proportionally) so the
  complete figure suite runs in minutes.  Curve *shapes* are preserved:
  sample sizes are swept across the same fractions of the stream length.

Document-generator parameters are calibrated per DTD so documents average
about 100 tag pairs at up to 10 levels, matching Section 5.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.generators.docgen import GeneratorConfig
from repro.generators.querygen import PatternGenConfig

__all__ = ["ExperimentConfig", "DOC_GENERATOR_PRESETS", "PAPER_PATTERN_CONFIG"]


#: Per-DTD document-generator settings giving ~100 tag pairs per document.
DOC_GENERATOR_PRESETS: dict[str, GeneratorConfig] = {
    "nitf": GeneratorConfig(p_repeat=0.58, max_repeats=5, p_optional=0.58),
    "xcbl": GeneratorConfig(p_optional=0.23, p_repeat=0.3, max_repeats=2),
}

#: The paper's pattern-generator parameters: h=10, p*=0.1, p//=0.1,
#: pλ=0.1, θ=1.
PAPER_PATTERN_CONFIG = PatternGenConfig(
    height=10, p_star=0.1, p_descendant=0.1, p_branch=0.1, theta=1.0
)


@dataclass(frozen=True)
class ExperimentConfig:
    """All knobs of one experimental setup (one DTD)."""

    dtd_name: str = "nitf"
    n_documents: int = 500
    n_positive: int = 100
    n_negative: int = 100
    n_pairs: int = 200
    #: Maximum hash/set sizes swept in Figures 4, 5, 7, 8, 9.
    sizes: tuple[int, ...] = (25, 50, 100, 200, 400)
    #: Compression ratios swept in Figure 10.
    alphas: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0)
    #: Hash size fixed during the Figure 10 compression sweep
    #: (the paper uses 1,000 entries at 10,000 documents — 10%).
    fixed_hash_size: int = 100
    seed: int = 2007
    workload_attempts_factor: int = 25
    doc_config: Optional[GeneratorConfig] = None
    pattern_config: PatternGenConfig = field(default_factory=lambda: PAPER_PATTERN_CONFIG)

    def __post_init__(self) -> None:
        if self.dtd_name not in DOC_GENERATOR_PRESETS:
            raise ValueError(f"unknown DTD {self.dtd_name!r}")
        if self.doc_config is None:
            object.__setattr__(
                self, "doc_config", DOC_GENERATOR_PRESETS[self.dtd_name]
            )

    # ------------------------------------------------------------------

    @classmethod
    def quick(cls, dtd_name: str = "nitf", **overrides) -> "ExperimentConfig":
        """Reduced-scale preset for the benchmark suite (minutes)."""
        return replace(cls(dtd_name=dtd_name), **overrides) if overrides else cls(
            dtd_name=dtd_name
        )

    @classmethod
    def paper(cls, dtd_name: str = "nitf", **overrides) -> "ExperimentConfig":
        """The paper's full scale (Section 5.1)."""
        config = cls(
            dtd_name=dtd_name,
            n_documents=10_000,
            n_positive=1_000,
            n_negative=1_000,
            n_pairs=5_000,
            sizes=(50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000),
            alphas=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
            fixed_hash_size=1_000,
        )
        return replace(config, **overrides) if overrides else config

    @classmethod
    def tiny(cls, dtd_name: str = "nitf", **overrides) -> "ExperimentConfig":
        """Smoke-test preset for unit/integration tests (seconds)."""
        config = cls(
            dtd_name=dtd_name,
            n_documents=80,
            n_positive=20,
            n_negative=10,
            n_pairs=30,
            sizes=(10, 40),
            alphas=(0.5, 1.0),
            fixed_hash_size=30,
        )
        return replace(config, **overrides) if overrides else config

    # ------------------------------------------------------------------

    @property
    def cache_key(self) -> tuple:
        """Hashable identity used by the harness's result caches."""
        return (
            self.dtd_name,
            self.n_documents,
            self.n_positive,
            self.n_negative,
            self.n_pairs,
            self.seed,
            self.workload_attempts_factor,
            self.doc_config,
            self.pattern_config,
        )
