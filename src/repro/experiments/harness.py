"""Experiment harness: prepare workloads once, evaluate many configurations.

The evaluation figures all share the same expensive artefacts — the document
corpus, the positive/negative workloads, exact selectivities, and the exact
proximity-metric values over sampled pattern pairs.  ``prepare`` builds them
once per :class:`~repro.experiments.config.ExperimentConfig` and caches the
result in-process; ``evaluate`` then scores one (mode, capacity[, α])
synopsis configuration against the prepared ground truth, also cached, so
Figures 4, 5, 6, 7, 8 and 9 reuse each other's sweeps.
"""

from __future__ import annotations

# reprolint: disable-file=RL002 -- the harness *reports* wall-clock build and
# evaluation durations as measurements; they never feed simulated time or
# any routing decision.
import random
import time
from dataclasses import dataclass
from typing import Optional

from repro.core.errors import (
    ErrorSummary,
    average_relative_error,
    root_mean_square_error,
)
from repro.core.pattern import TreePattern
from repro.core.selectivity import SelectivityEstimator
from repro.core.similarity import METRICS
from repro.dtd.builtin import builtin_dtd
from repro.dtd.model import DTD
from repro.experiments.config import ExperimentConfig
from repro.experiments.ground_truth import (
    GroundTruth,
    exact_metric_values,
    exact_selectivities,
)
from repro.generators.docgen import DocumentGenerator
from repro.generators.workload import WorkloadBuilder
from repro.synopsis.compression import compress_to_ratio
from repro.synopsis.size import SynopsisSize, measure
from repro.synopsis.synopsis import DocumentSynopsis
from repro.xmltree.tree import XMLTree

__all__ = [
    "PreparedExperiment",
    "EvaluationResult",
    "prepare",
    "build_synopsis",
    "evaluate",
    "clear_caches",
]


@dataclass
class PreparedExperiment:
    """Everything an evaluation needs that does not depend on the synopsis."""

    config: ExperimentConfig
    dtd: DTD
    documents: list[XMLTree]
    corpus: GroundTruth
    positive: list[TreePattern]
    negative: list[TreePattern]
    pairs: list[tuple[TreePattern, TreePattern]]
    exact_positive: list[float]
    exact_negative: list[float]
    exact_metrics: dict[str, list[float]]
    prepare_seconds: float = 0.0

    def workload_profile(self) -> tuple[float, float, float]:
        """(avg, min, max) exact selectivity of the positive workload —
        the Section 5.1 statistics."""
        return self.corpus.selectivity_profile(self.positive)


@dataclass
class EvaluationResult:
    """Errors of one synopsis configuration against the prepared truth."""

    mode: str
    capacity: int
    alpha: Optional[float]
    erel_positive: ErrorSummary
    esqr_negative: ErrorSummary
    metric_errors: dict[str, ErrorSummary]
    synopsis_size: SynopsisSize
    build_seconds: float
    eval_seconds: float
    compression_ratio: Optional[float] = None

    @property
    def label(self) -> str:
        """Human-readable configuration label used in figure legends."""
        suffix = f", alpha={self.alpha}" if self.alpha is not None else ""
        return f"{self.mode}(capacity={self.capacity}{suffix})"


_PREPARED_CACHE: dict[tuple, PreparedExperiment] = {}
_EVAL_CACHE: dict[tuple, EvaluationResult] = {}


def clear_caches() -> None:
    """Drop all cached preparations and evaluations (tests use this)."""
    _PREPARED_CACHE.clear()
    _EVAL_CACHE.clear()


def prepare(config: ExperimentConfig) -> PreparedExperiment:
    """Build (or fetch) corpus, workloads and exact values for *config*."""
    key = config.cache_key
    cached = _PREPARED_CACHE.get(key)
    if cached is not None:
        return cached

    started = time.perf_counter()
    dtd = builtin_dtd(config.dtd_name)
    generator = DocumentGenerator(dtd, seed=config.seed, config=config.doc_config)
    documents = list(generator.stream(config.n_documents))
    corpus = GroundTruth(documents)
    builder = WorkloadBuilder(
        dtd, corpus, seed=config.seed + 1, config=config.pattern_config
    )
    workload = builder.build(
        n_positive=config.n_positive,
        n_negative=config.n_negative,
        max_attempts_factor=config.workload_attempts_factor,
    )

    rng = random.Random(config.seed + 2)
    positive = workload.positive
    pairs: list[tuple[TreePattern, TreePattern]] = []
    if len(positive) >= 2:
        for _ in range(config.n_pairs):
            i = rng.randrange(len(positive))
            j = rng.randrange(len(positive) - 1)
            if j >= i:
                j += 1
            pairs.append((positive[i], positive[j]))

    prepared = PreparedExperiment(
        config=config,
        dtd=dtd,
        documents=documents,
        corpus=corpus,
        positive=positive,
        negative=workload.negative,
        pairs=pairs,
        exact_positive=exact_selectivities(corpus, positive),
        exact_negative=exact_selectivities(corpus, workload.negative),
        exact_metrics={
            name: exact_metric_values(corpus, pairs, name) for name in METRICS
        },
        prepare_seconds=time.perf_counter() - started,
    )
    _PREPARED_CACHE[key] = prepared
    return prepared


def build_synopsis(
    prepared: PreparedExperiment, mode: str, capacity: int
) -> DocumentSynopsis:
    """Stream the prepared corpus into a fresh synopsis."""
    synopsis = DocumentSynopsis(
        mode=mode, capacity=capacity, seed=prepared.config.seed + 3
    )
    for document in prepared.documents:
        synopsis.insert_document(document)
    return synopsis


def evaluate(
    prepared: PreparedExperiment,
    mode: str,
    capacity: int,
    alpha: Optional[float] = None,
) -> EvaluationResult:
    """Score one synopsis configuration (cached).

    With ``alpha`` set, the synopsis is compressed to that size ratio before
    estimation (the Figure 10 sweep; the paper applies it to Hashes).
    """
    key = (prepared.config.cache_key, mode, capacity, alpha)
    cached = _EVAL_CACHE.get(key)
    if cached is not None:
        return cached

    started = time.perf_counter()
    synopsis = build_synopsis(prepared, mode, capacity)
    compression_ratio: Optional[float] = None
    if alpha is not None:
        report = compress_to_ratio(synopsis, alpha)
        compression_ratio = report.achieved_ratio
    build_seconds = time.perf_counter() - started

    started = time.perf_counter()
    estimator = SelectivityEstimator(synopsis)
    estimated_positive = [estimator.selectivity(p) for p in prepared.positive]
    estimated_negative = [estimator.selectivity(p) for p in prepared.negative]
    metric_errors: dict[str, ErrorSummary] = {}
    for name, metric_fn in METRICS.items():
        estimated = [metric_fn(estimator, p, q) for p, q in prepared.pairs]
        metric_errors[name] = average_relative_error(
            prepared.exact_metrics[name], estimated
        )
    eval_seconds = time.perf_counter() - started

    result = EvaluationResult(
        mode=mode,
        capacity=capacity,
        alpha=alpha,
        erel_positive=average_relative_error(
            prepared.exact_positive, estimated_positive
        ),
        esqr_negative=root_mean_square_error(
            prepared.exact_negative, estimated_negative
        ),
        metric_errors=metric_errors,
        synopsis_size=measure(synopsis),
        build_seconds=build_seconds,
        eval_seconds=eval_seconds,
        compression_ratio=compression_ratio,
    )
    _EVAL_CACHE[key] = result
    return result
