"""Rendering experiment results as text tables and CSV.

The paper's figures are line plots; offline we render the same data as
aligned text tables (one row per x value, one column per curve) so results
can be read in a terminal and diffed between runs.
"""

from __future__ import annotations

import io
from typing import Mapping

from repro.experiments.figures import FigureResult

__all__ = ["render_figure", "figure_to_csv", "render_summary"]


def _format_number(value: float) -> str:
    if value != value:  # NaN
        return "nan"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:.3f}".rstrip("0").rstrip(".") or "0"


def render_figure(figure: FigureResult) -> str:
    """Render a figure as an aligned text table.

    Curves may have different x supports (Figure 6 plots measured synopsis
    sizes); missing cells are left blank.
    """
    xs: list[float] = sorted({x for series in figure.series for x in series.xs})
    by_series: list[dict[float, float]] = [
        dict(zip(series.xs, series.ys, strict=True)) for series in figure.series
    ]

    header = [figure.xlabel] + [series.label for series in figure.series]
    rows: list[list[str]] = []
    for x in xs:
        row = [_format_number(x)]
        for mapping in by_series:
            row.append(_format_number(mapping[x]) if x in mapping else "")
        rows.append(row)

    widths = [
        max(len(header[col]), *(len(row[col]) for row in rows)) if rows else len(header[col])
        for col in range(len(header))
    ]
    out = io.StringIO()
    out.write(f"{figure.figure_id}: {figure.title}\n")
    out.write(f"y-axis: {figure.ylabel}\n")
    out.write(
        "  ".join(header[col].ljust(widths[col]) for col in range(len(header)))
        + "\n"
    )
    out.write("  ".join("-" * widths[col] for col in range(len(header))) + "\n")
    for row in rows:
        out.write(
            "  ".join(row[col].rjust(widths[col]) for col in range(len(header)))
            + "\n"
        )
    return out.getvalue()


def figure_to_csv(figure: FigureResult) -> str:
    """Long-form CSV: ``series,x,y`` per line (plot-tool friendly)."""
    out = io.StringIO()
    out.write("series,x,y\n")
    for series in figure.series:
        for x, y in zip(series.xs, series.ys, strict=True):
            out.write(f"{series.label},{x},{y}\n")
    return out.getvalue()


def render_summary(summary: Mapping[str, Mapping[str, float]]) -> str:
    """Render the setup_summary() statistics as a table, one row per DTD."""
    if not summary:
        return "(empty summary)\n"
    columns = list(next(iter(summary.values())))
    header = ["dtd"] + columns
    rows = [
        [name] + [_format_number(values[col]) for col in columns]
        for name, values in summary.items()
    ]
    widths = [
        max(len(header[col]), *(len(row[col]) for row in rows))
        for col in range(len(header))
    ]
    out = io.StringIO()
    out.write(
        "  ".join(header[col].ljust(widths[col]) for col in range(len(header)))
        + "\n"
    )
    out.write("  ".join("-" * widths[col] for col in range(len(header))) + "\n")
    for row in rows:
        out.write(
            "  ".join(row[col].rjust(widths[col]) for col in range(len(header)))
            + "\n"
        )
    return out.getvalue()
