"""Ground truth for the evaluation: exact corpus-level matching.

The exact engine itself lives in :mod:`repro.xmltree.corpus` (it is generally
useful, not experiment-specific); this module re-exports it under the
paper-facing name and adds the exact-evaluation helpers the harness uses.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.pattern import TreePattern
from repro.core.similarity import METRICS
from repro.xmltree.corpus import DocumentCorpus

__all__ = ["GroundTruth", "exact_selectivities", "exact_metric_values"]

#: The exact oracle: ``GroundTruth(documents).selectivity(pattern)`` etc.
GroundTruth = DocumentCorpus


def exact_selectivities(
    corpus: DocumentCorpus, patterns: Sequence[TreePattern]
) -> list[float]:
    """Exact ``P(p)`` for every pattern, in order."""
    return [corpus.selectivity(pattern) for pattern in patterns]


def exact_metric_values(
    corpus: DocumentCorpus,
    pairs: Sequence[tuple[TreePattern, TreePattern]],
    metric: str,
) -> list[float]:
    """Exact proximity-metric values for every pattern pair, in order."""
    fn = METRICS[metric]
    return [fn(corpus, p, q) for p, q in pairs]
