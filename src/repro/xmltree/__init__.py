"""XML document substrate: compact trees, parsing, skeletons, and the exact
tree-pattern matcher used as ground truth."""

from repro.xmltree.corpus import DocumentCorpus
from repro.xmltree.matcher import CompiledPattern, PatternMatcher, matches
from repro.xmltree.parser import XMLParseError, parse_xml, tree_to_xml
from repro.xmltree.skeleton import is_skeleton, skeleton, skeleton_paths
from repro.xmltree.tree import XMLTree, XMLTreeBuilder

__all__ = [
    "XMLTree",
    "XMLTreeBuilder",
    "DocumentCorpus",
    "parse_xml",
    "tree_to_xml",
    "XMLParseError",
    "skeleton",
    "skeleton_paths",
    "is_skeleton",
    "CompiledPattern",
    "PatternMatcher",
    "matches",
]
