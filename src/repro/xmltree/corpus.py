"""Exact matching over a document corpus — the evaluation's ground truth.

The paper computes, for each tree pattern p, the exact subset ``Dp`` of
documents matching p; exact selectivities and joint probabilities follow as
``|Dp| / |D|`` and ``|Dp ∩ Dq| / |D|``.  ``DocumentCorpus`` provides that
with two accelerations that keep 10k-document workloads tractable in pure
Python:

* an inverted tag → document-ids index: every tag named in a pattern must
  label some node of a matching document, so candidate documents are the
  intersection of the pattern's tag postings;
* per-pattern memoisation of the resulting match sets.

``DocumentCorpus`` implements the same provider protocol as the synopsis
estimator (:class:`~repro.core.similarity.SelectivityProvider`), so the
proximity metrics can be evaluated exactly and approximately with one code
path.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.pattern import TreePattern
from repro.xmltree.matcher import CompiledPattern, PatternMatcher
from repro.xmltree.tree import XMLTree

__all__ = ["DocumentCorpus"]


class DocumentCorpus:
    """An indexed, immutable collection of documents with exact matching."""

    def __init__(self, documents: Sequence[XMLTree]):
        self.documents = list(documents)
        self.by_id: dict[int, XMLTree] = {}
        for position, document in enumerate(self.documents):
            if document.doc_id < 0:
                raise ValueError(
                    f"document at position {position} has no doc_id; "
                    "assign ids before building a corpus"
                )
            if document.doc_id in self.by_id:
                raise ValueError(f"duplicate doc_id {document.doc_id}")
            self.by_id[document.doc_id] = document
        self.all_ids: frozenset[int] = frozenset(self.by_id)
        self._tag_index: dict[str, set[int]] = {}
        for document in self.documents:
            for tag in document.tag_set:
                self._tag_index.setdefault(tag, set()).add(document.doc_id)
        self._match_cache: dict[TreePattern, frozenset[int]] = {}

    def __len__(self) -> int:
        return len(self.documents)

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------

    def candidate_ids(self, pattern: TreePattern) -> frozenset[int]:
        """Documents containing every tag named in *pattern* (a superset of
        the true match set)."""
        tags = pattern.tags()
        if not tags:
            return self.all_ids
        postings: list[set[int]] = []
        for tag in tags:
            posting = self._tag_index.get(tag)
            if not posting:
                return frozenset()
            postings.append(posting)
        postings.sort(key=len)
        result = set(postings[0])
        for posting in postings[1:]:
            result &= posting
            if not result:
                break
        return frozenset(result)

    def match_set(self, pattern: TreePattern) -> frozenset[int]:
        """Exact set of document ids matching *pattern* (memoised)."""
        cached = self._match_cache.get(pattern)
        if cached is not None:
            return cached
        matcher = PatternMatcher(CompiledPattern(pattern))
        matched = frozenset(
            doc_id
            for doc_id in self.candidate_ids(pattern)
            if matcher.matches(self.by_id[doc_id])
        )
        self._match_cache[pattern] = matched
        return matched

    def match_count(self, pattern: TreePattern) -> int:
        """``|Dp|``."""
        return len(self.match_set(pattern))

    # ------------------------------------------------------------------
    # SelectivityProvider protocol
    # ------------------------------------------------------------------

    def selectivity(self, pattern: TreePattern) -> float:
        """Exact ``P(p) = |Dp| / |D|``."""
        if not self.documents:
            return 0.0
        return len(self.match_set(pattern)) / len(self.documents)

    def joint_selectivity(self, p: TreePattern, q: TreePattern) -> float:
        """Exact ``P(p ∧ q) = |Dp ∩ Dq| / |D|``.

        Set intersection is used instead of matching the root-merged pattern;
        the two are equivalent under the Section 2 semantics (a root-merge is
        a conjunction of the two patterns' constraints).
        """
        if not self.documents:
            return 0.0
        joint = self.match_set(p) & self.match_set(q)
        return len(joint) / len(self.documents)

    # ------------------------------------------------------------------
    # corpus statistics
    # ------------------------------------------------------------------

    def tag_vocabulary(self) -> frozenset[str]:
        """All tags occurring anywhere in the corpus."""
        return frozenset(self._tag_index)

    def average_edges(self) -> float:
        """Mean number of tag pairs (edges) per document — the paper's
        document-size measure (~100)."""
        if not self.documents:
            return 0.0
        return sum(doc.n_edges for doc in self.documents) / len(self.documents)

    def average_depth(self) -> float:
        """Mean document depth in levels."""
        if not self.documents:
            return 0.0
        return sum(doc.depth() for doc in self.documents) / len(self.documents)

    def selectivity_profile(
        self, patterns: Iterable[TreePattern]
    ) -> tuple[float, float, float]:
        """(average, minimum, maximum) exact selectivity over *patterns* —
        the Section 5.1 workload statistics."""
        values = [self.selectivity(p) for p in patterns]
        if not values:
            return (0.0, 0.0, 0.0)
        return (sum(values) / len(values), min(values), max(values))

    def __repr__(self) -> str:
        return f"DocumentCorpus(documents={len(self.documents)})"
