"""Parsing XML text into :class:`~repro.xmltree.tree.XMLTree`.

A thin front-end over the standard library's ``xml.etree.ElementTree``.
Attribute values are ignored (the paper's pattern language constrains element
structure only); text content can optionally be materialised as leaf nodes,
which is how the paper's Figure 1 treats values such as ``"Mozart"``.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.xmltree.tree import XMLTree, XMLTreeBuilder

__all__ = ["parse_xml", "XMLParseError", "tree_to_xml"]


class XMLParseError(ValueError):
    """Raised when the input is not well-formed XML."""


def _localname(tag: str) -> str:
    """Strip a ``{namespace}`` prefix, if any."""
    if tag.startswith("{"):
        return tag.rsplit("}", 1)[1]
    return tag


def parse_xml(text: str, include_text: bool = True, doc_id: int = -1) -> XMLTree:
    """Parse an XML document string into an :class:`XMLTree`.

    With ``include_text=True`` (the default), non-whitespace text content of
    an element becomes an extra leaf child labeled with the stripped text, so
    ``<last>Mozart</last>`` yields the two-node path ``last/Mozart`` exactly
    as in the paper's example trees.
    """
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XMLParseError(str(exc)) from exc

    builder = XMLTreeBuilder()

    def walk(element: ET.Element, parent: int) -> None:
        index = builder.add(_localname(element.tag), parent)
        if include_text and element.text and element.text.strip():
            builder.add(element.text.strip(), index)
        for child in element:
            walk(child, index)

    walk(root, -1)
    return builder.build(doc_id=doc_id)


def tree_to_xml(tree: XMLTree) -> str:
    """Serialise a tree back to XML text.

    Leaf nodes whose parent has other children are emitted as empty
    elements; this is the inverse of ``parse_xml(..., include_text=False)``
    and a best-effort inverse otherwise.
    """
    pieces: list[str] = []

    def emit(node: int) -> None:
        tag = tree.labels[node]
        kids = tree.children[node]
        if not kids:
            pieces.append(f"<{tag}/>")
            return
        pieces.append(f"<{tag}>")
        for kid in kids:
            emit(kid)
        pieces.append(f"</{tag}>")

    emit(tree.root)
    return "".join(pieces)
