"""Compact node-labeled XML trees.

The experiments stream tens of thousands of documents with a couple of
hundred nodes each; a Python object per node would dominate memory and
slow every traversal.  ``XMLTree`` therefore stores a document as parallel
arrays over integer node indices:

* ``labels[i]`` — the (interned) tag of node ``i``;
* ``parents[i]`` — parent index, ``-1`` for the root;
* ``children[i]`` — list of child indices, in document order.

Node ``0`` is always the root.  Trees are built through
:class:`XMLTreeBuilder` or :func:`XMLTree.from_nested` and are treated as
immutable afterwards.
"""

from __future__ import annotations

import sys
from typing import Iterator, Sequence

__all__ = ["XMLTree", "XMLTreeBuilder", "NestedSpec"]

#: Convenience type for literal tree construction:
#: a tag, or a ``(tag, [children...])`` pair.
NestedSpec = "str | tuple[str, list]"


class XMLTree:
    """A node-labeled document tree over integer node indices."""

    __slots__ = ("labels", "parents", "children", "doc_id", "_tag_set")

    def __init__(
        self,
        labels: list[str],
        parents: list[int],
        children: list[list[int]],
        doc_id: int = -1,
    ):
        if not labels:
            raise ValueError("an XML tree needs at least a root node")
        if not (len(labels) == len(parents) == len(children)):
            raise ValueError("parallel arrays must have equal length")
        if parents[0] != -1:
            raise ValueError("node 0 must be the root (parent -1)")
        self.labels = labels
        self.parents = parents
        self.children = children
        self.doc_id = doc_id
        self._tag_set: frozenset[str] | None = None

    # -- construction --------------------------------------------------------

    @classmethod
    def from_nested(cls, spec, doc_id: int = -1) -> "XMLTree":
        """Build a tree from nested ``(tag, [children])`` literals.

        >>> t = XMLTree.from_nested(("a", ["b", ("c", ["d"])]))
        >>> t.labels
        ['a', 'b', 'c', 'd']
        """
        builder = XMLTreeBuilder()

        def add(node_spec, parent: int) -> None:
            if isinstance(node_spec, str):
                builder.add(node_spec, parent)
                return
            tag, kids = node_spec
            index = builder.add(tag, parent)
            for kid in kids:
                add(kid, index)

        add(spec, -1)
        return builder.build(doc_id=doc_id)

    # -- basic structure -----------------------------------------------------

    @property
    def root(self) -> int:
        """Index of the root node (always 0)."""
        return 0

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def n_edges(self) -> int:
        """Number of parent-child edges ("tag pairs" in the paper's sizing)."""
        return len(self.labels) - 1

    def label(self, node: int) -> str:
        """Tag of *node*."""
        return self.labels[node]

    def child_indices(self, node: int) -> Sequence[int]:
        """Children of *node* in document order."""
        return self.children[node]

    def parent(self, node: int) -> int:
        """Parent index of *node*, ``-1`` for the root."""
        return self.parents[node]

    def is_leaf(self, node: int) -> bool:
        """True when *node* has no children."""
        return not self.children[node]

    @property
    def tag_set(self) -> frozenset[str]:
        """Set of distinct tags in the document (cached)."""
        if self._tag_set is None:
            self._tag_set = frozenset(self.labels)
        return self._tag_set

    # -- traversals ----------------------------------------------------------

    def iter_preorder(self, start: int = 0) -> Iterator[int]:
        """Yield node indices of the subtree under *start*, pre-order."""
        stack = [start]
        children = self.children
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(children[node]))

    def descendants_or_self(self, node: int) -> Iterator[int]:
        """Alias of :meth:`iter_preorder`, named for the matcher's use."""
        return self.iter_preorder(node)

    def depth(self) -> int:
        """Number of levels (root counts as level 1)."""
        depths = [1] * len(self.labels)
        best = 1
        for node in range(1, len(self.labels)):
            depth = depths[self.parents[node]] + 1
            depths[node] = depth
            if depth > best:
                best = depth
        return best

    def node_depths(self) -> list[int]:
        """Per-node level, root = 1.  Nodes are in topological (index) order
        because builders append children after their parents."""
        depths = [1] * len(self.labels)
        for node in range(1, len(self.labels)):
            depths[node] = depths[self.parents[node]] + 1
        return depths

    def path_labels(self, node: int) -> tuple[str, ...]:
        """Labels from the root down to *node* (inclusive)."""
        path: list[str] = []
        while node != -1:
            path.append(self.labels[node])
            node = self.parents[node]
        path.reverse()
        return tuple(path)

    def leaves(self) -> Iterator[int]:
        """Yield indices of all leaf nodes."""
        for node, kids in enumerate(self.children):
            if not kids:
                yield node

    # -- misc ------------------------------------------------------------------

    def approx_bytes(self) -> int:
        """Rough in-memory footprint, for stream-budget experiments."""
        return (
            sys.getsizeof(self.labels)
            + sys.getsizeof(self.parents)
            + sum(sys.getsizeof(kids) for kids in self.children)
        )

    def to_nested(self, node: int = 0):
        """Inverse of :meth:`from_nested` (labels only)."""
        kids = self.children[node]
        if not kids:
            return self.labels[node]
        return (self.labels[node], [self.to_nested(kid) for kid in kids])

    def __repr__(self) -> str:
        return f"XMLTree(doc_id={self.doc_id}, nodes={len(self.labels)})"


class XMLTreeBuilder:
    """Incremental builder; append nodes in any order consistent with
    parents-before-children (document order satisfies this)."""

    def __init__(self) -> None:
        self._labels: list[str] = []
        self._parents: list[int] = []
        self._children: list[list[int]] = []

    def add(self, label: str, parent: int = -1) -> int:
        """Append a node labeled *label* under *parent* and return its index.

        The first added node must be the root (``parent=-1``).
        """
        index = len(self._labels)
        if parent == -1 and index != 0:
            raise ValueError("only node 0 may be the root")
        if parent != -1 and not (0 <= parent < index):
            raise ValueError(f"parent {parent} does not exist yet")
        self._labels.append(sys.intern(label))
        self._parents.append(parent)
        self._children.append([])
        if parent != -1:
            self._children[parent].append(index)
        return index

    def build(self, doc_id: int = -1) -> XMLTree:
        """Finish and return the tree."""
        return XMLTree(self._labels, self._parents, self._children, doc_id=doc_id)
