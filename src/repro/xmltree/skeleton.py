"""Skeleton trees (Section 3.1).

The skeleton tree ``Ts`` of a document ``T`` coalesces, top-down, all
children of a node that share a tag, so in ``Ts`` every node has at most one
child per tag.  The document synopsis is maintained from skeleton paths: each
root-to-leaf label path of ``Ts`` is inserted into the synopsis and the
document id recorded at the path's final node.

Skeletonisation is what makes the synopsis document-granular: it keeps the
set of *label paths* of a document, deliberately discarding which paths share
intermediate instance nodes.
"""

from __future__ import annotations

from typing import Iterator

from repro.xmltree.tree import XMLTree, XMLTreeBuilder

__all__ = ["skeleton", "skeleton_paths", "is_skeleton"]


def skeleton(tree: XMLTree) -> XMLTree:
    """Return the skeleton tree of *tree*.

    Built in a single top-down pass: groups of same-tag children are merged,
    and the merge cascades because the grouped nodes' children are considered
    together at the next level.
    """
    builder = XMLTreeBuilder()
    root = builder.add(tree.labels[0], -1)
    # Each work item is (skeleton parent, [document nodes merged into it]).
    work: list[tuple[int, list[int]]] = [(root, [tree.root])]
    while work:
        skel_parent, doc_nodes = work.pop()
        groups: dict[str, list[int]] = {}
        order: list[str] = []
        for doc_node in doc_nodes:
            for child in tree.children[doc_node]:
                tag = tree.labels[child]
                if tag not in groups:
                    groups[tag] = []
                    order.append(tag)
                groups[tag].append(child)
        for tag in order:
            skel_child = builder.add(tag, skel_parent)
            work.append((skel_child, groups[tag]))
    return builder.build(doc_id=tree.doc_id)


def skeleton_paths(tree: XMLTree) -> Iterator[tuple[str, ...]]:
    """Yield the root-to-leaf label paths of the *skeleton* of *tree*.

    Paths are yielded directly from the document without materialising the
    skeleton tree: the label-path set of ``Ts`` equals the set of *distinct*
    maximal label paths of ``T``.  A document path is maximal in the skeleton
    when no document path extends it, i.e. the skeleton node it ends at is a
    leaf — equivalently, *every* document instance of that label path may be
    a leaf or not, but the coalesced node is a leaf only when all instances
    are.  We therefore enumerate distinct label paths and keep those that no
    other distinct label path strictly extends.
    """
    # Collect distinct label paths of T (as tuples); mark which have children.
    has_extension: dict[tuple[str, ...], bool] = {}
    stack: list[tuple[int, tuple[str, ...]]] = [(tree.root, (tree.labels[0],))]
    while stack:
        node, path = stack.pop()
        kids = tree.children[node]
        if path not in has_extension:
            has_extension[path] = bool(kids)
        elif kids:
            has_extension[path] = True
        for kid in kids:
            stack.append((kid, path + (tree.labels[kid],)))
    for path, extended in has_extension.items():
        if not extended:
            yield path


def is_skeleton(tree: XMLTree) -> bool:
    """True when every node of *tree* has at most one child per tag."""
    for kids in tree.children:
        tags = [tree.labels[kid] for kid in kids]
        if len(tags) != len(set(tags)):
            return False
    return True
