"""Exact tree-pattern matching, ``T ⊨ p`` (Section 2 semantics).

This module is the ground-truth oracle of the reproduction: the estimation
error of every synopsis configuration is measured against it.  It implements
the paper's matching definition directly:

* a pattern node labeled with tag ``a`` at document node ``t`` requires a
  *child* of ``t`` labeled ``a`` satisfying all the pattern node's children;
* ``*`` requires some child of any tag;
* ``//`` requires some descendant-or-self node satisfying the pattern node's
  children;
* pattern-root children are special (the root constrains the document root
  node itself): a tag child requires the document root to carry that tag, and
  a ``//`` child may re-anchor its subtree at any document node.

Matching is memoised per (pattern node, document node) pair, giving the
standard ``O(|T|·|p|)`` bound, and patterns are *compiled* once into integer
arrays so one compiled pattern can be matched against a whole corpus.
"""

from __future__ import annotations

from repro.core.labels import DESCENDANT, WILDCARD, is_tag
from repro.core.pattern import PatternNode, TreePattern
from repro.xmltree.tree import XMLTree

__all__ = ["CompiledPattern", "PatternMatcher", "matches"]


class CompiledPattern:
    """A tree pattern flattened to parallel integer-indexed arrays."""

    __slots__ = ("pattern", "labels", "children", "root_children", "required_tags")

    def __init__(self, pattern: TreePattern):
        self.pattern = pattern
        self.labels: list[str] = []
        self.children: list[list[int]] = []
        self.root_children: list[int] = []

        def compile_node(node: PatternNode) -> int:
            index = len(self.labels)
            self.labels.append(node.label)
            self.children.append([])
            kids = [compile_node(child) for child in node.children]
            self.children[index] = kids
            return index

        for child in pattern.root_children:
            self.root_children.append(compile_node(child))
        self.required_tags = frozenset(
            label for label in self.labels if is_tag(label)
        )

    def __len__(self) -> int:
        return len(self.labels)


class PatternMatcher:
    """Reusable matcher for one pattern against many documents.

    >>> from repro.core.pattern_parser import parse_xpath
    >>> from repro.xmltree.tree import XMLTree
    >>> m = PatternMatcher(parse_xpath("/a[b][.//d]"))
    >>> m.matches(XMLTree.from_nested(("a", ["b", ("c", ["d"])])))
    True
    """

    __slots__ = ("compiled",)

    def __init__(self, pattern: TreePattern | CompiledPattern):
        if isinstance(pattern, TreePattern):
            pattern = CompiledPattern(pattern)
        self.compiled = pattern

    def matches(self, tree: XMLTree) -> bool:
        """Decide ``tree ⊨ pattern``."""
        cp = self.compiled
        # Every tag label in the pattern must label some document node;
        # this cheap filter rejects most non-matching documents outright.
        if not cp.required_tags <= tree.tag_set:
            return False
        memo: dict[int, bool] = {}
        root_memo: dict[int, bool] = {}
        return all(
            self._root_sat(tree, tree.root, u, memo, root_memo)
            for u in cp.root_children
        )

    # -- internal recursion ---------------------------------------------------
    #
    # Memo keys pack (pattern node, document node) into one int; pattern
    # count is small so ``u * n + t`` stays well within machine ints.

    def _sat(
        self, tree: XMLTree, t: int, u: int, memo: dict[int, bool]
    ) -> bool:
        """(T, t) ⊨ Subtree(u): the constraint of u holds below node t."""
        key = u * len(tree.labels) + t
        cached = memo.get(key)
        if cached is not None:
            return cached
        cp = self.compiled
        label = cp.labels[u]
        pattern_kids = cp.children[u]
        doc_labels = tree.labels
        result = False
        if label == DESCENDANT:
            # Zero-length: u's children hold at t itself; otherwise recurse
            # into some document child (memoisation bounds the re-visits).
            memo[key] = False  # cycle-safe placeholder; tree has no cycles
            result = all(self._sat(tree, t, ku, memo) for ku in pattern_kids)
            if not result:
                result = any(
                    self._sat(tree, kid, u, memo) for kid in tree.children[t]
                )
        elif label == WILDCARD:
            result = any(
                all(self._sat(tree, kid, ku, memo) for ku in pattern_kids)
                for kid in tree.children[t]
            )
        else:
            result = any(
                doc_labels[kid] == label
                and all(self._sat(tree, kid, ku, memo) for ku in pattern_kids)
                for kid in tree.children[t]
            )
        memo[key] = result
        return result

    def _root_sat(
        self,
        tree: XMLTree,
        t: int,
        u: int,
        memo: dict[int, bool],
        root_memo: dict[int, bool],
    ) -> bool:
        """Root semantics: pattern-root child u holds with t as the anchor."""
        cp = self.compiled
        label = cp.labels[u]
        if label == DESCENDANT:
            key = u * len(tree.labels) + t
            cached = root_memo.get(key)
            if cached is not None:
                return cached
            root_memo[key] = False
            target = cp.children[u][0]
            result = self._root_sat(tree, t, target, memo, root_memo) or any(
                self._root_sat(tree, kid, u, memo, root_memo)
                for kid in tree.children[t]
            )
            root_memo[key] = result
            return result
        if label != WILDCARD and tree.labels[t] != label:
            return False
        return all(self._sat(tree, t, ku, memo) for ku in cp.children[u])


def matches(tree: XMLTree, pattern: TreePattern) -> bool:
    """One-shot convenience wrapper around :class:`PatternMatcher`."""
    return PatternMatcher(pattern).matches(tree)
