"""repro — Tree-Pattern Similarity Estimation for Scalable Content-based Routing.

A faithful, self-contained reproduction of Chand, Felber & Garofalakis
(ICDE 2007).  The top-level namespace re-exports the public API; see the
subpackages for the full surface:

* :mod:`repro.core` — tree patterns, ``SEL`` selectivity estimation,
  proximity metrics M1/M2/M3, error metrics;
* :mod:`repro.xmltree` — XML document trees, skeletons, exact matching;
* :mod:`repro.synopsis` — the stream synopsis with counter / set / hash
  matching-set summaries, pruning and compression;
* :mod:`repro.dtd` — DTD model, parser, and the built-in NITF/xCBL-scale
  document types;
* :mod:`repro.generators` — DTD-driven document and tree-pattern workload
  generators;
* :mod:`repro.routing` — semantic communities and content-based routing
  simulation;
* :mod:`repro.experiments` — ground truth, harness, and the per-figure
  experiment runners.
"""

from repro.core import (
    ExactCandidates,
    LSHCandidates,
    SelectivityEstimator,
    ShardedExactCandidates,
    SimilarityEstimator,
    SimilarityIndex,
    SimilarityMatrix,
    TreePattern,
    average_relative_error,
    merge_patterns,
    parse_xpath,
    root_mean_square_error,
    to_xpath,
)
from repro.routing import (
    BrokerId,
    BrokerOverlay,
    BatchServiceModel,
    ClosedLoopSource,
    CommunityPolicy,
    DeadlineScheduling,
    DeliveryEngine,
    FifoScheduling,
    HybridPolicy,
    LatencyStats,
    LinkModel,
    OverlayBuilder,
    OverlayStats,
    PatternTrie,
    PerSubscriptionPolicy,
    PriorityScheduling,
    QueuePolicy,
    RoutingTable,
    ServiceModel,
    SourceReport,
    TopologyEvent,
    WeightedFairScheduling,
)
from repro.synopsis import DocumentSynopsis, compress_to_ratio, measure
from repro.xmltree import PatternMatcher, XMLTree, matches, parse_xml, skeleton

__version__ = "1.0.0"

__all__ = [
    "TreePattern",
    "parse_xpath",
    "to_xpath",
    "merge_patterns",
    "SelectivityEstimator",
    "SimilarityEstimator",
    "SimilarityIndex",
    "SimilarityMatrix",
    "ExactCandidates",
    "LSHCandidates",
    "ShardedExactCandidates",
    "BrokerId",
    "BrokerOverlay",
    "OverlayStats",
    "OverlayBuilder",
    "RoutingTable",
    "PatternTrie",
    "TopologyEvent",
    "PerSubscriptionPolicy",
    "CommunityPolicy",
    "HybridPolicy",
    "DeliveryEngine",
    "ServiceModel",
    "BatchServiceModel",
    "LinkModel",
    "FifoScheduling",
    "PriorityScheduling",
    "DeadlineScheduling",
    "WeightedFairScheduling",
    "QueuePolicy",
    "ClosedLoopSource",
    "SourceReport",
    "LatencyStats",
    "average_relative_error",
    "root_mean_square_error",
    "DocumentSynopsis",
    "compress_to_ratio",
    "measure",
    "XMLTree",
    "parse_xml",
    "skeleton",
    "PatternMatcher",
    "matches",
    "__version__",
]
