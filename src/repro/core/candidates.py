"""Candidate-pair generation for similarity evaluation past the O(n²) wall.

Community formation (``leader_clustering``, ``agglomerative_clustering``,
``advertise(CommunityPolicy)``) is gated on pairwise pattern similarity,
and every similarity evaluation costs a joint-selectivity probe — the
dominant cost the :class:`~repro.core.similarity.SimilarityIndex` memo
amortises but cannot avoid.  Enumerating *all* pairs is quadratic in the
subscription population, which is infeasible at the 10⁵–10⁶ scale the
paper's routing results target.  This module makes the candidate set a
first-class, swappable stage:

* :class:`ExactCandidates` — the all-pairs oracle (today's behaviour),
  optionally prefiltered by label-set overlap;
* :class:`LSHCandidates` — banded MinHash locality-sensitive hashing
  (as in "Similarity Search and Locality Sensitive Hashing using
  TCAMs"): each pattern is shingled into its tag *label set* plus its
  merged-trie *spine prefixes* (the structural-similarity seeds PR 6's
  trie exposed), MinHash-signed, and bucketed per band — only patterns
  colliding in at least one band become candidates.  Tunable
  ``bands × rows`` trades recall against candidate-set size, and the
  bucket tables are maintained incrementally under add/remove churn so
  the generator composes with the subscription lifecycle;
* :class:`ShardedExactCandidates` — the exact oracle with its pairwise
  generation loop split across ``multiprocessing`` workers, for
  mid-scale builds where the label-overlap prefilter over n²/2 pairs is
  itself the bottleneck.

A generator instance doubles as its own *template*: :meth:`spawn` clones
the configuration with an empty population (sharing the signature memo,
which depends only on the configuration), which is how each broker of an
overlay — and each clustering pass — gets a private population without
recomputing signatures.

Consumers: ``SimilarityIndex(candidates=...)`` answers non-candidate
pairs 0.0 without touching the provider (``IndexStats.candidate_pruned``
accounts the skips), both clustering functions accept ``candidates=`` to
restrict which pairs they evaluate at all, and
``OverlayBuilder.candidates(...)`` threads a template through
``advertise(CommunityPolicy)``.
"""

from __future__ import annotations

import random
from hashlib import blake2b
from typing import Callable, Hashable, Iterable, Optional, Protocol, Sequence

from repro.core.pattern import TreePattern

__all__ = [
    "CandidateGenerator",
    "ExactCandidates",
    "LSHCandidates",
    "ShardedExactCandidates",
    "pattern_tokens",
]

#: Modulus of the universal hash family: the Mersenne prime 2^61 - 1.
_MERSENNE = (1 << 61) - 1

#: Stable 64-bit token hashes, shared process-wide (tokens are values).
_TOKEN_HASHES: dict = {}

#: Pattern label sets, shared process-wide (patterns are immutable).
_LABEL_SETS: dict[TreePattern, frozenset[str]] = {}


def _token_hash(token: tuple) -> int:
    """A stable (process- and seed-independent) 64-bit hash of one token.

    Python's builtin ``hash`` is salted per process for strings, which
    would make signatures — and therefore communities — irreproducible
    across runs; blake2b is stable and cached per distinct token.
    """
    cached = _TOKEN_HASHES.get(token)
    if cached is None:
        digest = blake2b(repr(token).encode(), digest_size=8).digest()
        cached = int.from_bytes(digest, "big")
        _TOKEN_HASHES[token] = cached
    return cached


def _label_set(pattern: TreePattern) -> frozenset[str]:
    """The pattern's plain tag labels, cached per distinct pattern."""
    cached = _LABEL_SETS.get(pattern)
    if cached is None:
        cached = pattern.tags()
        _LABEL_SETS[pattern] = cached
    return cached


def _spine_prefix_tokens(pattern: TreePattern) -> list[tuple]:
    """One token per prefix of the pattern's merged-trie spine.

    Reuses the trie's canonical spine decomposition — two patterns share
    a spine-prefix token exactly when they would share a trie node, so
    structurally similar patterns (the trie PR's community seeds) agree
    on a long prefix of these tokens.  Imported lazily: the candidate
    layer is core, the trie is routing, and only this shingle borrows
    from the upper layer.
    """
    from repro.routing.trie import _decompose

    steps, _gates = _decompose(pattern)
    spine: list[tuple[str, str]] = []
    tokens: list[tuple] = []
    for axis, label, _branches in steps:
        spine.append((axis, label))
        tokens.append(("spine", tuple(spine)))
    return tokens


def pattern_tokens(pattern: TreePattern) -> list[tuple]:
    """The shingle set MinHash signatures are computed over.

    Label tokens capture *what* the pattern talks about, spine-prefix
    tokens capture *how it is shaped*; their union makes both a shared
    vocabulary and a shared structure raise collision probability.
    """
    tokens: list[tuple] = [("label", tag) for tag in sorted(_label_set(pattern))]
    tokens.extend(_spine_prefix_tokens(pattern))
    return tokens


class CandidateGenerator(Protocol):
    """The pluggable candidate-pair stage of similarity evaluation.

    Keys are caller-chosen hashable handles (similarity-index handles,
    clustering positions, subscriber ids); the generator never interprets
    them.  ``is_candidate`` must be symmetric, must hold for equal
    patterns, and must be a pure function of the two patterns — the
    population only feeds the query-side methods ``candidates_of`` and
    ``pairs``.
    """

    def spawn(self) -> "CandidateGenerator":
        """A fresh, empty generator with this generator's configuration."""
        ...

    def add(self, key: Hashable, pattern: TreePattern) -> None:
        """Admit *pattern* to the population under *key*."""
        ...

    def discard(self, key: Hashable) -> bool:
        """Retire *key*; True when it was present."""
        ...

    def is_candidate(self, p: TreePattern, q: TreePattern) -> bool:
        """Whether the pair (p, q) is worth a similarity evaluation."""
        ...

    def candidates_of(self, pattern: TreePattern) -> set:
        """Keys of the population members that are candidates of *pattern*."""
        ...

    def pairs(self) -> list[tuple]:
        """All candidate key pairs over the population, deduplicated."""
        ...

    def describe(self) -> str:
        """A short label for reports and mode strings."""
        ...

    def __len__(self) -> int: ...


class ExactCandidates:
    """The all-pairs oracle: every pair is a candidate.

    This reproduces the historical behaviour bit for bit, and is the
    ground truth LSH recall is measured against.  With
    ``prefilter_labels=True`` the generator additionally drops pairs
    whose label sets are disjoint — the synopsis-overlap heuristic
    generalising the ``//``-free tag-disjointness prune; see
    ``SimilarityIndex(prune_label_overlap=...)`` for why a pattern with
    an *empty* label set (pure wildcards) is never pruned.
    """

    def __init__(self, prefilter_labels: bool = False) -> None:
        self.prefilter_labels = prefilter_labels
        #: key -> pattern, insertion-ordered: ``pairs()`` follows it.
        self._patterns: dict[Hashable, TreePattern] = {}

    def spawn(self) -> "ExactCandidates":
        """A fresh, empty generator with the same configuration."""
        return ExactCandidates(prefilter_labels=self.prefilter_labels)

    def add(self, key: Hashable, pattern: TreePattern) -> None:
        """Register *pattern* under *key*; keys must be unique."""
        if key in self._patterns:
            raise ValueError(f"duplicate candidate key {key!r}")
        self._patterns[key] = pattern

    def discard(self, key: Hashable) -> bool:
        """Remove *key* if present; returns whether it was registered."""
        return self._patterns.pop(key, None) is not None

    def _labels_overlap(self, p: TreePattern, q: TreePattern) -> bool:
        labels_p = _label_set(p)
        labels_q = _label_set(q)
        # An empty label set (pure wildcard/descendant pattern) asserts
        # nothing about vocabulary, so it overlaps everything.
        return not labels_p or not labels_q or not labels_p.isdisjoint(labels_q)

    def is_candidate(self, p: TreePattern, q: TreePattern) -> bool:
        """Whether the pair survives the (optional) label prefilter."""
        if not self.prefilter_labels or p == q:
            return True
        return self._labels_overlap(p, q)

    def candidates_of(self, pattern: TreePattern) -> set:
        """Keys of every registered pattern that pairs with *pattern*."""
        if not self.prefilter_labels:
            return set(self._patterns)
        return {
            key
            for key, candidate in self._patterns.items()
            if self._labels_overlap(pattern, candidate)
        }

    def pairs(self) -> list[tuple]:
        """Every unordered candidate pair, in insertion order."""
        keys = list(self._patterns)
        if not self.prefilter_labels:
            return [
                (keys[i], keys[j])
                for i in range(len(keys))
                for j in range(i + 1, len(keys))
            ]
        patterns = list(self._patterns.values())
        return [
            (keys[i], keys[j])
            for i in range(len(keys))
            for j in range(i + 1, len(keys))
            if self._labels_overlap(patterns[i], patterns[j])
        ]

    def describe(self) -> str:
        """Short configuration label for benchmark output."""
        if self.prefilter_labels:
            return "exact(prefilter=labels)"
        return "exact"

    def __len__(self) -> int:
        return len(self._patterns)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(population={len(self._patterns)})"


# -- sharded exact generation ------------------------------------------------

#: Worker-global label table, installed once per worker by the pool
#: initializer so each chunk task ships only its index range.
_WORKER_LABELS: Optional[list[Optional[frozenset[str]]]] = None


def _init_pair_worker(labels: list[Optional[frozenset[str]]]) -> None:
    global _WORKER_LABELS
    _WORKER_LABELS = labels


def _pair_chunk(bounds: tuple[int, int]) -> list[tuple[int, int]]:
    """Surviving (i, j) index pairs for rows ``start <= i < stop``."""
    start, stop = bounds
    labels = _WORKER_LABELS
    assert labels is not None
    n = len(labels)
    out: list[tuple[int, int]] = []
    for i in range(start, stop):
        left = labels[i]
        for j in range(i + 1, n):
            right = labels[j]
            if left is None or right is None or not left.isdisjoint(right):
                out.append((i, j))
    return out


class ShardedExactCandidates(ExactCandidates):
    """Exact candidate generation with the pairwise loop sharded.

    Identical output to :class:`ExactCandidates` (property-tested), but
    :meth:`pairs` splits its O(n²/2) row loop across ``workers``
    ``multiprocessing`` processes — worthwhile for mid-scale exact
    builds where the label-overlap prefilter over millions of pairs is
    the bottleneck, pointless below ``min_parallel`` keys (the
    sequential loop wins under fork overhead, so small populations fall
    back automatically, as does any environment where worker processes
    cannot be spawned).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        prefilter_labels: bool = True,
        min_parallel: int = 2048,
    ) -> None:
        super().__init__(prefilter_labels=prefilter_labels)
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if min_parallel < 2:
            raise ValueError("min_parallel must be >= 2")
        self.workers = workers
        self.min_parallel = min_parallel

    def spawn(self) -> "ShardedExactCandidates":
        """A fresh, empty generator with the same configuration."""
        return ShardedExactCandidates(
            workers=self.workers,
            prefilter_labels=self.prefilter_labels,
            min_parallel=self.min_parallel,
        )

    def _resolved_workers(self) -> int:
        if self.workers is not None:
            return self.workers
        import os

        return max(1, min(8, os.cpu_count() or 1))

    def pairs(self) -> list[tuple]:
        """Every unordered candidate pair, sharded across worker processes
        above the ``min_parallel`` population threshold."""
        keys = list(self._patterns)
        n = len(keys)
        workers = self._resolved_workers()
        if workers <= 1 or n < self.min_parallel:
            return super().pairs()
        labels: list[Optional[frozenset[str]]]
        if self.prefilter_labels:
            # None marks match-everything rows: empty label sets, or the
            # prefilter being off entirely.
            labels = [_label_set(p) or None for p in self._patterns.values()]
        else:
            labels = [None] * n
        chunk = max(1, (n + workers * 4 - 1) // (workers * 4))
        bounds = [(start, min(start + chunk, n)) for start in range(0, n, chunk)]
        try:
            import multiprocessing

            with multiprocessing.Pool(
                workers, initializer=_init_pair_worker, initargs=(labels,)
            ) as pool:
                chunks = pool.map(_pair_chunk, bounds)
        except (ImportError, OSError, PermissionError):
            # Restricted environments (no fork/sem support): the oracle
            # must still answer, just sequentially.
            return super().pairs()
        return [
            (keys[i], keys[j]) for chunk_pairs in chunks for i, j in chunk_pairs
        ]

    def describe(self) -> str:
        """Short configuration label for benchmark output."""
        suffix = ", prefilter=labels" if self.prefilter_labels else ""
        return f"sharded_exact(workers={self.workers or 'auto'}{suffix})"


class LSHCandidates:
    """Banded MinHash candidate generation over pattern signatures.

    Each pattern is shingled by :func:`pattern_tokens` (label set plus
    trie spine prefixes) and signed with ``bands × rows`` MinHash values
    from a seeded universal hash family; the signature is split into
    ``bands`` bands of ``rows`` values, and two patterns are candidates
    exactly when at least one band agrees.  For token-set Jaccard
    similarity *s*, the collision probability is the classic
    ``1 - (1 - s^rows)^bands`` S-curve: more rows sharpen the threshold,
    more bands raise recall.  The default 16 × 2 keeps recall above 0.99
    at Jaccard 0.5 while pruning the long dissimilar tail.

    Equal patterns have equal signatures, so duplicates always collide —
    LSH clustering degrades only on *near*-duplicate structure.  The
    bucket tables are plain dict[set] structures maintained per
    :meth:`add` / :meth:`discard`, so the generator rides along with
    subscription churn at O(bands) per event.

    The *default* shingles are structural, so candidate quality tracks
    *structural* similarity.  The paper's metrics are extensional —
    M3 scores two patterns by how much their **matching document sets**
    overlap, and structurally alien patterns (``/nitf`` vs ``//*``) can
    match exactly the same stream.  ``tokens`` swaps the shingle source:
    pass a callable returning any hashable tokens per pattern — most
    usefully the pattern's *synopsis matching-set sample ids* (see
    ``benchmarks/bench_lsh.py``), under which band-collision probability
    tracks the M3 similarity itself, because MinHash over matching-set
    samples estimates exactly the Jaccard quantity M3 measures.

    ``signature_fn`` swaps the MinHash for a caller-supplied signature
    (length ``bands × rows``); :meth:`degenerate` uses it to build the
    one-band, one-row constant-signature configuration under which every
    pair collides — the config that provably reproduces exact
    clustering, pinned by the property suite.

    Signatures depend only on the configuration, never on the
    population, so :meth:`spawn` shares the signature memo between a
    template and all its spawns (each broker's generator reuses
    signatures any other broker already computed).
    """

    def __init__(
        self,
        bands: int = 16,
        rows: int = 2,
        seed: int = 0,
        tokens: Optional[Callable[[TreePattern], Iterable[tuple]]] = None,
        signature_fn: Optional[Callable[[TreePattern], Sequence[int]]] = None,
        _shared: Optional[tuple] = None,
    ) -> None:
        if bands < 1:
            raise ValueError("bands must be >= 1")
        if rows < 1:
            raise ValueError("rows must be >= 1")
        self.bands = bands
        self.rows = rows
        self.seed = seed
        self.tokens = tokens
        self.signature_fn = signature_fn
        if _shared is None:
            rng = random.Random(seed)
            params = tuple(
                (rng.randrange(1, _MERSENNE), rng.randrange(_MERSENNE))
                for _ in range(bands * rows)
            )
            _shared = (params, {})
        self._shared = _shared
        self._params: Sequence[tuple[int, int]] = _shared[0]
        self._signature_memo: dict[TreePattern, tuple[int, ...]] = _shared[1]
        #: band bucket -> keys, with dict-as-ordered-set buckets so
        #: ``pairs()`` is deterministic without requiring orderable keys.
        self._buckets: dict[tuple[int, tuple[int, ...]], dict[Hashable, None]] = {}
        #: key -> its band bucket ids, for O(bands) removal.
        self._bucket_ids: dict[Hashable, tuple[tuple[int, tuple[int, ...]], ...]] = {}

    @classmethod
    def degenerate(cls) -> "LSHCandidates":
        """The collide-everything configuration: one band, one row, and a
        constant (identity) signature — every pair lands in one bucket,
        so LSH-backed clustering equals exact clustering by construction.
        """
        return cls(bands=1, rows=1, signature_fn=lambda pattern: (0,))

    def spawn(self) -> "LSHCandidates":
        """A fresh, empty generator sharing hash parameters and memo."""
        return LSHCandidates(
            bands=self.bands,
            rows=self.rows,
            seed=self.seed,
            tokens=self.tokens,
            signature_fn=self.signature_fn,
            _shared=self._shared,
        )

    # -- signatures ----------------------------------------------------------

    def signature(self, pattern: TreePattern) -> tuple[int, ...]:
        """The pattern's MinHash signature (memoised per distinct pattern)."""
        cached = self._signature_memo.get(pattern)
        if cached is not None:
            return cached
        if self.signature_fn is not None:
            cached = tuple(self.signature_fn(pattern))
            if len(cached) != self.bands * self.rows:
                raise ValueError(
                    f"signature_fn must return bands*rows={self.bands * self.rows} "
                    f"values, got {len(cached)}"
                )
        else:
            source = self.tokens if self.tokens is not None else pattern_tokens
            token_hashes = [_token_hash(token) for token in source(pattern)]
            if not token_hashes:
                # A token-free pattern still needs a well-defined
                # signature; the sentinel collides all such patterns.
                token_hashes = [_token_hash(("no-tokens",))]
            cached = tuple(
                min((a * h + b) % _MERSENNE for h in token_hashes)
                for a, b in self._params
            )
        self._signature_memo[pattern] = cached
        return cached

    def _band_ids(
        self, pattern: TreePattern
    ) -> list[tuple[int, tuple[int, ...]]]:
        signature = self.signature(pattern)
        rows = self.rows
        return [
            (band, signature[band * rows : (band + 1) * rows])
            for band in range(self.bands)
        ]

    # -- population ----------------------------------------------------------

    def add(self, key: Hashable, pattern: TreePattern) -> None:
        """Insert *pattern* into its band buckets; keys must be unique."""
        if key in self._bucket_ids:
            raise ValueError(f"duplicate candidate key {key!r}")
        band_ids = tuple(self._band_ids(pattern))
        self._bucket_ids[key] = band_ids
        for band_id in band_ids:
            self._buckets.setdefault(band_id, {})[key] = None

    def discard(self, key: Hashable) -> bool:
        """Remove *key* from its buckets; returns whether it was present."""
        band_ids = self._bucket_ids.pop(key, None)
        if band_ids is None:
            return False
        for band_id in band_ids:
            bucket = self._buckets[band_id]
            del bucket[key]
            if not bucket:
                del self._buckets[band_id]
        return True

    # -- queries -------------------------------------------------------------

    def is_candidate(self, p: TreePattern, q: TreePattern) -> bool:
        """Whether at least one signature band of *p* and *q* agrees."""
        if p == q:
            return True
        sig_p = self.signature(p)
        sig_q = self.signature(q)
        rows = self.rows
        return any(
            sig_p[band * rows : (band + 1) * rows]
            == sig_q[band * rows : (band + 1) * rows]
            for band in range(self.bands)
        )

    def candidates_of(self, pattern: TreePattern) -> set:
        """Keys sharing at least one band bucket with *pattern*."""
        found: set = set()
        for band_id in self._band_ids(pattern):
            bucket = self._buckets.get(band_id)
            if bucket:
                found.update(bucket)
        return found

    def pairs(self) -> list[tuple]:
        """Every colliding pair, deduplicated across buckets."""
        emitted: set = set()
        out: list[tuple] = []
        for bucket in self._buckets.values():
            if len(bucket) < 2:
                continue
            members = list(bucket)
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    pair = (members[i], members[j])
                    if pair not in emitted and (pair[1], pair[0]) not in emitted:
                        emitted.add(pair)
                        out.append(pair)
        return out

    def bucket_sizes(self) -> list[int]:
        """Occupied-bucket sizes, for load diagnostics and benchmarks."""
        return sorted((len(bucket) for bucket in self._buckets.values()), reverse=True)

    def describe(self) -> str:
        """Short configuration label for benchmark output."""
        if self.signature_fn is not None:
            return f"lsh(bands={self.bands}, rows={self.rows}, custom-signature)"
        if self.tokens is not None:
            return f"lsh(bands={self.bands}, rows={self.rows}, custom-tokens)"
        return f"lsh(bands={self.bands}, rows={self.rows})"

    def __len__(self) -> int:
        return len(self._bucket_ids)

    def __repr__(self) -> str:
        return (
            f"LSHCandidates(bands={self.bands}, rows={self.rows}, "
            f"population={len(self._bucket_ids)}, buckets={len(self._buckets)})"
        )


def resolve_candidates(
    spec: "CandidateGenerator | str | None", **overrides: object
) -> Optional[CandidateGenerator]:
    """Resolve a generator instance or string spelling to a generator.

    ``None`` passes through (no candidate stage); ``"exact"``, ``"lsh"``
    and ``"sharded"`` map to the generator classes with keyword
    overrides forwarded; an instance passes through unchanged, rejecting
    overrides — it already carries its configuration.
    """
    if spec is None:
        if overrides:
            raise ValueError("candidate overrides need a generator spelling")
        return None
    if isinstance(spec, str):
        if spec == "exact":
            return ExactCandidates(**overrides)
        if spec == "lsh":
            return LSHCandidates(**overrides)
        if spec == "sharded":
            return ShardedExactCandidates(**overrides)
        raise ValueError(
            f"unknown candidate generator {spec!r}; choose from "
            "('exact', 'lsh', 'sharded') or pass a CandidateGenerator"
        )
    if overrides:
        raise ValueError(
            "candidate overrides only apply to string spellings; "
            f"configure {type(spec).__name__} directly instead"
        )
    return spec


def candidate_pairs(
    patterns: Iterable[TreePattern], generator: CandidateGenerator
) -> list[tuple[int, int]]:
    """Candidate index pairs over *patterns* under a fresh spawn of
    *generator* — the convenience entry benchmarks and offline builds
    use to measure candidate-set size without touching the template's
    population."""
    fresh = generator.spawn()
    for index, pattern in enumerate(patterns):
        fresh.add(index, pattern)
    return fresh.pairs()
