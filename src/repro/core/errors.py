"""Error metrics of the experimental evaluation (Section 5.1).

* Positive queries (exact selectivity > 0) are scored by the **average
  absolute relative error**::

      Erel = (1/|SP|) * sum_p |P'(p) - P(p)| / P(p)

* Negative queries (exact selectivity 0) are scored by the **root mean
  square error**::

      Esqr = sqrt( (1/|SN|) * sum_p (P'(p) - P(p))^2 )

* Proximity metrics are scored by the average absolute relative error over
  pattern pairs; pairs whose exact metric is zero are excluded (the relative
  error is undefined there), and the count of exclusions is reported.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["ErrorSummary", "average_relative_error", "root_mean_square_error"]


@dataclass(frozen=True)
class ErrorSummary:
    """An aggregate error plus how many samples contributed to it."""

    value: float
    used: int
    skipped: int = 0

    def __float__(self) -> float:
        return self.value

    @property
    def percent(self) -> float:
        """The error as a percentage, as the paper's figures plot it."""
        return 100.0 * self.value

    @property
    def log10(self) -> float:
        """``log10`` of the error (Figure 5's y-axis); ``-inf`` for 0."""
        if self.value <= 0.0:
            return float("-inf")
        return math.log10(self.value)


def average_relative_error(
    exact: Sequence[float], estimated: Sequence[float]
) -> ErrorSummary:
    """``Erel`` over aligned exact/estimated value sequences.

    Entries with exact value 0 cannot be scored relatively and are skipped;
    use :func:`root_mean_square_error` for negative-query workloads.
    """
    if len(exact) != len(estimated):
        raise ValueError("exact and estimated sequences must align")
    total = 0.0
    used = 0
    skipped = 0
    for truth, estimate in zip(exact, estimated, strict=True):
        if truth == 0.0:
            skipped += 1
            continue
        total += abs(estimate - truth) / truth
        used += 1
    value = total / used if used else 0.0
    return ErrorSummary(value=value, used=used, skipped=skipped)


def root_mean_square_error(
    exact: Sequence[float], estimated: Sequence[float]
) -> ErrorSummary:
    """``Esqr`` over aligned exact/estimated value sequences."""
    if len(exact) != len(estimated):
        raise ValueError("exact and estimated sequences must align")
    if not exact:
        return ErrorSummary(value=0.0, used=0)
    total = sum(
        (estimate - truth) ** 2
        for truth, estimate in zip(exact, estimated, strict=True)
    )
    return ErrorSummary(value=math.sqrt(total / len(exact)), used=len(exact))
