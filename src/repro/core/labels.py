"""Label algebra for tree patterns and document trees.

The paper (Section 2) defines three kinds of pattern-node labels:

* a *tag name* — matches exactly that tag;
* ``*`` (wildcard) — matches any single tag;
* ``//`` (descendant operator) — matches some, possibly empty, path.

Pattern roots carry the special label ``/.``, which exists so that patterns
such as ``pc`` in Figure 1 can constrain nodes *anywhere* in the document,
including the document root itself.

A partial order ``a ≼ * ≼ //`` relates labels: a tag is below the wildcard,
which is below the descendant operator, and two tags are comparable only when
equal.  ``SEL`` (Algorithm 1) prunes a synopsis/pattern node pair exactly when
the synopsis label is *not* below the pattern label.
"""

from __future__ import annotations

from typing import Final

WILDCARD: Final[str] = "*"
DESCENDANT: Final[str] = "//"
ROOT_LABEL: Final[str] = "/."

#: Labels that are operators rather than tag names.
SPECIAL_LABELS: Final[frozenset[str]] = frozenset({WILDCARD, DESCENDANT, ROOT_LABEL})

# Characters that may not appear in a tag name.  The set mirrors what the
# XPath-subset parser can re-serialise unambiguously.
_FORBIDDEN_IN_TAG: Final[frozenset[str]] = frozenset('/[]*"\'() \t\n')


def is_tag(label: str) -> bool:
    """Return True when *label* is an ordinary tag name (not an operator)."""
    return label not in SPECIAL_LABELS


def is_wildcard(label: str) -> bool:
    """Return True when *label* is the ``*`` wildcard."""
    return label == WILDCARD


def is_descendant(label: str) -> bool:
    """Return True when *label* is the ``//`` descendant operator."""
    return label == DESCENDANT


def is_root_label(label: str) -> bool:
    """Return True when *label* is the special pattern-root label ``/.``."""
    return label == ROOT_LABEL


def is_valid_tag(tag: str) -> bool:
    """Return True when *tag* is usable as an XML element tag name.

    The check is purposefully lenient (the paper's data sets use plain
    NMTOKEN-like names) but rejects anything that would collide with the
    pattern syntax (slashes, brackets, quotes, whitespace).
    """
    if not tag or tag in SPECIAL_LABELS:
        return False
    return not any(ch in _FORBIDDEN_IN_TAG for ch in tag)


def label_below(lower: str, upper: str) -> bool:
    """Return True when ``lower ≼ upper`` in the label partial order.

    ``a ≼ a`` for equal tags, ``a ≼ * ≼ //`` and the order is reflexive and
    transitive; distinct tags are incomparable.  The root label ``/.`` is only
    below itself.
    """
    if upper == DESCENDANT:
        return lower != ROOT_LABEL or lower == upper
    if upper == WILDCARD:
        return lower == WILDCARD or (is_tag(lower) and lower != ROOT_LABEL)
    return lower == upper


def doc_label_matches(doc_tag: str, pattern_label: str) -> bool:
    """Return True when a document node labeled *doc_tag* can match a pattern
    node labeled *pattern_label*.

    This is the matching-side view of :func:`label_below`: document tags are
    always plain tags, so ``*`` and ``//`` match any of them while a tag label
    requires equality.
    """
    if pattern_label == WILDCARD or pattern_label == DESCENDANT:
        return True
    return doc_tag == pattern_label


def validate_label(label: str) -> None:
    """Raise ``ValueError`` unless *label* is a legal pattern-node label."""
    if label in SPECIAL_LABELS:
        return
    if not is_valid_tag(label):
        raise ValueError(f"invalid pattern label: {label!r}")
