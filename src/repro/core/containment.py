"""Tree-pattern containment — the baseline proximity notion the paper's
introduction argues *against*.

``q ⊑ p`` (p contains q) holds when every document matching q also matches
p.  The introduction points out why containment cannot build semantic
communities: it is asymmetric, boolean, and produces inclusion trees rather
than clusters.  This module implements it anyway, both as the comparison
baseline for the routing layer and because checking our similarity metrics
against containment is a useful sanity property
(``q ⊑ p  ⇒  P(p|q) = 1``).

The decision procedure is the classic **homomorphism test** (Miklau &
Suciu): map every node of p to a node of q such that labels subsume
(``label(q-node) ≼ label(p-node)``), child edges map to child edges, and
``//`` edges map to downward paths.  For patterns with ``*`` and ``//`` the
homomorphism test is sound but not complete (containment for XP^{/,//,*,[]}
is coNP-hard); :func:`contains` documents this and errs on the side of
*not* containing.  On the ``//``-free, ``*``-free fragment it is exact.
"""

from __future__ import annotations

from repro.core.labels import DESCENDANT, WILDCARD
from repro.core.pattern import PatternNode, TreePattern

__all__ = ["contains", "equivalent", "containment_order"]


def _label_subsumes(container_label: str, contained_label: str) -> bool:
    """Can a pattern node labeled *container_label* be mapped onto one
    labeled *contained_label*?  Tags need equality; ``*`` maps onto any tag
    or ``*`` (not onto ``//``)."""
    if container_label == WILDCARD:
        return contained_label != DESCENDANT
    return container_label == contained_label


def _embeds(p_node: PatternNode, q_node: PatternNode, memo: dict) -> bool:
    """Is there a homomorphism of ``Subtree(p_node)`` into
    ``Subtree(q_node)`` anchored at q_node?"""
    # Per-call embedding memo: keys die with this call, never persist or
    # cross a process, and the verdict is id-independent.
    # reprolint: disable=RL003 -- transient per-call memo key, never persisted
    key = (id(p_node), id(q_node))
    cached = memo.get(key)
    if cached is not None:
        return cached

    result: bool
    if p_node.label == DESCENDANT:
        # '//' maps to any downward path of length >= 0 in q: anchor its
        # single child here or below (a '//' edge in q absorbs it too).
        target = p_node.children[0]
        result = _embeds(target, q_node, memo) or any(
            _embeds(p_node, q_child, memo) for q_child in q_node.children
        )
    elif q_node.label == DESCENDANT:
        # q is less specific here than any tag/wildcard p requires.
        result = False
    elif not _label_subsumes(p_node.label, q_node.label):
        result = False
    else:
        result = all(
            any(_embeds(p_child, q_child, memo) for q_child in q_node.children)
            for p_child in p_node.children
        )
    memo[key] = result
    return result


def contains(p: TreePattern, q: TreePattern) -> bool:
    """Sound containment test: True implies every document matching *q*
    matches *p* (``q ⊑ p``).

    Complete on patterns without ``*``/``//`` interactions; in the general
    case a False answer may be a false negative (homomorphism is a
    sufficient condition only).
    """
    memo: dict = {}
    # Pattern-root children anchor at the document root, so each root
    # constraint of p must embed into some root constraint of q with the
    # *same* anchor — i.e. at q's root-constraint nodes.
    return all(
        any(_root_embeds(p_child, q_child, memo) for q_child in q.root_children)
        for p_child in p.root_children
    )


def _root_embeds(p_node: PatternNode, q_node: PatternNode, memo: dict) -> bool:
    """Embedding where both nodes are root constraints (anchored at the
    document root node itself)."""
    if p_node.label == DESCENDANT:
        target = p_node.children[0]
        # '//' at p's root may anchor at the document root (where q's
        # constraint sits) or anywhere below it.
        if _root_embeds(target, q_node, memo):
            return True
        if q_node.label == DESCENDANT:
            return _embeds(p_node, q_node.children[0], memo) or _root_embeds(
                p_node, q_node.children[0], memo
            )
        return any(_embeds(p_node, q_child, memo) for q_child in q_node.children)
    if q_node.label == DESCENDANT:
        return False
    if not _label_subsumes(p_node.label, q_node.label):
        return False
    return all(
        any(_embeds(p_child, q_child, memo) for q_child in q_node.children)
        for p_child in p_node.children
    )


def equivalent(p: TreePattern, q: TreePattern) -> bool:
    """Mutual containment (under the sound test)."""
    return contains(p, q) and contains(q, p)


def containment_order(
    patterns: list[TreePattern],
) -> list[tuple[int, int]]:
    """All containment edges ``(i, j)`` with ``patterns[j] ⊑ patterns[i]``,
    ``i != j`` — the inclusion topology the introduction contrasts with
    semantic communities."""
    edges: list[tuple[int, int]] = []
    for i, p in enumerate(patterns):
        for j, q in enumerate(patterns):
            if i != j and contains(p, q):
                edges.append((i, j))
    return edges
