"""The paper's primary contribution: tree patterns, selectivity estimation
over document synopses, and proximity metrics."""

from repro.core.candidates import (
    CandidateGenerator,
    ExactCandidates,
    LSHCandidates,
    ShardedExactCandidates,
    resolve_candidates,
)
from repro.core.containment import containment_order, contains, equivalent
from repro.core.errors import (
    ErrorSummary,
    average_relative_error,
    root_mean_square_error,
)
from repro.core.labels import DESCENDANT, ROOT_LABEL, WILDCARD, label_below
from repro.core.minimize import is_minimal, minimize
from repro.core.pattern import PatternError, PatternNode, TreePattern
from repro.core.pattern_algebra import merge_patterns, path_pattern, pattern_from_paths
from repro.core.pattern_parser import XPathSyntaxError, parse_xpath, to_xpath
from repro.core.selectivity import SelectivityEstimator
from repro.core.similarity import (
    METRICS,
    IndexStats,
    SimilarityEstimator,
    SimilarityIndex,
    SimilarityMatrix,
    m1_conditional,
    m2_mean_conditional,
    m3_joint_over_union,
)

__all__ = [
    "contains",
    "equivalent",
    "containment_order",
    "minimize",
    "is_minimal",
    "DESCENDANT",
    "ROOT_LABEL",
    "WILDCARD",
    "label_below",
    "PatternError",
    "PatternNode",
    "TreePattern",
    "merge_patterns",
    "path_pattern",
    "pattern_from_paths",
    "XPathSyntaxError",
    "parse_xpath",
    "to_xpath",
    "SelectivityEstimator",
    "CandidateGenerator",
    "ExactCandidates",
    "LSHCandidates",
    "ShardedExactCandidates",
    "resolve_candidates",
    "METRICS",
    "IndexStats",
    "SimilarityEstimator",
    "SimilarityIndex",
    "SimilarityMatrix",
    "m1_conditional",
    "m2_mean_conditional",
    "m3_joint_over_union",
    "ErrorSummary",
    "average_relative_error",
    "root_mean_square_error",
]
