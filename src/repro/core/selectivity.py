"""Tree-pattern selectivity estimation over a document synopsis.

Implements Algorithms 1 and 2 of the paper.  ``SEL(v, u)`` recursively pairs
synopsis nodes with pattern nodes:

* a label mismatch (synopsis label not below the pattern label in the
  ``a ≼ * ≼ //`` order) prunes the pair;
* a pattern leaf contributes the synopsis node's *full* matching set;
* an inner pattern node takes, for each of its children, the union over the
  synopsis node's children, and intersects across pattern children
  (branching = conjunction);
* a ``//`` node either matches a zero-length path (children evaluated at the
  current synopsis node) or recurses into each synopsis child.

``P(p) = |SEL(rs, rp)| / |S(rs)|``.

Two evaluation modes share this structure:

* **set mode** (``"sets"``/``"hashes"``) manipulates
  :class:`~repro.synopsis.setops.SampleView` values, so correlations between
  branches are captured by actual id intersections;
* **counter mode** replaces union / intersection / cardinality by
  maximum / scaled product / value (the independence assumption of [4]).

Folded synopsis labels (``c[f][o[n]]``) are expanded transparently: each
nested label component behaves as a virtual child whose matching set equals
the folded node's, which is exactly the approximation the fold made when it
unioned the samples.

Memoisation makes one evaluation ``O(|HS| · |p|)`` set operations; results
per pattern are additionally cached on the estimator (call
:meth:`SelectivityEstimator.clear_cache` after updating the synopsis).
"""

from __future__ import annotations

from repro.core.labels import DESCENDANT, label_below
from repro.core.pattern import TreePattern
from repro.core.pattern_algebra import merge_patterns
from repro.synopsis.node import LabelTree, SynopsisNode
from repro.synopsis.setops import SampleView, intersect_views, union_views
from repro.synopsis.synopsis import DocumentSynopsis
from repro.xmltree.matcher import CompiledPattern

__all__ = ["SelectivityEstimator"]

_Cursor = tuple[SynopsisNode, LabelTree]


class SelectivityEstimator:
    """Estimates ``P(p)`` and matching-set samples for tree patterns.

    >>> from repro.synopsis.synopsis import DocumentSynopsis
    >>> from repro.xmltree.tree import XMLTree
    >>> from repro.core.pattern_parser import parse_xpath
    >>> synopsis = DocumentSynopsis(mode="sets", capacity=100)
    >>> _ = synopsis.insert_document(XMLTree.from_nested(("a", ["b"])))
    >>> _ = synopsis.insert_document(XMLTree.from_nested(("a", ["c"])))
    >>> SelectivityEstimator(synopsis).selectivity(parse_xpath("/a/b"))
    0.5
    """

    def __init__(self, synopsis: DocumentSynopsis) -> None:
        self.synopsis = synopsis
        self._selectivity_cache: dict[TreePattern, float] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def selectivity(self, pattern: TreePattern) -> float:
        """Estimated probability that a stream document matches *pattern*."""
        cached = self._selectivity_cache.get(pattern)
        if cached is None:
            cached = self._estimate(pattern)
            self._selectivity_cache[pattern] = cached
        return cached

    def joint_selectivity(self, p: TreePattern, q: TreePattern) -> float:
        """Estimated ``P(p ∧ q)`` via the root-merge construction."""
        return self.selectivity(merge_patterns(p, q))

    def estimated_count(self, pattern: TreePattern) -> float:
        """Estimated number of stream documents matching *pattern*."""
        return self.selectivity(pattern) * self.synopsis.n_documents

    def matching_view(self, pattern: TreePattern) -> SampleView:
        """The raw ``SEL(rs, rp)`` sample (set modes only)."""
        if self.synopsis.mode == "counters":
            raise TypeError("counter mode has no matching-set view")
        return self._sel_root_view(CompiledPattern(pattern))

    def clear_cache(self) -> None:
        """Forget per-pattern results after the synopsis has been updated."""
        self._selectivity_cache.clear()

    # ------------------------------------------------------------------
    # shared cursor plumbing
    # ------------------------------------------------------------------

    def _cursor_children(self, node: SynopsisNode, label: LabelTree) -> list[_Cursor]:
        """Children of a cursor: real synopsis children when the cursor sits
        on the node's own label, plus virtual children for folded nested
        components at the current label position."""
        result: list[_Cursor] = []
        if label is node.label:
            for child in node.children:
                result.append((child, child.label))
        for component in label.children:
            result.append((node, component))
        return result

    # ------------------------------------------------------------------
    # set mode (Sets / Hashes)
    # ------------------------------------------------------------------

    def _sel_root_view(self, cp: CompiledPattern) -> SampleView:
        synopsis = self.synopsis
        memo: dict[tuple[int, int, int], SampleView] = {}
        root = synopsis.root
        kids = self._cursor_children(root, root.label)
        branch_views: list[SampleView] = []
        for u in cp.root_children:
            view = union_views(
                [self._sel_view(cp, node, label, u, memo) for node, label in kids]
            ) if kids else SampleView.empty(synopsis.hasher)
            if view.is_empty():
                return SampleView.empty(synopsis.hasher)
            branch_views.append(view)
        return intersect_views(branch_views)

    def _sel_view(
        self,
        cp: CompiledPattern,
        node: SynopsisNode,
        label: LabelTree,
        u: int,
        memo: dict[tuple[int, int, int], SampleView],
    ) -> SampleView:
        if not label_below(label.tag, cp.labels[u]):
            return SampleView.empty(self.synopsis.hasher)
        # Per-call memo over interned LabelTree nodes; keys die with this
        # traversal and the view is id-independent.
        # reprolint: disable=RL003 -- transient per-call memo key, never persisted
        key = (node.node_id, id(label), u)
        cached = memo.get(key)
        if cached is not None:
            return cached

        pattern_kids = cp.children[u]
        if not pattern_kids:
            result = self.synopsis.full_view(node)
        elif cp.labels[u] != DESCENDANT:
            kids = self._cursor_children(node, label)
            if not kids:
                result = SampleView.empty(self.synopsis.hasher)
            else:
                branch_views: list[SampleView] = []
                for child_u in pattern_kids:
                    view = union_views(
                        [
                            self._sel_view(cp, kn, kl, child_u, memo)
                            for kn, kl in kids
                        ]
                    )
                    if view.is_empty():
                        branch_views = []
                        break
                    branch_views.append(view)
                result = (
                    intersect_views(branch_views)
                    if branch_views
                    else SampleView.empty(self.synopsis.hasher)
                )
        else:
            # '//': zero-length mapping evaluates the (single) pattern child
            # at this cursor; otherwise descend into each synopsis child.
            zero = intersect_views(
                [self._sel_view(cp, node, label, cu, memo) for cu in pattern_kids]
            )
            kids = self._cursor_children(node, label)
            deeper = union_views(
                [self._sel_view(cp, kn, kl, u, memo) for kn, kl in kids]
            )
            result = zero.union(deeper)

        memo[key] = result
        return result

    # ------------------------------------------------------------------
    # counter mode
    # ------------------------------------------------------------------

    def _sel_root_count(self, cp: CompiledPattern) -> float:
        synopsis = self.synopsis
        total = float(synopsis.root.summary.count)
        if total <= 0:
            return 0.0
        memo: dict[tuple[int, int, int], float] = {}
        kids = self._cursor_children(synopsis.root, synopsis.root.label)
        probability = 1.0
        for u in cp.root_children:
            best = max(
                (self._sel_count(cp, kn, kl, u, memo, total) for kn, kl in kids),
                default=0.0,
            )
            if best <= 0.0:
                return 0.0
            probability *= best / total
        return probability * total

    def _sel_count(
        self,
        cp: CompiledPattern,
        node: SynopsisNode,
        label: LabelTree,
        u: int,
        memo: dict[tuple[int, int, int], float],
        total: float,
    ) -> float:
        if not label_below(label.tag, cp.labels[u]):
            return 0.0
        # Per-call memo over interned LabelTree nodes; keys die with this
        # traversal and the count is id-independent.
        # reprolint: disable=RL003 -- transient per-call memo key, never persisted
        key = (node.node_id, id(label), u)
        cached = memo.get(key)
        if cached is not None:
            return cached

        pattern_kids = cp.children[u]
        if not pattern_kids:
            result = float(node.summary.count)
        elif cp.labels[u] != DESCENDANT:
            kids = self._cursor_children(node, label)
            result = 1.0 if kids else 0.0
            for child_u in pattern_kids:
                best = max(
                    (
                        self._sel_count(cp, kn, kl, child_u, memo, total)
                        for kn, kl in kids
                    ),
                    default=0.0,
                )
                if best <= 0.0:
                    result = 0.0
                    break
                result *= best / total
            result *= total if result else 0.0
        else:
            zero = 1.0
            for child_u in pattern_kids:
                zero *= (
                    self._sel_count(cp, node, label, child_u, memo, total) / total
                )
            zero *= total
            kids = self._cursor_children(node, label)
            deeper = max(
                (self._sel_count(cp, kn, kl, u, memo, total) for kn, kl in kids),
                default=0.0,
            )
            result = max(zero, deeper)

        memo[key] = result
        return result

    # ------------------------------------------------------------------
    # P(p) — Algorithm 2
    # ------------------------------------------------------------------

    def _estimate(self, pattern: TreePattern) -> float:
        cp = CompiledPattern(pattern)
        synopsis = self.synopsis

        if synopsis.mode == "counters":
            total = float(synopsis.root.summary.count)
            if total <= 0:
                return 0.0
            return _clamp(self._sel_root_count(cp) / total)

        result = self._sel_root_view(cp)
        if synopsis.mode == "sets":
            denominator = synopsis.represented_documents
            if denominator <= 0:
                return 0.0
            return _clamp(len(result.ids) / denominator)

        # Hashes: the SEL sample is expanded at its own level; the
        # denominator |S(rs)| is the whole stream, which the synopsis counts
        # exactly (a single counter).  Aligning the numerator up to the
        # *root* sample's level instead would discard resolution whenever
        # some universal path forced the root sample to a high level —
        # empirically 2-8x worse on selective workloads.
        if synopsis.n_documents <= 0:
            return 0.0
        return _clamp(result.estimate_cardinality() / synopsis.n_documents)


def _clamp(value: float) -> float:
    """Clamp an estimate into the probability range [0, 1]."""
    if value < 0.0:
        return 0.0
    if value > 1.0:
        return 1.0
    return value
