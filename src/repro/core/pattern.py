"""Tree-pattern data model.

A tree pattern (Section 2 of the paper) is an unordered node-labeled tree
that constrains the content and structure of an XML document.  Node labels
are tag names, ``*`` (wildcard), or ``//`` (descendant); the root carries the
special label ``/.``.  A ``//`` node must have exactly one child, which is a
regular node or a ``*``.

Patterns are immutable.  Because they are *unordered*, two patterns that
differ only in sibling order are equal; equality and hashing go through a
canonical form that recursively sorts children.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.labels import (
    DESCENDANT,
    ROOT_LABEL,
    WILDCARD,
    is_tag,
    validate_label,
)

__all__ = ["PatternNode", "TreePattern", "PatternError"]


class PatternError(ValueError):
    """Raised when a structurally invalid tree pattern is constructed."""


class PatternNode:
    """One node of a tree pattern: a label plus zero or more children.

    Instances are immutable; build patterns bottom-up::

        leaf = PatternNode("Mozart")
        last = PatternNode("last", (leaf,))
    """

    __slots__ = ("label", "children", "_hash")

    def __init__(self, label: str, children: tuple["PatternNode", ...] = ()) -> None:
        validate_label(label)
        if label == DESCENDANT:
            if len(children) != 1:
                raise PatternError(
                    f"a '//' node must have exactly one child, got {len(children)}"
                )
            child = children[0]
            if child.label == DESCENDANT:
                raise PatternError("the child of a '//' node must be a tag or '*'")
        if label == ROOT_LABEL:
            raise PatternError(
                "the '/.' label is reserved for pattern roots; "
                "use TreePattern(children=...)"
            )
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "children", tuple(children))
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("PatternNode is immutable")

    # -- structure ---------------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        """True when the node has no children."""
        return not self.children

    def iter_subtree(self) -> Iterator["PatternNode"]:
        """Yield this node and every descendant, pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def size(self) -> int:
        """Number of nodes in the subtree rooted here."""
        return sum(1 for _ in self.iter_subtree())

    def height(self) -> int:
        """Number of nodes on the longest root-to-leaf path of this subtree."""
        if not self.children:
            return 1
        return 1 + max(child.height() for child in self.children)

    def tags(self) -> frozenset[str]:
        """All plain tag names occurring in the subtree."""
        return frozenset(
            node.label for node in self.iter_subtree() if is_tag(node.label)
        )

    # -- canonical form / equality ------------------------------------------

    def _canonical_key(self) -> tuple:
        return (self.label, tuple(sorted(c._canonical_key() for c in self.children)))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PatternNode):
            return NotImplemented
        return self._canonical_key() == other._canonical_key()

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(self._canonical_key())
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        return f"PatternNode({self.label!r}, {len(self.children)} children)"


class TreePattern:
    """A complete tree pattern: a ``/.`` root with constraint subtrees below.

    The root's children are the top-level constraints on a document.  A child
    carrying a tag label constrains the *document root's* tag (Section 2's
    special treatment of ``root(p)``); a ``//`` child lets its subtree match
    anywhere in the document, including at the root.
    """

    __slots__ = ("root_children", "_hash")

    def __init__(self, children: tuple[PatternNode, ...] | list[PatternNode]) -> None:
        children = tuple(children)
        if not children:
            raise PatternError("a tree pattern needs at least one constraint")
        object.__setattr__(self, "root_children", children)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("TreePattern is immutable")

    # -- structure ---------------------------------------------------------

    @property
    def root_label(self) -> str:
        """The special root label ``/.``."""
        return ROOT_LABEL

    def iter_nodes(self) -> Iterator[PatternNode]:
        """Yield every non-root node, pre-order."""
        for child in self.root_children:
            yield from child.iter_subtree()

    def size(self) -> int:
        """Number of nodes including the ``/.`` root."""
        return 1 + sum(child.size() for child in self.root_children)

    def height(self) -> int:
        """Nodes on the longest root-to-leaf path, including the root."""
        return 1 + max(child.height() for child in self.root_children)

    def tags(self) -> frozenset[str]:
        """All plain tag names occurring anywhere in the pattern.

        Any document matching the pattern must contain every one of these
        tags, which makes this set useful for candidate pruning.
        """
        result: frozenset[str] = frozenset()
        for child in self.root_children:
            result |= child.tags()
        return result

    def has_descendant_ops(self) -> bool:
        """True when the pattern uses ``//`` anywhere."""
        return any(node.label == DESCENDANT for node in self.iter_nodes())

    def has_wildcards(self) -> bool:
        """True when the pattern uses ``*`` anywhere."""
        return any(node.label == WILDCARD for node in self.iter_nodes())

    # -- equality ------------------------------------------------------------

    def _canonical_key(self) -> tuple:
        return tuple(sorted(c._canonical_key() for c in self.root_children))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TreePattern):
            return NotImplemented
        return self._canonical_key() == other._canonical_key()

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(self._canonical_key())
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        from repro.core.pattern_parser import to_xpath

        return f"TreePattern({to_xpath(self)!r})"
