"""Tree-pattern proximity metrics (Section 4).

Given any provider of selectivities — a synopsis-backed
:class:`~repro.core.selectivity.SelectivityEstimator` or the exact
:class:`~repro.experiments.ground_truth.GroundTruth` — three metrics estimate
``(p ∼ q)``:

* ``M1(p, q) = P(p | q) = P(p ∧ q) / P(q)`` — asymmetric conditional;
* ``M2(p, q) = (P(p|q) + P(q|p)) / 2`` — symmetrised conditional;
* ``M3(p, q) = P(p ∧ q) / P(p ∨ q)`` — joint-to-union ratio (a Jaccard
  index over the matched document sets).

``P(p ∧ q)`` uses the root-merge construction; ``P(p ∨ q)`` follows by
inclusion-exclusion.  All metrics return values in [0, 1]; pairs whose
denominator is zero (a pattern that matches nothing) evaluate to 0.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.core.pattern import TreePattern

__all__ = [
    "SelectivityProvider",
    "m1_conditional",
    "m2_mean_conditional",
    "m3_joint_over_union",
    "METRICS",
    "SimilarityEstimator",
]


class SelectivityProvider(Protocol):
    """Anything that can score patterns: estimators and ground truth alike."""

    def selectivity(self, pattern: TreePattern) -> float: ...

    def joint_selectivity(self, p: TreePattern, q: TreePattern) -> float: ...


def _clamp(value: float) -> float:
    return 0.0 if value < 0.0 else 1.0 if value > 1.0 else value


def m1_conditional(
    provider: SelectivityProvider, p: TreePattern, q: TreePattern
) -> float:
    """``M1(p, q) = P(p ∧ q) / P(q)`` — probability of p given q."""
    denominator = provider.selectivity(q)
    if denominator <= 0.0:
        return 0.0
    return _clamp(provider.joint_selectivity(p, q) / denominator)


def m2_mean_conditional(
    provider: SelectivityProvider, p: TreePattern, q: TreePattern
) -> float:
    """``M2(p, q) = (P(p|q) + P(q|p)) / 2`` — symmetric mean conditional."""
    sel_p = provider.selectivity(p)
    sel_q = provider.selectivity(q)
    if sel_p <= 0.0 or sel_q <= 0.0:
        return 0.0
    joint = provider.joint_selectivity(p, q)
    return _clamp(joint * (1.0 / sel_p + 1.0 / sel_q) / 2.0)


def m3_joint_over_union(
    provider: SelectivityProvider, p: TreePattern, q: TreePattern
) -> float:
    """``M3(p, q) = P(p ∧ q) / P(p ∨ q)`` — Jaccard over matched documents."""
    joint = provider.joint_selectivity(p, q)
    union = provider.selectivity(p) + provider.selectivity(q) - joint
    if union <= 0.0:
        return 0.0
    return _clamp(joint / union)


#: Registry keyed by the paper's metric names.
METRICS: dict[str, Callable[[SelectivityProvider, TreePattern, TreePattern], float]] = {
    "M1": m1_conditional,
    "M2": m2_mean_conditional,
    "M3": m3_joint_over_union,
}


class SimilarityEstimator:
    """Convenience wrapper evaluating proximity metrics over one provider.

    >>> # with `est` a SelectivityEstimator or GroundTruth:
    >>> # SimilarityEstimator(est).similarity(p, q, metric="M3")
    """

    def __init__(self, provider: SelectivityProvider):
        self.provider = provider

    def similarity(
        self, p: TreePattern, q: TreePattern, metric: str = "M3"
    ) -> float:
        """Proximity of *p* and *q* under the chosen metric."""
        try:
            fn = METRICS[metric]
        except KeyError:
            raise ValueError(
                f"unknown metric {metric!r}; choose from {sorted(METRICS)}"
            ) from None
        return fn(self.provider, p, q)

    def top_k(
        self,
        pattern: TreePattern,
        candidates: list[TreePattern],
        k: int,
        metric: str = "M3",
    ) -> list[tuple[int, float]]:
        """The *k* most similar candidates to *pattern*.

        Returns ``(candidate index, similarity)`` pairs in decreasing
        similarity — the primitive an online broker uses to place a newly
        arriving subscription into its best-fitting semantic community.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        scored = [
            (index, self.similarity(pattern, candidate, metric))
            for index, candidate in enumerate(candidates)
        ]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:k]

    def matrix(
        self, patterns: list[TreePattern], metric: str = "M3"
    ) -> list[list[float]]:
        """Pairwise similarity matrix over *patterns*.

        Symmetric metrics fill both triangles from one evaluation; M1 is
        evaluated in both directions.
        """
        n = len(patterns)
        result = [[0.0] * n for _ in range(n)]
        symmetric = metric in ("M2", "M3")
        for i in range(n):
            result[i][i] = self.similarity(patterns[i], patterns[i], metric)
            for j in range(i + 1, n):
                value = self.similarity(patterns[i], patterns[j], metric)
                result[i][j] = value
                if symmetric:
                    result[j][i] = value
                else:
                    result[j][i] = self.similarity(patterns[j], patterns[i], metric)
        return result
