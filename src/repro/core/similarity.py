"""Tree-pattern proximity metrics (Section 4).

Given any provider of selectivities — a synopsis-backed
:class:`~repro.core.selectivity.SelectivityEstimator` or the exact
:class:`~repro.experiments.ground_truth.GroundTruth` — three metrics estimate
``(p ∼ q)``:

* ``M1(p, q) = P(p | q) = P(p ∧ q) / P(q)`` — asymmetric conditional;
* ``M2(p, q) = (P(p|q) + P(q|p)) / 2`` — symmetrised conditional;
* ``M3(p, q) = P(p ∧ q) / P(p ∨ q)`` — joint-to-union ratio (a Jaccard
  index over the matched document sets).

``P(p ∧ q)`` uses the root-merge construction; ``P(p ∨ q)`` follows by
inclusion-exclusion.  All metrics return values in [0, 1]; pairs whose
denominator is zero (a pattern that matches nothing) evaluate to 0.
Canonically equal patterns short-circuit: their similarity is exactly 1.0
under every metric whenever they match anything at all, without paying for
a joint-selectivity evaluation.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.core.pattern import TreePattern

__all__ = [
    "SelectivityProvider",
    "m1_conditional",
    "m2_mean_conditional",
    "m3_joint_over_union",
    "METRICS",
    "SimilarityEstimator",
    "SimilarityMatrix",
]


class SelectivityProvider(Protocol):
    """Anything that can score patterns: estimators and ground truth alike."""

    def selectivity(self, pattern: TreePattern) -> float: ...

    def joint_selectivity(self, p: TreePattern, q: TreePattern) -> float: ...


def _clamp(value: float) -> float:
    return 0.0 if value < 0.0 else 1.0 if value > 1.0 else value


def _self_similarity(provider: SelectivityProvider, p: TreePattern) -> float:
    """Similarity of a pattern with itself: 1 when it matches anything."""
    return 1.0 if provider.selectivity(p) > 0.0 else 0.0


def m1_conditional(
    provider: SelectivityProvider, p: TreePattern, q: TreePattern
) -> float:
    """``M1(p, q) = P(p ∧ q) / P(q)`` — probability of p given q."""
    if p == q:
        return _self_similarity(provider, p)
    denominator = provider.selectivity(q)
    if denominator <= 0.0:
        return 0.0
    return _clamp(provider.joint_selectivity(p, q) / denominator)


def m2_mean_conditional(
    provider: SelectivityProvider, p: TreePattern, q: TreePattern
) -> float:
    """``M2(p, q) = (P(p|q) + P(q|p)) / 2`` — symmetric mean conditional."""
    if p == q:
        return _self_similarity(provider, p)
    sel_p = provider.selectivity(p)
    sel_q = provider.selectivity(q)
    if sel_p <= 0.0 or sel_q <= 0.0:
        return 0.0
    joint = provider.joint_selectivity(p, q)
    return _clamp(joint * (1.0 / sel_p + 1.0 / sel_q) / 2.0)


def m3_joint_over_union(
    provider: SelectivityProvider, p: TreePattern, q: TreePattern
) -> float:
    """``M3(p, q) = P(p ∧ q) / P(p ∨ q)`` — Jaccard over matched documents."""
    if p == q:
        return _self_similarity(provider, p)
    joint = provider.joint_selectivity(p, q)
    union = provider.selectivity(p) + provider.selectivity(q) - joint
    if union <= 0.0:
        return 0.0
    return _clamp(joint / union)


#: Registry keyed by the paper's metric names.
METRICS: dict[str, Callable[[SelectivityProvider, TreePattern, TreePattern], float]] = {
    "M1": m1_conditional,
    "M2": m2_mean_conditional,
    "M3": m3_joint_over_union,
}


class SimilarityEstimator:
    """Convenience wrapper evaluating proximity metrics over one provider.

    >>> # with `est` a SelectivityEstimator or GroundTruth:
    >>> # SimilarityEstimator(est).similarity(p, q, metric="M3")
    """

    def __init__(self, provider: SelectivityProvider):
        self.provider = provider

    def similarity(
        self, p: TreePattern, q: TreePattern, metric: str = "M3"
    ) -> float:
        """Proximity of *p* and *q* under the chosen metric."""
        try:
            fn = METRICS[metric]
        except KeyError:
            raise ValueError(
                f"unknown metric {metric!r}; choose from {sorted(METRICS)}"
            ) from None
        return fn(self.provider, p, q)

    def top_k(
        self,
        pattern: TreePattern,
        candidates: list[TreePattern],
        k: int,
        metric: str = "M3",
    ) -> list[tuple[int, float]]:
        """The *k* most similar candidates to *pattern*.

        Returns ``(candidate index, similarity)`` pairs in decreasing
        similarity — the primitive an online broker uses to place a newly
        arriving subscription into its best-fitting semantic community.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        scored = [
            (index, self.similarity(pattern, candidate, metric))
            for index, candidate in enumerate(candidates)
        ]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:k]

    def matrix(
        self, patterns: list[TreePattern], metric: str = "M3"
    ) -> list[list[float]]:
        """Pairwise similarity matrix over *patterns*.

        Symmetric metrics fill both triangles from one evaluation; M1 is
        evaluated in both directions.
        """
        n = len(patterns)
        result = [[0.0] * n for _ in range(n)]
        symmetric = metric in ("M2", "M3")
        for i in range(n):
            result[i][i] = self.similarity(patterns[i], patterns[i], metric)
            for j in range(i + 1, n):
                value = self.similarity(patterns[i], patterns[j], metric)
                result[i][j] = value
                if symmetric:
                    result[j][i] = value
                else:
                    result[j][i] = self.similarity(patterns[j], patterns[i], metric)
        return result


class SimilarityMatrix:
    """A cached pairwise-similarity engine over a fixed pattern population.

    Every proximity metric of Section 4 is an arithmetic combination of
    ``P(p)``, ``P(q)`` and ``P(p ∧ q)``; the joint term dominates the cost
    (it requires a root-merge match or a synopsis probe).  This engine
    memoises both primitives so that **each distinct pattern's selectivity
    and each unordered distinct pattern pair's joint selectivity reach the
    underlying provider at most once**, no matter how many metric
    evaluations, matrix builds or clustering passes consume the engine.

    The class itself implements the :class:`SelectivityProvider` protocol
    (memoising pass-through), so the M1/M2/M3 callables evaluate through it
    unchanged.  It is also directly usable as the ``similarity(p, q)``
    callable expected by :mod:`repro.routing.community`;
    ``agglomerative_clustering`` additionally detects an aligned matrix
    and reads its precomputed values without re-dispatching, while
    ``leader_clustering`` evaluates lazily through the memo.

    >>> # matrix = SimilarityMatrix(corpus, subscriptions, metric="M3")
    >>> # matrix.top_k(0, 3)          # closest communities for pattern 0
    >>> # leader_clustering(subscriptions, matrix, threshold=0.5)
    """

    def __init__(
        self,
        provider: SelectivityProvider,
        patterns: list[TreePattern],
        metric: str = "M3",
    ):
        if metric not in METRICS:
            raise ValueError(
                f"unknown metric {metric!r}; choose from {sorted(METRICS)}"
            )
        self.provider = provider
        self.patterns = list(patterns)
        self.metric = metric
        self._selectivity_memo: dict[TreePattern, float] = {}
        self._joint_memo: dict[frozenset[TreePattern], float] = {}
        self._values: list[list[float]] | None = None

    # -- memoised SelectivityProvider protocol ------------------------------

    def selectivity(self, pattern: TreePattern) -> float:
        """``P(p)`` from the provider, computed once per distinct pattern."""
        cached = self._selectivity_memo.get(pattern)
        if cached is None:
            cached = self.provider.selectivity(pattern)
            self._selectivity_memo[pattern] = cached
        return cached

    def joint_selectivity(self, p: TreePattern, q: TreePattern) -> float:
        """``P(p ∧ q)``, computed once per unordered distinct pattern pair.

        The memo key is the frozen *pair* ``{p, q}`` under canonical pattern
        equality, so ``(p, q)`` and ``(q, p)`` — and any equal-by-canon
        duplicates in the population — share one provider call.
        """
        key = frozenset((p, q))
        cached = self._joint_memo.get(key)
        if cached is None:
            cached = self.provider.joint_selectivity(p, q)
            self._joint_memo[key] = cached
        return cached

    # -- metric evaluation ---------------------------------------------------

    def similarity(
        self, p: TreePattern, q: TreePattern, metric: str | None = None
    ) -> float:
        """Proximity of two (arbitrary) patterns through the memo."""
        name = self.metric if metric is None else metric
        try:
            fn = METRICS[name]
        except KeyError:
            raise ValueError(
                f"unknown metric {name!r}; choose from {sorted(METRICS)}"
            ) from None
        return fn(self, p, q)

    def __call__(self, p: TreePattern, q: TreePattern) -> float:
        """Make the engine a drop-in ``SimilarityFn`` for the routing layer."""
        return self.similarity(p, q)

    def __len__(self) -> int:
        return len(self.patterns)

    # -- whole-population queries -------------------------------------------

    @property
    def values(self) -> list[list[float]]:
        """The full pairwise matrix over the population (computed lazily,
        once).  ``values[i][j]`` is the configured metric on patterns i, j;
        asymmetric M1 fills both triangles in their respective directions."""
        if self._values is None:
            n = len(self.patterns)
            symmetric = self.metric != "M1"
            result = [[0.0] * n for _ in range(n)]
            for i in range(n):
                result[i][i] = self.similarity(
                    self.patterns[i], self.patterns[i]
                )
                for j in range(i + 1, n):
                    value = self.similarity(self.patterns[i], self.patterns[j])
                    result[i][j] = value
                    result[j][i] = value if symmetric else self.similarity(
                        self.patterns[j], self.patterns[i]
                    )
            self._values = result
        return self._values

    def _normalize(self, index: int) -> int:
        if not -len(self.patterns) <= index < len(self.patterns):
            raise IndexError(f"pattern index {index} out of range")
        return index % len(self.patterns)

    def top_k(self, index: int, k: int) -> list[tuple[int, float]]:
        """The *k* most similar population members to ``patterns[index]``
        (excluding itself), as ``(index, similarity)`` in decreasing
        similarity with index as tie-break."""
        if k < 1:
            raise ValueError("k must be at least 1")
        index = self._normalize(index)
        scored = [
            (other, score)
            for other, score in enumerate(self.values[index])
            if other != index
        ]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:k]

    def neighbors(self, index: int, threshold: float) -> list[tuple[int, float]]:
        """All population members with similarity ``>= threshold`` to
        ``patterns[index]`` (excluding itself), in decreasing similarity."""
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        index = self._normalize(index)
        found = [
            (other, score)
            for other, score in enumerate(self.values[index])
            if other != index and score >= threshold
        ]
        found.sort(key=lambda pair: (-pair[1], pair[0]))
        return found

    # -- introspection -------------------------------------------------------

    @property
    def distinct_joint_pairs(self) -> int:
        """Distinct unordered pattern pairs whose joint selectivity has been
        computed so far — the number of provider calls the memo admitted."""
        return len(self._joint_memo)

    def __repr__(self) -> str:
        return (
            f"SimilarityMatrix(patterns={len(self.patterns)}, "
            f"metric={self.metric!r}, joint_pairs={len(self._joint_memo)})"
        )
