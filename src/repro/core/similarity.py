"""Tree-pattern proximity metrics (Section 4).

Given any provider of selectivities — a synopsis-backed
:class:`~repro.core.selectivity.SelectivityEstimator` or the exact
:class:`~repro.experiments.ground_truth.GroundTruth` — three metrics estimate
``(p ∼ q)``:

* ``M1(p, q) = P(p | q) = P(p ∧ q) / P(q)`` — asymmetric conditional;
* ``M2(p, q) = (P(p|q) + P(q|p)) / 2`` — symmetrised conditional;
* ``M3(p, q) = P(p ∧ q) / P(p ∨ q)`` — joint-to-union ratio (a Jaccard
  index over the matched document sets).

``P(p ∧ q)`` uses the root-merge construction; ``P(p ∨ q)`` follows by
inclusion-exclusion.  All metrics return values in [0, 1]; pairs whose
denominator is zero (a pattern that matches nothing) evaluate to 0.
Canonically equal patterns short-circuit: their similarity is exactly 1.0
under every metric whenever they match anything at all, without paying for
a joint-selectivity evaluation.

Two engines amortise the dominant joint-selectivity cost across queries:
:class:`SimilarityIndex` maintains a *mutable* population under
subscription churn (handle-based ``add``/``remove``, lazily evaluated
rows, a tag-disjointness prefilter with :class:`IndexStats` accounting),
and :class:`SimilarityMatrix` freezes a population for offline clustering
as a thin positional view over the same machinery.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Protocol

from repro.core.candidates import CandidateGenerator
from repro.core.labels import is_tag
from repro.core.pattern import TreePattern

__all__ = [
    "SelectivityProvider",
    "m1_conditional",
    "m2_mean_conditional",
    "m3_joint_over_union",
    "METRICS",
    "SimilarityEstimator",
    "IndexStats",
    "SimilarityIndex",
    "SimilarityMatrix",
]


class SelectivityProvider(Protocol):
    """Anything that can score patterns: estimators and ground truth alike."""

    def selectivity(self, pattern: TreePattern) -> float:
        """``P(p)`` — probability a stream document matches *pattern*."""
        ...

    def joint_selectivity(self, p: TreePattern, q: TreePattern) -> float:
        """``P(p ∧ q)`` — probability a document matches both patterns."""
        ...


def _clamp(value: float) -> float:
    return 0.0 if value < 0.0 else 1.0 if value > 1.0 else value


def _self_similarity(provider: SelectivityProvider, p: TreePattern) -> float:
    """Similarity of a pattern with itself: 1 when it matches anything."""
    return 1.0 if provider.selectivity(p) > 0.0 else 0.0


def m1_conditional(
    provider: SelectivityProvider, p: TreePattern, q: TreePattern
) -> float:
    """``M1(p, q) = P(p ∧ q) / P(q)`` — probability of p given q."""
    if p == q:
        return _self_similarity(provider, p)
    denominator = provider.selectivity(q)
    if denominator <= 0.0:
        return 0.0
    return _clamp(provider.joint_selectivity(p, q) / denominator)


def m2_mean_conditional(
    provider: SelectivityProvider, p: TreePattern, q: TreePattern
) -> float:
    """``M2(p, q) = (P(p|q) + P(q|p)) / 2`` — symmetric mean conditional."""
    if p == q:
        return _self_similarity(provider, p)
    sel_p = provider.selectivity(p)
    sel_q = provider.selectivity(q)
    if sel_p <= 0.0 or sel_q <= 0.0:
        return 0.0
    joint = provider.joint_selectivity(p, q)
    return _clamp(joint * (1.0 / sel_p + 1.0 / sel_q) / 2.0)


def m3_joint_over_union(
    provider: SelectivityProvider, p: TreePattern, q: TreePattern
) -> float:
    """``M3(p, q) = P(p ∧ q) / P(p ∨ q)`` — Jaccard over matched documents."""
    if p == q:
        return _self_similarity(provider, p)
    joint = provider.joint_selectivity(p, q)
    union = provider.selectivity(p) + provider.selectivity(q) - joint
    if union <= 0.0:
        return 0.0
    return _clamp(joint / union)


#: Registry keyed by the paper's metric names.
METRICS: dict[str, Callable[[SelectivityProvider, TreePattern, TreePattern], float]] = {
    "M1": m1_conditional,
    "M2": m2_mean_conditional,
    "M3": m3_joint_over_union,
}

#: Sentinel distinguishing "anchor not cached" from a cached ``None``.
_UNSET = object()


class SimilarityEstimator:
    """Convenience wrapper evaluating proximity metrics over one provider.

    >>> # with `est` a SelectivityEstimator or GroundTruth:
    >>> # SimilarityEstimator(est).similarity(p, q, metric="M3")
    """

    def __init__(self, provider: SelectivityProvider) -> None:
        self.provider = provider

    def similarity(
        self, p: TreePattern, q: TreePattern, metric: str = "M3"
    ) -> float:
        """Proximity of *p* and *q* under the chosen metric."""
        try:
            fn = METRICS[metric]
        except KeyError:
            raise ValueError(
                f"unknown metric {metric!r}; choose from {sorted(METRICS)}"
            ) from None
        return fn(self.provider, p, q)

    def top_k(
        self,
        pattern: TreePattern,
        candidates: list[TreePattern],
        k: int,
        metric: str = "M3",
    ) -> list[tuple[int, float]]:
        """The *k* most similar candidates to *pattern*.

        Returns ``(candidate index, similarity)`` pairs in decreasing
        similarity — the primitive an online broker uses to place a newly
        arriving subscription into its best-fitting semantic community.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        scored = (
            (index, self.similarity(pattern, candidate, metric))
            for index, candidate in enumerate(candidates)
        )
        # A bounded heap instead of a full sort: k ≪ n queries pay
        # O(n log k), with ties resolved exactly as the sort did
        # (descending similarity, ascending index).
        return heapq.nlargest(k, scored, key=lambda pair: (pair[1], -pair[0]))

    def matrix(
        self, patterns: list[TreePattern], metric: str = "M3"
    ) -> list[list[float]]:
        """Pairwise similarity matrix over *patterns*.

        Delegates to the :class:`SimilarityMatrix` engine, so each distinct
        pattern's selectivity and each unordered pair's joint selectivity
        reach the provider at most once; symmetric metrics fill both
        triangles from one evaluation, M1 is evaluated in both directions.
        """
        return SimilarityMatrix(self.provider, patterns, metric=metric).values


@dataclass
class IndexStats:
    """Provider-call accounting of one :class:`SimilarityIndex`.

    ``joint_evaluated`` counts the distinct unordered pattern pairs whose
    joint selectivity actually reached the provider; ``joint_pruned`` the
    distinct pairs the tag-disjointness prefilter answered with 0 instead;
    ``joint_ratio_pruned`` the distinct pairs the selectivity-ratio bound
    skipped (their metric provably cannot reach the configured threshold),
    broken down per metric in ``ratio_pruned_by_metric`` — M1 counts
    *directed* pairs, because its bound depends on the conditioning side.
    Pruned versus evaluated is exactly the sparse-evaluation saving.
    ``label_overlap_pruned`` counts the distinct pairs the opt-in
    label-overlap heuristic (``prune_label_overlap=True``) answered 0
    instead of probing; ``candidate_pruned`` the distinct pairs a
    configured :class:`~repro.core.candidates.CandidateGenerator`
    declared non-candidates, skipped before any selectivity work at all.
    ``memo_evicted`` counts memo entries dropped because their pattern
    left the live population (see :meth:`SimilarityIndex.compact`);
    ``memo_lru_evicted`` counts joint entries dropped by the optional
    ``memo_capacity`` LRU cap instead (an LRU-evicted pair may recompute
    later, so ``joint_evaluated`` then counts it again).
    """

    joint_evaluated: int = 0
    joint_pruned: int = 0
    joint_ratio_pruned: int = 0
    label_overlap_pruned: int = 0
    candidate_pruned: int = 0
    selectivity_evaluated: int = 0
    adds: int = 0
    removes: int = 0
    memo_evicted: int = 0
    memo_lru_evicted: int = 0
    ratio_pruned_by_metric: dict[str, int] = field(default_factory=dict)

    @property
    def prune_ratio(self) -> float:
        """Fraction of decided joint pairs a prefilter answered.

        Counts the joint-level prefilters (tag-disjointness, label
        overlap, selectivity ratio); ``candidate_pruned`` pairs never
        became joint decisions and are accounted separately.
        """
        pruned = (
            self.joint_pruned
            + self.joint_ratio_pruned
            + self.label_overlap_pruned
        )
        decided = self.joint_evaluated + pruned
        if decided == 0:
            return 0.0
        return pruned / decided


class SimilarityIndex:
    """A mutable, incrementally maintained pairwise-similarity engine.

    The fixed-population :class:`SimilarityMatrix` serves offline
    re-organisation; a live broker instead sees a *churning* subscription
    population — patterns arrive (:meth:`add`) and leave (:meth:`remove`)
    one at a time, and rebuilding an n×n matrix per event would waste the
    O(n²) joint-selectivity work that dominates the cost.  This index keeps
    that work incremental:

    * **handles** — :meth:`add` returns a monotonically increasing integer
      handle; :meth:`remove` retires it.  The live population is the
      insertion-ordered set of surviving handles.
    * **lazy rows** — nothing is evaluated at mutation time.  A similarity
      value is computed when first demanded (:meth:`row`, :meth:`top_k`,
      :meth:`neighbors`, or plain calls), and both primitives are memoised
      *by pattern*, so only pairs never seen before reach the provider:
      adding a pattern to an n-pattern population costs at most n new joint
      evaluations, removing one costs zero, and re-adding a previously seen
      pattern costs nothing.  A full rebuild never happens.
    * **tag-disjointness prefilter** — for ``//``-free patterns every
      root-level tag child pins the *document root's* tag (Section 2 root
      semantics), so two such patterns anchored at disjoint tag sets can
      never match a common document: ``P(p ∧ q)`` is provably 0 and the
      provider call is skipped.  :attr:`stats` exposes pruned versus
      evaluated pair counts.  The prefilter is sound for exact providers by
      construction; for synopsis estimators it can only *sharpen* a pair
      the estimator would have scored ≥ 0 (pass ``prune_disjoint=False``
      to reproduce raw estimator output bit-for-bit).
    * **selectivity-ratio prefilter** (``prune_below``) — every metric is
      capped by a function of the marginal selectivities alone, because
      ``P(p ∧ q) ≤ min(P(p), P(q))``:

      - ``M3(p, q) ≤ min(P(p), P(q)) / max(P(p), P(q))`` (the joint is
        also bounded below the union);
      - ``M2(p, q) ≤ (1 + min/max) / 2``;
      - ``M1(p, q) ≤ min(P(p), P(q)) / P(q)`` (direction-dependent).

      When a caller only thresholds similarities (leader clustering at a
      fixed threshold), a pair whose bound already falls below the
      threshold is answered 0.0 without the joint-selectivity call — the
      two single-pattern selectivities it needs are memoised and shared
      anyway.  Sound for providers whose joint estimates respect the min
      bound (exact providers by construction); pairs whose joint value is
      already memoised return the exact value instead.  Accounted in
      ``stats.joint_ratio_pruned`` and per metric in
      ``stats.ratio_pruned_by_metric``.  The legacy ``m3_prune_below=``
      spelling keeps its historical meaning: it only arms the bound under
      the M3 metric.
    * **memo eviction** — the pattern-keyed memos deliberately survive
      churn (a re-add is free), so under sustained churn dead patterns
      accumulate.  :meth:`compact` drops every memo row whose pattern no
      longer appears in any live handle (``stats.memo_evicted`` counts the
      dropped entries); constructing with ``evict_dead_memos=True`` does
      this automatically whenever a pattern's last live handle is removed,
      trading re-add cost for bounded memory.
    * **LRU memo cap** (``memo_capacity``) — :meth:`compact` bounds the
      memos only as tightly as the live population; an index whose *live*
      population itself keeps growing still grows O(n²) joint entries.
      ``memo_capacity=k`` caps the joint memo at the *k* most recently
      used pairs (least-recently-used entries are dropped as new pairs
      arrive, counted in ``stats.memo_lru_evicted``); an evicted pair
      simply recomputes if demanded again.  The O(n) selectivity and
      anchor memos are never capped — they are the cheap primitives the
      prefilters rely on.
    * **label-overlap prefilter** (``prune_label_overlap``) — the
      tag-disjointness prune generalised to ``//``-patterns: a pair
      whose plain-tag label *sets* are disjoint (and both non-empty —
      pure-wildcard patterns assert nothing about vocabulary) is
      answered 0 without a provider call, counted in
      ``stats.label_overlap_pruned``.  Unlike the root-anchor prune this
      is a *heuristic*: two label-disjoint ``//``-patterns can share
      matching documents, so the prune deliberately trades exactness for
      probe count and is off by default.
    * **candidate generation** (``candidates``) — a
      :class:`~repro.core.candidates.CandidateGenerator` consulted
      *before* any selectivity work: a non-candidate pair's similarity
      is answered 0.0 outright (``stats.candidate_pruned``), which is
      what makes LSH-backed community formation sublinear.  The index
      keeps the generator's population in sync with its own under
      :meth:`add` / :meth:`remove` churn, keyed by handle.

    The index implements the :class:`SelectivityProvider` protocol
    (memoising, pruning pass-through) so the M1/M2/M3 callables evaluate
    through it unchanged, and it is directly usable as the
    ``similarity(p, q)`` callable expected by :mod:`repro.routing.community`.

    >>> # index = SimilarityIndex(provider, metric="M3")
    >>> # h = index.add(pattern)      # O(1); no provider calls yet
    >>> # index.row(h)                # lazily evaluates this row only
    >>> # index.remove(h)             # O(1); memo survives for re-adds
    """

    def __init__(
        self,
        provider: SelectivityProvider,
        patterns: Iterable[TreePattern] = (),
        metric: str = "M3",
        prune_disjoint: bool = True,
        m3_prune_below: Optional[float] = None,
        evict_dead_memos: bool = False,
        prune_below: Optional[float] = None,
        memo_capacity: Optional[int] = None,
        prune_label_overlap: bool = False,
        candidates: Optional[CandidateGenerator] = None,
    ) -> None:
        if metric not in METRICS:
            raise ValueError(
                f"unknown metric {metric!r}; choose from {sorted(METRICS)}"
            )
        for name, bound in (
            ("m3_prune_below", m3_prune_below),
            ("prune_below", prune_below),
        ):
            if bound is not None and not 0.0 <= bound <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if memo_capacity is not None and memo_capacity < 1:
            raise ValueError("memo_capacity must be >= 1")
        self.provider = provider
        self.metric = metric
        self.prune_disjoint = prune_disjoint
        # The legacy M3-only spelling arms the generic bound only when the
        # index actually evaluates M3 (its historical behaviour).
        if prune_below is None and metric == "M3":
            prune_below = m3_prune_below
        self.prune_below = prune_below
        self.memo_capacity = memo_capacity
        self.evict_dead_memos = evict_dead_memos
        self.prune_label_overlap = prune_label_overlap
        self.candidates = candidates
        self.stats = IndexStats()
        self._metric_fn = METRICS[metric]
        self._population: dict[int, TreePattern] = {}
        self._next_handle = 0
        #: Live handles per distinct pattern — the population eviction is
        #: tied to (a dead pattern is one whose count reached zero).
        self._live_counts: dict[TreePattern, int] = {}
        self._selectivity_memo: dict[TreePattern, float] = {}
        #: Insertion/recency-ordered (dicts preserve order; hits under a
        #: memo_capacity cap are moved to the back, so the front is LRU).
        self._joint_memo: dict[frozenset[TreePattern], float] = {}
        #: Pairs the selectivity-ratio bound answered, so the stats
        #: counters stay distinct-pair counts like the others.  Keys are
        #: frozensets for the symmetric metrics and ordered tuples for
        #: M1, whose bound depends on the conditioning direction.
        self._ratio_pruned: set = set()
        #: Root-anchor cache: frozenset of root tag labels for prunable
        #: (``//``-free, tag-anchored) patterns, None for unprunable ones.
        self._anchor_memo: dict[TreePattern, Optional[frozenset[str]]] = {}
        #: Plain-tag label sets for the label-overlap prefilter.
        self._label_memo: dict[TreePattern, frozenset[str]] = {}
        #: Distinct pairs the candidate generator answered, keeping
        #: ``stats.candidate_pruned`` a distinct-pair count.
        self._candidate_pruned: set[frozenset[TreePattern]] = set()
        for pattern in patterns:
            self.add(pattern)

    # -- population lifecycle ------------------------------------------------

    def add(self, pattern: TreePattern) -> int:
        """Admit *pattern* and return its handle.

        O(1): no similarity is evaluated until a row is demanded, and pairs
        already seen (for this or an equal pattern) never recompute.
        """
        handle = self._next_handle
        self._next_handle += 1
        self._population[handle] = pattern
        self._live_counts[pattern] = self._live_counts.get(pattern, 0) + 1
        if self.candidates is not None:
            self.candidates.add(handle, pattern)
        self.stats.adds += 1
        return handle

    def remove(self, handle: int) -> TreePattern:
        """Retire *handle*; returns the pattern it referenced.

        O(1): rows referencing the pattern simply stop being produced; the
        pattern-keyed memos survive, so a later re-add is free — unless the
        index was built with ``evict_dead_memos=True``, in which case the
        departing pattern's memo rows are dropped as soon as its last live
        handle goes (one pass over the joint memo).
        """
        try:
            pattern = self._population.pop(handle)
        except KeyError:
            raise KeyError(f"unknown or already removed handle {handle}") from None
        if self.candidates is not None:
            self.candidates.discard(handle)
        self.stats.removes += 1
        remaining = self._live_counts.get(pattern, 0) - 1
        if remaining > 0:
            self._live_counts[pattern] = remaining
        else:
            self._live_counts.pop(pattern, None)
            if self.evict_dead_memos:
                self._evict({pattern})
        return pattern

    def compact(self) -> int:
        """Drop memo rows whose pattern no longer has any live handle.

        The population-tied eviction for long-running churn workloads: the
        selectivity, root-anchor and joint-selectivity memos are scanned
        once and every entry mentioning a dead pattern is dropped (a later
        re-add simply recomputes).  Returns the number of entries evicted,
        which is also accumulated in ``stats.memo_evicted``.
        """
        dead = {
            pattern
            for pattern in self._selectivity_memo
            if pattern not in self._live_counts
        }
        dead.update(
            pattern
            for pattern in self._anchor_memo
            if pattern not in self._live_counts
        )
        dead.update(
            pattern
            for pattern in self._label_memo
            if pattern not in self._live_counts
        )
        for key in self._joint_memo:
            for pattern in key:
                if pattern not in self._live_counts:
                    dead.add(pattern)
        return self._evict(dead)

    def _evict(self, dead: set[TreePattern]) -> int:
        """Drop every memo entry mentioning a pattern in *dead*."""
        if not dead:
            return 0
        evicted = 0
        for pattern in dead:
            if self._selectivity_memo.pop(pattern, None) is not None:
                evicted += 1
            self._anchor_memo.pop(pattern, None)
            self._label_memo.pop(pattern, None)
        stale = [
            key for key in self._joint_memo if not dead.isdisjoint(key)
        ]
        for key in stale:
            del self._joint_memo[key]
        evicted += len(stale)
        self._ratio_pruned = {
            key for key in self._ratio_pruned if dead.isdisjoint(key)
        }
        self._candidate_pruned = {
            key for key in self._candidate_pruned if dead.isdisjoint(key)
        }
        self.stats.memo_evicted += evicted
        return evicted

    @property
    def memo_size(self) -> int:
        """Memoised entries held: selectivities plus joint pairs."""
        return len(self._selectivity_memo) + len(self._joint_memo)

    @property
    def m3_prune_below(self) -> Optional[float]:
        """The armed selectivity-ratio bound under M3 (legacy spelling).

        None whenever the index evaluates a different metric, matching
        the historical behaviour of the ``m3_prune_below=`` parameter;
        read :attr:`prune_below` for the metric-generic bound.
        """
        return self.prune_below if self.metric == "M3" else None

    def _trim_joint_memo(self) -> None:
        """Enforce the LRU cap after a joint-memo insertion."""
        if self.memo_capacity is None:
            return
        while len(self._joint_memo) > self.memo_capacity:
            del self._joint_memo[next(iter(self._joint_memo))]
            self.stats.memo_lru_evicted += 1

    def pattern(self, handle: int) -> TreePattern:
        """The pattern a live handle references."""
        try:
            return self._population[handle]
        except KeyError:
            raise KeyError(f"unknown or already removed handle {handle}") from None

    def handles(self) -> list[int]:
        """Live handles in insertion order."""
        return list(self._population)

    @property
    def patterns(self) -> list[TreePattern]:
        """Live patterns in insertion order."""
        return list(self._population.values())

    def __len__(self) -> int:
        return len(self._population)

    def __contains__(self, handle: int) -> bool:
        return handle in self._population

    # -- memoised, pruning SelectivityProvider protocol ----------------------

    def selectivity(self, pattern: TreePattern) -> float:
        """``P(p)`` from the provider, computed once per distinct pattern."""
        cached = self._selectivity_memo.get(pattern)
        if cached is None:
            self.stats.selectivity_evaluated += 1
            cached = self.provider.selectivity(pattern)
            self._selectivity_memo[pattern] = cached
        return cached

    def _root_anchors(self, pattern: TreePattern) -> Optional[frozenset[str]]:
        """The root tag labels pinning the document root, or None.

        Only ``//``-free patterns with at least one tag-labelled root child
        participate: each such child requires the document root to carry
        exactly that tag, so the anchor set must be satisfiable jointly.
        """
        cached = self._anchor_memo.get(pattern, _UNSET)
        if cached is not _UNSET:
            return cached
        anchors: Optional[frozenset[str]] = None
        if not pattern.has_descendant_ops():
            tags = frozenset(
                child.label
                for child in pattern.root_children
                if is_tag(child.label)
            )
            anchors = tags or None
        self._anchor_memo[pattern] = anchors
        return anchors

    def _labels(self, pattern: TreePattern) -> frozenset[str]:
        """The pattern's plain tag labels, cached per distinct pattern."""
        cached = self._label_memo.get(pattern)
        if cached is None:
            cached = pattern.tags()
            self._label_memo[pattern] = cached
        return cached

    def joint_selectivity(self, p: TreePattern, q: TreePattern) -> float:
        """``P(p ∧ q)``, computed once per unordered distinct pattern pair.

        Pairs of ``//``-free patterns whose root tag anchors are disjoint
        are answered 0 without a provider call: the document root would
        have to carry two different tags at once.  With
        ``prune_label_overlap=True``, pairs whose plain-tag label sets
        are disjoint (both non-empty) are answered 0 heuristically too.
        """
        key = frozenset((p, q))
        cached = self._joint_memo.get(key)
        if cached is not None:
            if self.memo_capacity is not None:
                # Touch for recency: re-append so the LRU front stays cold.
                del self._joint_memo[key]
                self._joint_memo[key] = cached
            return cached
        if self.prune_disjoint and p != q:
            anchors_p = self._root_anchors(p)
            anchors_q = self._root_anchors(q)
            if (
                anchors_p is not None
                and anchors_q is not None
                and anchors_p.isdisjoint(anchors_q)
            ):
                self.stats.joint_pruned += 1
                self._joint_memo[key] = 0.0
                self._trim_joint_memo()
                return 0.0
        if self.prune_label_overlap and p != q:
            labels_p = self._labels(p)
            labels_q = self._labels(q)
            if labels_p and labels_q and labels_p.isdisjoint(labels_q):
                self.stats.label_overlap_pruned += 1
                self._joint_memo[key] = 0.0
                self._trim_joint_memo()
                return 0.0
        self.stats.joint_evaluated += 1
        value = self.provider.joint_selectivity(p, q)
        self._joint_memo[key] = value
        self._trim_joint_memo()
        return value

    # -- metric evaluation ---------------------------------------------------

    def _marginal_bound(self, p: TreePattern, q: TreePattern) -> float:
        """An upper bound on ``metric(p, q)`` from the marginals alone.

        All three metrics are capped through ``P(p ∧ q) ≤ min(P(p),
        P(q))``: M3 by ``min/max`` (the union is at least the max), M2 by
        ``(1 + min/max) / 2``, and M1 — which conditions on *q* — by
        ``min / P(q)``.
        """
        sel_p = self.selectivity(p)
        sel_q = self.selectivity(q)
        low = min(sel_p, sel_q)
        high = max(sel_p, sel_q)
        if high <= 0.0:
            return 0.0
        if self.metric == "M1":
            # A zero-selectivity conditioning side makes M1 exactly 0.
            return 0.0 if sel_q <= 0.0 else min(1.0, low / sel_q)
        ratio = low / high
        if self.metric == "M2":
            return (1.0 + ratio) / 2.0
        return ratio

    def _evaluate(self, p: TreePattern, q: TreePattern) -> float:
        """The configured metric on *p*, *q*, through the prefilters.

        A configured candidate generator is consulted first: a
        non-candidate pair is answered 0.0 before any selectivity work
        (``stats.candidate_pruned``).  With ``prune_below`` set, a
        never-seen pair whose marginal bound (:meth:`_marginal_bound`)
        already pins the metric below the threshold is answered 0.0
        without touching the joint memo or the provider; an
        already-memoised pair keeps returning its exact value.
        """
        if (
            self.candidates is not None
            and p != q
            and not self.candidates.is_candidate(p, q)
        ):
            key = frozenset((p, q))
            if key not in self._candidate_pruned:
                self._candidate_pruned.add(key)
                self.stats.candidate_pruned += 1
            return 0.0
        if self.prune_below is not None and p != q:
            key = frozenset((p, q))
            if (
                key not in self._joint_memo
                and self._marginal_bound(p, q) < self.prune_below
            ):
                # M1's bound is direction-dependent, so its distinct
                # accounting is too.
                pruned_key = (p, q) if self.metric == "M1" else key
                if pruned_key not in self._ratio_pruned:
                    self._ratio_pruned.add(pruned_key)
                    self.stats.joint_ratio_pruned += 1
                    by_metric = self.stats.ratio_pruned_by_metric
                    by_metric[self.metric] = (
                        by_metric.get(self.metric, 0) + 1
                    )
                return 0.0
        return self._metric_fn(self, p, q)

    def similarity(
        self, p: TreePattern, q: TreePattern, metric: str | None = None
    ) -> float:
        """Proximity of two (arbitrary) patterns through the memo."""
        if metric is None or metric == self.metric:
            return self._evaluate(p, q)
        try:
            fn = METRICS[metric]
        except KeyError:
            raise ValueError(
                f"unknown metric {metric!r}; choose from {sorted(METRICS)}"
            ) from None
        return fn(self, p, q)

    def __call__(self, p: TreePattern, q: TreePattern) -> float:
        """Make the index a drop-in ``SimilarityFn`` for the routing layer."""
        return self._evaluate(p, q)

    # -- live-population queries ---------------------------------------------

    def row(self, handle: int) -> dict[int, float]:
        """Similarity of *handle*'s pattern to every live pattern.

        ``row(h)[g]`` is ``metric(pattern(h), pattern(g))`` — rows follow
        the matrix orientation, so under M1 the row conditions on the
        *other* pattern.  Only this row's never-seen pairs are evaluated.
        """
        pattern = self.pattern(handle)
        return {
            other: self._evaluate(pattern, candidate)
            for other, candidate in self._population.items()
        }

    def top_k(self, handle: int, k: int) -> list[tuple[int, float]]:
        """The *k* most similar live handles to *handle* (excluding
        itself), as ``(handle, similarity)`` in decreasing similarity with
        handle order as tie-break."""
        if k < 1:
            raise ValueError("k must be at least 1")
        scored = (
            (other, score)
            for other, score in self.row(handle).items()
            if other != handle
        )
        return heapq.nlargest(k, scored, key=lambda pair: (pair[1], -pair[0]))

    def neighbors(self, handle: int, threshold: float) -> list[tuple[int, float]]:
        """All live handles with similarity ``>= threshold`` to *handle*
        (excluding itself), in decreasing similarity."""
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        found = [
            (other, score)
            for other, score in self.row(handle).items()
            if other != handle and score >= threshold
        ]
        found.sort(key=lambda pair: (-pair[1], pair[0]))
        return found

    # -- introspection -------------------------------------------------------

    @property
    def distinct_joint_pairs(self) -> int:
        """Distinct unordered pattern pairs whose joint selectivity reached
        the provider so far — pruned pairs are not counted."""
        return self.stats.joint_evaluated

    def __repr__(self) -> str:
        return (
            f"SimilarityIndex(patterns={len(self._population)}, "
            f"metric={self.metric!r}, "
            f"joint_pairs={self.stats.joint_evaluated}, "
            f"pruned={self.stats.joint_pruned})"
        )


class SimilarityMatrix:
    """A cached pairwise-similarity engine over a fixed pattern population.

    Every proximity metric of Section 4 is an arithmetic combination of
    ``P(p)``, ``P(q)`` and ``P(p ∧ q)``; the joint term dominates the cost
    (it requires a root-merge match or a synopsis probe).  This engine
    memoises both primitives so that **each distinct pattern's selectivity
    and each unordered distinct pattern pair's joint selectivity reach the
    underlying provider at most once**, no matter how many metric
    evaluations, matrix builds or clustering passes consume the engine.

    Since the lifecycle redesign this class is a thin frozen-population
    view over a private :class:`SimilarityIndex`; mutation-free callers
    (both clustering functions, the offline benchmarks, existing tests)
    keep the familiar positional API while churn-facing callers hold the
    index directly.  The tag-disjointness prefilter is off by default here
    so estimator-backed matrices reproduce historical values bit-for-bit;
    pass ``prune_disjoint=True`` to opt in.

    The class itself implements the :class:`SelectivityProvider` protocol
    (memoising pass-through), so the M1/M2/M3 callables evaluate through it
    unchanged.  It is also directly usable as the ``similarity(p, q)``
    callable expected by :mod:`repro.routing.community`;
    ``agglomerative_clustering`` additionally detects an aligned matrix
    and reads its precomputed values without re-dispatching, while
    ``leader_clustering`` evaluates lazily through the memo.

    >>> # matrix = SimilarityMatrix(corpus, subscriptions, metric="M3")
    >>> # matrix.top_k(0, 3)          # closest communities for pattern 0
    >>> # leader_clustering(subscriptions, matrix, threshold=0.5)
    """

    def __init__(
        self,
        provider: SelectivityProvider,
        patterns: list[TreePattern],
        metric: str = "M3",
        prune_disjoint: bool = False,
    ) -> None:
        self._index = SimilarityIndex(
            provider, patterns, metric=metric, prune_disjoint=prune_disjoint
        )
        self.provider = provider
        self.patterns = list(patterns)
        self.metric = metric
        self._values: list[list[float]] | None = None

    # -- memoised SelectivityProvider protocol ------------------------------

    def selectivity(self, pattern: TreePattern) -> float:
        """``P(p)`` from the provider, computed once per distinct pattern."""
        return self._index.selectivity(pattern)

    def joint_selectivity(self, p: TreePattern, q: TreePattern) -> float:
        """``P(p ∧ q)``, computed once per unordered distinct pattern pair.

        The memo key is the frozen *pair* ``{p, q}`` under canonical pattern
        equality, so ``(p, q)`` and ``(q, p)`` — and any equal-by-canon
        duplicates in the population — share one provider call.
        """
        return self._index.joint_selectivity(p, q)

    # -- metric evaluation ---------------------------------------------------

    def similarity(
        self, p: TreePattern, q: TreePattern, metric: str | None = None
    ) -> float:
        """Proximity of two (arbitrary) patterns through the memo."""
        return self._index.similarity(p, q, metric)

    def __call__(self, p: TreePattern, q: TreePattern) -> float:
        """Make the engine a drop-in ``SimilarityFn`` for the routing layer."""
        return self._index(p, q)

    def __len__(self) -> int:
        return len(self.patterns)

    # -- whole-population queries -------------------------------------------

    @property
    def values(self) -> list[list[float]]:
        """The full pairwise matrix over the population (computed lazily,
        once).  ``values[i][j]`` is the configured metric on patterns i, j;
        asymmetric M1 fills both triangles in their respective directions."""
        if self._values is None:
            n = len(self.patterns)
            symmetric = self.metric != "M1"
            result = [[0.0] * n for _ in range(n)]
            for i in range(n):
                result[i][i] = self.similarity(
                    self.patterns[i], self.patterns[i]
                )
                for j in range(i + 1, n):
                    value = self.similarity(self.patterns[i], self.patterns[j])
                    result[i][j] = value
                    result[j][i] = value if symmetric else self.similarity(
                        self.patterns[j], self.patterns[i]
                    )
            self._values = result
        return self._values

    def _normalize(self, index: int) -> int:
        if not -len(self.patterns) <= index < len(self.patterns):
            raise IndexError(f"pattern index {index} out of range")
        return index % len(self.patterns)

    def top_k(self, index: int, k: int) -> list[tuple[int, float]]:
        """The *k* most similar population members to ``patterns[index]``
        (excluding itself), as ``(index, similarity)`` in decreasing
        similarity with index as tie-break."""
        if k < 1:
            raise ValueError("k must be at least 1")
        index = self._normalize(index)
        scored = (
            (other, score)
            for other, score in enumerate(self.values[index])
            if other != index
        )
        return heapq.nlargest(k, scored, key=lambda pair: (pair[1], -pair[0]))

    def neighbors(self, index: int, threshold: float) -> list[tuple[int, float]]:
        """All population members with similarity ``>= threshold`` to
        ``patterns[index]`` (excluding itself), in decreasing similarity."""
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        index = self._normalize(index)
        found = [
            (other, score)
            for other, score in enumerate(self.values[index])
            if other != index and score >= threshold
        ]
        found.sort(key=lambda pair: (-pair[1], pair[0]))
        return found

    # -- introspection -------------------------------------------------------

    @property
    def stats(self) -> IndexStats:
        """Provider-call accounting of the backing index."""
        return self._index.stats

    @property
    def distinct_joint_pairs(self) -> int:
        """Distinct unordered pattern pairs whose joint selectivity has been
        computed so far — the number of provider calls the memo admitted."""
        return self._index.distinct_joint_pairs

    def __repr__(self) -> str:
        return (
            f"SimilarityMatrix(patterns={len(self.patterns)}, "
            f"metric={self.metric!r}, "
            f"joint_pairs={self.distinct_joint_pairs})"
        )
