"""Parsing and serialising tree patterns in an XPath subset.

The concrete syntax covers the pattern language of the paper:

* absolute paths: ``/media/CD``, ``//CD``, ``/*``;
* the descendant operator between steps: ``/media//last``;
* wildcard steps: ``/media/*/last``;
* branching via predicates: ``/a[b][d]``, ``/a[c/f][c/o]``, ``/CD[.//last]``;
* multiple constraints on the document root: ``/.[//CD][//Mozart]``
  (the explicit ``/.`` form — ordinary XPath cannot express a root with
  several independent constraint subtrees, which the paper's root-merge
  construction for ``P(p ∧ q)`` produces).

``parse_xpath`` and ``to_xpath`` are inverse up to the canonical form:
a node with exactly one child is serialised inline (``a/b``), a node with
several children uses predicates (``a[b][c]``).
"""

from __future__ import annotations

from repro.core.labels import DESCENDANT, WILDCARD, is_valid_tag
from repro.core.pattern import PatternError, PatternNode, TreePattern

__all__ = ["parse_xpath", "to_xpath", "XPathSyntaxError"]


class XPathSyntaxError(PatternError):
    """Raised when an expression is outside the supported XPath subset."""


class _Parser:
    """Recursive-descent parser over a pattern expression string."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    # -- low-level helpers -------------------------------------------------

    def error(self, message: str) -> XPathSyntaxError:
        return XPathSyntaxError(
            f"{message} at offset {self.pos} in {self.text!r}"
        )

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def accept(self, token: str) -> bool:
        if self.peek(token):
            self.pos += len(token)
            return True
        return False

    def expect(self, token: str) -> None:
        if not self.accept(token):
            raise self.error(f"expected {token!r}")

    def read_name(self) -> str:
        if self.accept(WILDCARD):
            return WILDCARD
        start = self.pos
        while not self.at_end() and self.text[self.pos] not in "/[]":
            self.pos += 1
        name = self.text[start : self.pos]
        if not is_valid_tag(name):
            raise self.error(f"invalid step name {name!r}")
        return name

    # -- grammar -----------------------------------------------------------

    def parse_pattern(self) -> TreePattern:
        if self.peek("/."):
            children = self.parse_root_form()
        else:
            children = (self.parse_absolute_path(),)
        if not self.at_end():
            raise self.error("trailing input")
        return TreePattern(children)

    def parse_root_form(self) -> tuple[PatternNode, ...]:
        """Parse ``/.[rel][rel]...`` — explicit multi-constraint root."""
        self.expect("/.")
        children: list[PatternNode] = []
        while self.accept("["):
            children.append(self.parse_relative_path())
            self.expect("]")
        if not children:
            raise self.error("'/.' requires at least one [predicate]")
        if not self.at_end():
            raise self.error("trailing input after '/.' predicates")
        return tuple(children)

    def parse_absolute_path(self) -> PatternNode:
        """Parse a path starting with ``/`` or ``//``."""
        if self.accept(DESCENDANT):
            return PatternNode(DESCENDANT, (self.parse_steps(),))
        if self.accept("/"):
            return self.parse_steps()
        raise self.error("pattern must start with '/', '//' or '/.'")

    def parse_relative_path(self) -> PatternNode:
        """Parse a predicate body: a path relative to the enclosing step."""
        if self.accept(".//") or self.accept(DESCENDANT):
            return PatternNode(DESCENDANT, (self.parse_steps(),))
        self.accept("./")  # optional explicit self axis
        return self.parse_steps()

    def parse_steps(self) -> PatternNode:
        """Parse ``step (('/' | '//') step)*`` and return the first node."""
        label = self.read_name()
        predicates: list[PatternNode] = []
        while self.accept("["):
            predicates.append(self.parse_relative_path())
            self.expect("]")
        children = tuple(predicates)
        if self.accept(DESCENDANT):
            children += (PatternNode(DESCENDANT, (self.parse_steps(),)),)
        elif self.accept("/"):
            children += (self.parse_steps(),)
        return PatternNode(label, children)


def parse_xpath(expression: str) -> TreePattern:
    """Parse an XPath-subset *expression* into a :class:`TreePattern`.

    >>> parse_xpath("/media/CD[*/last/Mozart]").size()
    6
    """
    expression = expression.strip()
    if not expression:
        raise XPathSyntaxError("empty pattern expression")
    return _Parser(expression).parse_pattern()


def _serialize_node(node: PatternNode) -> str:
    """Serialise the subtree rooted at a non-``//`` node."""
    if node.label == DESCENDANT:
        raise AssertionError("descendant nodes are serialised by their parents")
    if not node.children:
        return node.label
    if len(node.children) == 1:
        child = node.children[0]
        if child.label == DESCENDANT:
            return f"{node.label}//{_serialize_node(child.children[0])}"
        return f"{node.label}/{_serialize_node(child)}"
    parts = [node.label]
    for child in node.children:
        if child.label == DESCENDANT:
            parts.append(f"[.//{_serialize_node(child.children[0])}]")
        else:
            parts.append(f"[{_serialize_node(child)}]")
    return "".join(parts)


def to_xpath(pattern: TreePattern) -> str:
    """Serialise *pattern* back to the XPath subset.

    The output re-parses to an equal pattern:
    ``parse_xpath(to_xpath(p)) == p``.
    """
    children = pattern.root_children
    if len(children) == 1:
        child = children[0]
        if child.label == DESCENDANT:
            return f"//{_serialize_node(child.children[0])}"
        return f"/{_serialize_node(child)}"
    parts = ["/."]
    for child in children:
        if child.label == DESCENDANT:
            parts.append(f"[.//{_serialize_node(child.children[0])}]")
        else:
            parts.append(f"[{_serialize_node(child)}]")
    return "".join(parts)
