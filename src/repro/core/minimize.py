"""Tree-pattern minimization.

The related work the paper builds on (Amer-Yahia et al., SIGMOD'01; Wood,
WebDB'01) minimizes tree-pattern queries by deleting *redundant* branches:
a child subtree is redundant when a sibling subtree already implies it, so
removing it leaves an equivalent — but smaller and cheaper to evaluate —
pattern.  Smaller patterns matter here too: ``SEL`` is ``O(|HS|·|p|)`` and
the root-merge construction for ``P(p ∧ q)`` doubles pattern sizes, so
minimizing merged patterns before estimation saves real work.

Redundancy is certified with the same sound homomorphism embedding used by
:mod:`repro.core.containment`: if sibling ``B`` embeds into... precisely,
if subtree ``A`` embeds into every document fragment satisfying ``B`` —
checked as "A has a homomorphism into B" — then ``A`` is implied by ``B``
and can be dropped.  Soundness of the embedding means minimization never
changes a pattern's semantics; incompleteness only means some redundancy
may be missed.
"""

from __future__ import annotations

from repro.core.containment import _embeds, _root_embeds
from repro.core.pattern import PatternNode, TreePattern

__all__ = ["minimize", "is_minimal"]


def _drop_redundant(
    siblings: tuple[PatternNode, ...], root_level: bool
) -> tuple[PatternNode, ...]:
    """Remove every sibling implied by another sibling (keeping one witness
    of each equivalence class, earliest first)."""
    kept: list[PatternNode] = []
    for candidate in siblings:
        memo: dict = {}
        implied = any(
            (_root_embeds(candidate, other, memo) if root_level
             else _embeds(candidate, other, memo))
            for other in kept
        )
        if implied:
            continue
        # The candidate may retroactively imply earlier keepers.
        memo = {}
        kept = [
            other
            for other in kept
            if not (
                _root_embeds(other, candidate, memo) if root_level
                else _embeds(other, candidate, memo)
            )
        ]
        kept.append(candidate)
    return tuple(kept)


def _minimize_node(node: PatternNode) -> PatternNode:
    children = tuple(_minimize_node(child) for child in node.children)
    children = _drop_redundant(children, root_level=False)
    return PatternNode(node.label, children)


def minimize(pattern: TreePattern) -> TreePattern:
    """Return an equivalent pattern with redundant branches removed.

    >>> from repro.core.pattern_parser import parse_xpath, to_xpath
    >>> to_xpath(minimize(parse_xpath("/a[b][b/c][*]")))
    '/a/b/c'
    """
    children = tuple(
        _minimize_node(child) for child in pattern.root_children
    )
    children = _drop_redundant(children, root_level=True)
    return TreePattern(children)


def is_minimal(pattern: TreePattern) -> bool:
    """True when :func:`minimize` would leave *pattern* unchanged."""
    return minimize(pattern) == pattern
