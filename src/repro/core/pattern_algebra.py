"""Operations that combine or transform tree patterns.

The proximity metrics of Section 4 need the joint probability ``P(p ∧ q)``,
which the paper computes "by simply merging the root nodes of p and q": the
resulting pattern's root carries the union of both patterns' root constraint
subtrees, so a document satisfies it exactly when it satisfies both p and q.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.labels import DESCENDANT, WILDCARD
from repro.core.pattern import PatternError, PatternNode, TreePattern

__all__ = [
    "merge_patterns",
    "path_pattern",
    "pattern_from_paths",
    "relabel",
    "trivially_contains",
]


def merge_patterns(*patterns: TreePattern) -> TreePattern:
    """Return the conjunction pattern matching documents that satisfy *all*
    of the given patterns (root-merge construction of Section 4).

    >>> from repro.core.pattern_parser import parse_xpath, to_xpath
    >>> to_xpath(merge_patterns(parse_xpath("//a"), parse_xpath("/b")))
    '/.[.//a][b]'
    """
    if not patterns:
        raise PatternError("merge_patterns needs at least one pattern")
    children: list[PatternNode] = []
    for pattern in patterns:
        children.extend(pattern.root_children)
    # Duplicate constraint subtrees are redundant under conjunction.
    unique: list[PatternNode] = []
    seen: set[PatternNode] = set()
    for child in children:
        if child not in seen:
            seen.add(child)
            unique.append(child)
    return TreePattern(tuple(unique))


def path_pattern(steps: Sequence[str], rooted: bool = True) -> TreePattern:
    """Build a single-path pattern from a sequence of step labels.

    Each step is a tag, ``*``, or ``//``.  With ``rooted=False`` a leading
    ``//`` is prepended, so the path may occur anywhere in the document.

    >>> from repro.core.pattern_parser import to_xpath
    >>> to_xpath(path_pattern(["a", "//", "b"]))
    '/a//b'
    """
    if not steps:
        raise PatternError("a path pattern needs at least one step")
    node: PatternNode | None = None
    for label in reversed(steps):
        children = (node,) if node is not None else ()
        node = PatternNode(label, children)
    assert node is not None
    if not rooted and node.label != DESCENDANT:
        node = PatternNode(DESCENDANT, (node,))
    return TreePattern((node,))


def pattern_from_paths(paths: Iterable[Sequence[str]]) -> TreePattern:
    """Build the conjunction of several single-path patterns.

    Useful for constructing branching patterns programmatically, e.g. the
    Section 3.2 counter-failure example ``a[b][d]`` is
    ``pattern_from_paths([["a", "b"], ["a", "d"]])`` *after* merging common
    prefixes — which this function performs.
    """
    merged = merge_patterns(*(path_pattern(path) for path in paths))
    return TreePattern(_merge_prefixes(merged.root_children))


def _merge_prefixes(nodes: Sequence[PatternNode]) -> tuple[PatternNode, ...]:
    """Recursively merge sibling nodes with identical labels.

    Only safe for conjunction semantics when each input node lies on a single
    path, which holds for the output of :func:`path_pattern`.
    """
    by_label: dict[str, list[PatternNode]] = {}
    order: list[str] = []
    for node in nodes:
        if node.label not in by_label:
            by_label[node.label] = []
            order.append(node.label)
        by_label[node.label].append(node)
    result: list[PatternNode] = []
    for label in order:
        group = by_label[label]
        if len(group) == 1:
            result.append(group[0])
            continue
        children: list[PatternNode] = []
        for member in group:
            children.extend(member.children)
        if label == DESCENDANT:
            # '//' admits a single child only; keep the group unmerged.
            result.extend(group)
        else:
            result.append(PatternNode(label, _merge_prefixes(children)))
    return tuple(result)


def relabel(pattern: TreePattern, mapping: dict[str, str]) -> TreePattern:
    """Return a copy of *pattern* with tag labels substituted via *mapping*.

    Labels absent from the mapping (including ``*`` and ``//``) are kept.
    Used by the workload generator to derive negative queries from positive
    ones.
    """

    def rebuild(node: PatternNode) -> PatternNode:
        label = mapping.get(node.label, node.label)
        return PatternNode(label, tuple(rebuild(c) for c in node.children))

    return TreePattern(tuple(rebuild(c) for c in pattern.root_children))


def trivially_contains(outer: PatternNode, inner: PatternNode) -> bool:
    """Conservative structural containment test between pattern subtrees.

    Returns True only when every document matching *inner* provably matches
    *outer* by direct structural embedding (label subsumption along identical
    shapes).  This is *not* a complete containment decision procedure — the
    paper points out containment is the wrong tool for similarity — but it is
    handy for sanity checks and tests.
    """
    if outer.label == DESCENDANT:
        target = outer.children[0]
        if trivially_contains(target, inner):
            return True
        return any(trivially_contains(outer, child) for child in inner.children)
    if outer.label != WILDCARD and outer.label != inner.label:
        return False
    return all(
        any(trivially_contains(oc, ic) for ic in inner.children)
        for oc in outer.children
    )
