"""Built-in document types at the scale of the paper's data sets.

The paper evaluates on two DTDs: **NITF** (News Industry Text Format,
123 elements) and the **xCBL Order** schema (569 elements).  Neither file
ships with this reproduction, so this module synthesises equivalents with

* exactly the same element counts (asserted by the test suite),
* comparable depth (about 10 levels of nesting) and branching character —
  NITF-like: a news document with heavy mixed/enriched text content;
  xCBL-like: a business order with wide, repetitive record structures built
  from replicated families (parties, references, amounts, item details), the
  way the real xCBL is generated from shared modules.

What the experiments depend on — vocabulary size, fan-out, path depth, and
the ratio of mandatory to optional content — is preserved; exact element
names are not load-bearing.  See DESIGN.md, "Substitutions".
"""

from __future__ import annotations

from functools import lru_cache

from repro.dtd.model import DTD
from repro.dtd.parser import parse_dtd

__all__ = ["nitf_dtd", "xcbl_dtd", "dblp_dtd", "builtin_dtd", "BUILTIN_DTD_NAMES"]

BUILTIN_DTD_NAMES = ("nitf", "xcbl", "dblp")

#: Element count targets from Section 5.1 of the paper.
NITF_ELEMENT_COUNT = 123
XCBL_ELEMENT_COUNT = 569


# ---------------------------------------------------------------------------
# NITF-like news DTD (123 elements)
# ---------------------------------------------------------------------------

_ENRICHED_TEXT = (
    "(#PCDATA | em | q | a | br | chron | classifier | city | country | "
    "state | region | sub | sup | num | money | frac | event | function | "
    "org | person | location | object.title | alt-code | lang | pronounce | "
    "copyrite | virtloc)*"
)

_BLOCK_CONTENT = "(p | table | media | ol | ul | dl | bq | fn | note | hr)*"

_NITF_DECLS: tuple[tuple[str, str], ...] = (
    # document structure
    ("nitf", "(head?, body)"),
    ("head", "(title?, meta*, tobject?, iim?, docdata?, pubdata*)"),
    ("title", "(#PCDATA)"),
    ("meta", "EMPTY"),
    ("tobject", "(tobject.property*, tobject.subject*)"),
    ("tobject.property", "EMPTY"),
    ("tobject.subject", "EMPTY"),
    ("iim", "(ds*)"),
    ("ds", "EMPTY"),
    ("pubdata", "EMPTY"),
    # docdata
    ("docdata", "(correction?, evloc?, doc-id?, del-list?, urgency?, fixture?, "
                "date.issue?, date.release?, date.expire?, doc-scope?, series?, "
                "ed-msg?, du-key?, doc.copyright?, doc.rights?, key-list?, "
                "identified-content?)"),
    ("correction", "EMPTY"),
    ("evloc", "EMPTY"),
    ("doc-id", "EMPTY"),
    ("del-list", "(from-src*)"),
    ("from-src", "EMPTY"),
    ("urgency", "EMPTY"),
    ("fixture", "EMPTY"),
    ("date.issue", "EMPTY"),
    ("date.release", "EMPTY"),
    ("date.expire", "EMPTY"),
    ("doc-scope", "EMPTY"),
    ("series", "EMPTY"),
    ("ed-msg", "EMPTY"),
    ("du-key", "EMPTY"),
    ("doc.copyright", "EMPTY"),
    ("doc.rights", "EMPTY"),
    ("key-list", "(keyword*)"),
    ("keyword", "EMPTY"),
    ("identified-content", "(classifier | city | country | state | region | "
                           "org | person | event | function | location | "
                           "object.title | chron)*"),
    # body
    ("body", "(body.head?, body.content*, body.end?)"),
    ("body.head", "(hedline?, note*, rights?, byline*, distributor?, "
                  "dateline*, abstract?)"),
    ("hedline", "(hl1, hl2*)"),
    ("hl1", _ENRICHED_TEXT),
    ("hl2", _ENRICHED_TEXT),
    ("note", "(body.content)"),
    ("rights", "(#PCDATA | rights.owner | rights.startdate | rights.enddate | "
               "rights.agent | rights.geography | rights.type | "
               "rights.limitations)*"),
    ("rights.owner", "(#PCDATA)"),
    ("rights.startdate", "(#PCDATA)"),
    ("rights.enddate", "(#PCDATA)"),
    ("rights.agent", "(#PCDATA)"),
    ("rights.geography", "(#PCDATA)"),
    ("rights.type", "(#PCDATA)"),
    ("rights.limitations", "(#PCDATA)"),
    ("byline", "(#PCDATA | person | byttl | virtloc | location)*"),
    ("byttl", "(#PCDATA | org)*"),
    ("distributor", "(#PCDATA | org)*"),
    ("dateline", "(#PCDATA | location | story.date)*"),
    ("story.date", "(#PCDATA)"),
    ("abstract", _BLOCK_CONTENT),
    ("body.content", "(block | p | media | table | ol | ul)*"),
    ("block", "(tagline?, " + _BLOCK_CONTENT + ", datasource?)"),
    ("p", _ENRICHED_TEXT),
    ("body.end", "(tagline?, bibliography?)"),
    ("tagline", _ENRICHED_TEXT),
    ("bibliography", "(#PCDATA)"),
    ("datasource", "(#PCDATA)"),
    # media
    ("media", "(media-reference | media-metadata | media-object | "
              "media-caption | media-producer)+"),
    ("media-reference", "(#PCDATA)"),
    ("media-metadata", "EMPTY"),
    ("media-object", "(#PCDATA)"),
    ("media-caption", _BLOCK_CONTENT),
    ("media-producer", "(#PCDATA | person | org)*"),
    ("credit", "(#PCDATA | person | org)*"),
    # tables
    ("table", "(caption?, col*, colgroup*, thead?, tfoot?, tbody+)"),
    ("caption", _ENRICHED_TEXT),
    ("col", "EMPTY"),
    ("colgroup", "(col*)"),
    ("thead", "(tr+)"),
    ("tfoot", "(tr+)"),
    ("tbody", "(tr+)"),
    ("tr", "(td | th)+"),
    ("td", _BLOCK_CONTENT[:-2] + " | #PCDATA)*"),
    ("th", _BLOCK_CONTENT[:-2] + " | #PCDATA)*"),
    # lists
    ("ol", "(li+)"),
    ("ul", "(li+)"),
    ("li", _ENRICHED_TEXT),
    ("dl", "(dt | dd)+"),
    ("dt", _ENRICHED_TEXT),
    ("dd", _BLOCK_CONTENT),
    ("bq", "(block*, credit?)"),
    ("fn", _ENRICHED_TEXT),
    ("hr", "EMPTY"),
    # inline enrichment
    ("em", "(#PCDATA)"),
    ("lang", "(#PCDATA)"),
    ("pronounce", "EMPTY"),
    ("q", _ENRICHED_TEXT),
    ("a", "(#PCDATA)"),
    ("br", "EMPTY"),
    ("chron", "(#PCDATA)"),
    ("classifier", "(#PCDATA)"),
    ("city", "(#PCDATA | sublocation)*"),
    ("country", "(#PCDATA | alt-code)*"),
    ("state", "(#PCDATA | alt-code)*"),
    ("region", "(#PCDATA | alt-code)*"),
    ("sublocation", "(#PCDATA)"),
    ("sub", "(#PCDATA)"),
    ("sup", "(#PCDATA)"),
    ("num", "(#PCDATA | frac | sub | sup)*"),
    ("money", "(#PCDATA | num)*"),
    ("frac", "(frac-num, frac-sep?, frac-den)"),
    ("frac-num", "(#PCDATA)"),
    ("frac-sep", "(#PCDATA)"),
    ("frac-den", "(#PCDATA)"),
    ("event", "(#PCDATA | object.title | alt-code)*"),
    ("function", "(#PCDATA)"),
    ("org", "(#PCDATA | alt-code)*"),
    ("person", "(#PCDATA | name.given | name.family | function | alt-code)*"),
    ("name.given", "(#PCDATA)"),
    ("name.family", "(#PCDATA)"),
    ("object.title", "(#PCDATA)"),
    ("alt-code", "EMPTY"),
    ("location", "(#PCDATA | sublocation | city | state | region | country | "
                 "postaddr)*"),
    ("virtloc", "(#PCDATA)"),
    ("postaddr", "(addressee, care.of?, street*, postcode?, delivery.point?)"),
    ("addressee", "(person | org)"),
    ("care.of", "(#PCDATA)"),
    ("street", "(#PCDATA)"),
    ("postcode", "(#PCDATA)"),
    ("delivery.point", "(#PCDATA)"),
    ("copyrite", "(#PCDATA | copyrite.year | copyrite.holder)*"),
    ("copyrite.year", "(#PCDATA)"),
    ("copyrite.holder", "(#PCDATA)"),
)


@lru_cache(maxsize=None)
def nitf_dtd() -> DTD:
    """The NITF-scale news DTD (123 elements, root ``nitf``)."""
    text = "\n".join(f"<!ELEMENT {name} {model}>" for name, model in _NITF_DECLS)
    dtd = parse_dtd(text, root="nitf")
    assert len(dtd) == NITF_ELEMENT_COUNT, (
        f"NITF-like DTD drifted: {len(dtd)} elements, expected {NITF_ELEMENT_COUNT}"
    )
    return dtd


# ---------------------------------------------------------------------------
# xCBL-Order-like commerce DTD (569 elements)
# ---------------------------------------------------------------------------

_PARTY_ROLES = (
    "Buyer", "Seller", "ShipTo", "BillTo", "RemitTo", "Manufacturer",
    "Carrier", "Warehouse", "Supplier", "Payer", "Payee", "Consignee",
    "FreightForwarder", "OrderIssuer",
)

_REFERENCE_KINDS = (
    "Contract", "Quote", "PriceList", "Invoice", "BlanketOrder", "Promotion",
    "Requisition", "SalesOrder", "Delivery", "Shipment", "Account",
    "Customer", "Project", "Budget", "LetterOfCredit", "Release", "Tender",
    "ProForma", "Booking", "Manifest", "CustomsDeclaration", "ExportLicense",
    "ImportLicense", "Waybill", "BillOfLading", "PackingList", "ReturnAuth",
    "CreditMemo", "DebitMemo", "Statement", "ASN", "GoodsReceipt",
    "Inspection", "Insurance", "Payment", "Remittance", "TaxExemption",
    "Ledger", "CostCenter", "GLAccount", "WorkOrder", "ServiceOrder",
    "MaintenanceOrder", "Lease", "Warranty", "Registration", "Certification",
    "Inventory", "Forecast", "Replenishment", "Consignment",
)

_DATE_KINDS = (
    "OrderIssue", "RequestedShip", "RequestedDeliver", "PromisedShip",
    "PromisedDeliver", "CancelBy", "Expiration", "EffectiveFrom",
    "EffectiveTo", "LastModified", "Confirmed", "Printed", "Received",
    "Approved", "Dispatched", "Loading", "Arrival", "Pickup", "Customs",
    "Inspection",
)

_AMOUNT_KINDS = (
    "Total", "Subtotal", "TaxTotal", "Freight", "Handling", "Discount",
    "Allowance", "Charge", "Net", "Gross", "Prepaid", "Balance", "Insurance",
    "Packing", "Deposit", "Duty",
)

_CONTACT_KINDS = ("Order", "Receiving", "Shipping", "Billing", "Technical", "Sales")


def _xcbl_declarations() -> list[tuple[str, str]]:
    decls: list[tuple[str, str]] = []

    def leaf(name: str) -> None:
        decls.append((name, "(#PCDATA)"))

    def node(name: str, model: str) -> None:
        decls.append((name, model))

    # --- top-level order structure -------------------------------------
    node("Order", "(OrderHeader, OrderDetail, OrderSummary?)")
    node(
        "OrderHeader",
        "(OrderNumber, OrderReferences?, Purpose?, "
        "OrderType?, OrderCurrency?, LanguageCode?, OrderDates?, "
        "OrderParty, OrderPaymentInstructions?, OrderTermsOfDelivery?, "
        "OrderTransportRouting?, OrderTaxSummary?, OrderAllowancesOrCharges?, "
        "OrderAttachments?, OrderNotes?, OrderHeaderUserArea?)",
    )
    node("OrderNumber", "(BuyerOrderNumber, SellerOrderNumber?, ChangeOrderSequence?)")
    leaf("BuyerOrderNumber")
    leaf("SellerOrderNumber")
    leaf("ChangeOrderSequence")
    leaf("Purpose")
    leaf("OrderType")
    node("OrderCurrency", "(CurrencyCoded, CurrencyCodedOther?, RateOfExchange?)")
    leaf("CurrencyCoded")
    leaf("CurrencyCodedOther")
    leaf("RateOfExchange")
    leaf("LanguageCode")
    node("OrderNotes", "(GeneralNote*, StructuredNote*)")
    leaf("GeneralNote")
    node("StructuredNote", "(NoteID?, NoteText, NoteLanguage?)")
    leaf("NoteID")
    leaf("NoteText")
    leaf("NoteLanguage")
    leaf("OrderHeaderUserArea")

    # --- references ------------------------------------------------------
    node(
        "OrderReferences",
        "(" + ", ".join(f"{kind}Reference?" for kind in _REFERENCE_KINDS) + ")",
    )
    for kind in _REFERENCE_KINDS:
        node(f"{kind}Reference", f"({kind}RefNum, {kind}RefDate?, {kind}RefNotes?)")
        leaf(f"{kind}RefNum")
        leaf(f"{kind}RefDate")
        leaf(f"{kind}RefNotes")

    # --- dates -----------------------------------------------------------
    node(
        "OrderDates",
        "(" + ", ".join(f"{kind}Date?" for kind in _DATE_KINDS) + ")",
    )
    for kind in _DATE_KINDS:
        node(f"{kind}Date", f"({kind}DateValue, {kind}DateQualifier?)")
        leaf(f"{kind}DateValue")
        leaf(f"{kind}DateQualifier")

    # --- parties -----------------------------------------------------------
    node(
        "OrderParty",
        "(" + ", ".join(
            f"{role}Party{'?' if role != 'Buyer' and role != 'Seller' else ''}"
            for role in _PARTY_ROLES
        ) + ")",
    )
    for role in _PARTY_ROLES:
        node(f"{role}Party", "(Party)")
    node(
        "Party",
        "(PartyID, MDFBusiness?, NameAddress?, OrderContact?, "
        "OtherContacts?, PartyTaxInformation?, CorrespondenceLanguage?)",
    )
    node("PartyID", "(Identifier+)")
    node("Identifier", "(Agency?, Ident)")
    node("Agency", "(AgencyCoded, AgencyCodedOther?, AgencyDescription?)")
    leaf("AgencyCoded")
    leaf("AgencyCodedOther")
    leaf("AgencyDescription")
    leaf("Ident")
    leaf("MDFBusiness")
    node(
        "NameAddress",
        "(ExternalAddressID?, Name1, Name2?, Name3?, Identification?, "
        "POBox?, Street?, HouseNumber?, StreetSupplement1?, "
        "StreetSupplement2?, Building?, Floor?, RoomNumber?, InhouseMail?, "
        "Department?, PostalCode?, City, County?, Region?, District?, "
        "Country, Timezone?)",
    )
    leaf("ExternalAddressID")
    leaf("Name1")
    leaf("Name2")
    leaf("Name3")
    leaf("Identification")
    leaf("POBox")
    leaf("Street")
    leaf("HouseNumber")
    leaf("StreetSupplement1")
    leaf("StreetSupplement2")
    leaf("Building")
    leaf("Floor")
    leaf("RoomNumber")
    leaf("InhouseMail")
    leaf("Department")
    leaf("PostalCode")
    leaf("City")
    leaf("County")
    node("Region", "(RegionCoded, RegionCodedOther?)")
    leaf("RegionCoded")
    leaf("RegionCodedOther")
    leaf("District")
    node("Country", "(CountryCoded, CountryCodedOther?)")
    leaf("CountryCoded")
    leaf("CountryCodedOther")
    leaf("Timezone")
    node("OrderContact", "(Contact)")
    node(
        "OtherContacts",
        "(" + " | ".join(f"{kind}ContactRef" for kind in _CONTACT_KINDS) + ")*",
    )
    for kind in _CONTACT_KINDS:
        node(f"{kind}ContactRef", "(Contact)")
    node(
        "Contact",
        "(ContactID?, ContactName, ContactFunction?, ListOfContactNumber?, "
        "ContactDescription?)",
    )
    leaf("ContactID")
    leaf("ContactName")
    leaf("ContactFunction")
    leaf("ContactDescription")
    node("ListOfContactNumber", "(ContactNumber+)")
    node("ContactNumber", "(ContactNumberValue, ContactNumberTypeCoded?)")
    leaf("ContactNumberValue")
    leaf("ContactNumberTypeCoded")
    node("PartyTaxInformation", "(TaxIdentifier?, RegisteredName?, RegisteredOffice?)")
    leaf("TaxIdentifier")
    leaf("RegisteredName")
    leaf("RegisteredOffice")
    leaf("CorrespondenceLanguage")

    # --- payment -----------------------------------------------------------
    node(
        "OrderPaymentInstructions",
        "(PaymentTerms?, PaymentMethod?, FinancialInstitution?)",
    )
    node(
        "PaymentTerms",
        "(PaymentTermCoded?, DiscountPercent?, DiscountDaysDue?, "
        "NetDaysDue?, PaymentTermDescription?)",
    )
    leaf("PaymentTermCoded")
    leaf("DiscountPercent")
    leaf("DiscountDaysDue")
    leaf("NetDaysDue")
    leaf("PaymentTermDescription")
    node("PaymentMethod", "(PaymentMeanCoded, PaymentMeanReference?)")
    leaf("PaymentMeanCoded")
    leaf("PaymentMeanReference")
    node(
        "FinancialInstitution",
        "(FinancialInstitutionID?, FinancialInstitutionName?, AccountDetail?)",
    )
    leaf("FinancialInstitutionID")
    leaf("FinancialInstitutionName")
    node("AccountDetail", "(AccountID, AccountName?, AccountTypeCoded?, IBAN?)")
    leaf("AccountID")
    leaf("AccountName")
    leaf("AccountTypeCoded")
    leaf("IBAN")

    # --- delivery terms / transport ----------------------------------------
    node(
        "OrderTermsOfDelivery",
        "(TermsOfDeliveryFunctionCoded?, TransportTermsCoded?, "
        "ShipmentMethodOfPaymentCoded?, TermsOfDeliveryDescription?, "
        "RiskOfLossCoded?)",
    )
    leaf("TermsOfDeliveryFunctionCoded")
    leaf("TransportTermsCoded")
    leaf("ShipmentMethodOfPaymentCoded")
    leaf("TermsOfDeliveryDescription")
    leaf("RiskOfLossCoded")
    node(
        "OrderTransportRouting",
        "(TransportRouting*, TransportRequirement*)",
    )
    node(
        "TransportRouting",
        "(TransportMode?, TransportMeans?, CarrierName?, CarrierID?, "
        "TransitDirection?, TransitTime?, ShippingInstructions?)",
    )
    node("TransportMode", "(TransportModeCoded, TransportModeCodedOther?)")
    leaf("TransportModeCoded")
    leaf("TransportModeCodedOther")
    node("TransportMeans", "(TransportMeansCoded, TransportMeansIdentifier?)")
    leaf("TransportMeansCoded")
    leaf("TransportMeansIdentifier")
    leaf("CarrierName")
    leaf("CarrierID")
    leaf("TransitDirection")
    leaf("TransitTime")
    leaf("ShippingInstructions")
    node("TransportRequirement", "(RequirementCoded, RequirementDescription?)")
    leaf("RequirementCoded")
    leaf("RequirementDescription")

    # --- taxes ---------------------------------------------------------------
    node("OrderTaxSummary", "(Tax+)")
    node(
        "Tax",
        "(TaxTypeCoded?, TaxFunctionQualifierCoded?, TaxCategoryCoded?, "
        "TaxPercent?, TaxableAmount?, TaxPaymentMethodCoded?, TaxLocation?, "
        "TaxAmounts?)",
    )
    leaf("TaxTypeCoded")
    leaf("TaxFunctionQualifierCoded")
    leaf("TaxCategoryCoded")
    leaf("TaxPercent")
    leaf("TaxableAmount")
    leaf("TaxPaymentMethodCoded")
    node("TaxLocation", "(TaxJurisdiction?, TaxLocationCoded?)")
    leaf("TaxJurisdiction")
    leaf("TaxLocationCoded")
    node("TaxAmounts", "(TaxAmountValue, TaxAmountCurrency?)")
    leaf("TaxAmountValue")
    leaf("TaxAmountCurrency")

    # --- allowances / charges ----------------------------------------------
    node("OrderAllowancesOrCharges", "(AllowOrCharge+)")
    node(
        "AllowOrCharge",
        "(AllowChargeIndicatorCoded, MethodOfHandlingCoded?, "
        "AllowanceChargeDescription?, BasisCoded?, "
        "AllowChargeRate?, AllowChargeQuantity?, AllowChargeAmounts?)",
    )
    leaf("AllowChargeIndicatorCoded")
    leaf("MethodOfHandlingCoded")
    leaf("AllowanceChargeDescription")
    leaf("BasisCoded")
    leaf("AllowChargeRate")
    leaf("AllowChargeQuantity")
    node("AllowChargeAmounts", "(AllowChargeAmountValue, AllowChargeAmountCurrency?)")
    leaf("AllowChargeAmountValue")
    leaf("AllowChargeAmountCurrency")

    # --- attachments ----------------------------------------------------------
    node("OrderAttachments", "(Attachment+)")
    node(
        "Attachment",
        "(AttachmentPurpose?, FileName, MIMEType?, AttachmentTitle?, "
        "AttachmentDescription?, URI?)",
    )
    leaf("AttachmentPurpose")
    leaf("FileName")
    leaf("MIMEType")
    leaf("AttachmentTitle")
    leaf("AttachmentDescription")
    leaf("URI")

    # --- item details ----------------------------------------------------------
    node("OrderDetail", "(ListOfItemDetail)")
    node("ListOfItemDetail", "(ItemDetail+)")
    node(
        "ItemDetail",
        "(BaseItemDetail, PricingDetail?, DeliveryDetail?, "
        "LineItemNotes?, PackagingDetail?, HazardDetail?, "
        "ItemTaxInformation?, LineItemAllowancesOrCharges?, "
        "LineItemAttachments?, ItemDetailUserArea?)",
    )
    node(
        "BaseItemDetail",
        "(LineItemNum, PartNumbers?, ItemIdentifiers?, "
        "TotalQuantity, MaxBackOrderQuantity?, ItemDescriptions?)",
    )
    leaf("LineItemNum")
    node(
        "PartNumbers",
        "(SellerPartNumber?, BuyerPartNumber?, ManufacturerPartNumber?, "
        "StandardPartNumber?, SubstitutePartNumbers?)",
    )
    node("SellerPartNumber", "(PartNum)")
    node("BuyerPartNumber", "(PartNum)")
    node("ManufacturerPartNumber", "(PartNum)")
    node("StandardPartNumber", "(PartNum)")
    node("SubstitutePartNumbers", "(PartNum+)")
    node("PartNum", "(PartID, RevisionNumber?)")
    leaf("PartID")
    leaf("RevisionNumber")
    node("ItemIdentifiers", "(ItemCommodityCode*, ItemBatchNumber?, ItemSerialNumber*)")
    node("ItemCommodityCode", "(CommodityCodeValue, CommodityCodeQualifier?)")
    leaf("CommodityCodeValue")
    leaf("CommodityCodeQualifier")
    leaf("ItemBatchNumber")
    leaf("ItemSerialNumber")
    node("TotalQuantity", "(Quantity)")
    node("MaxBackOrderQuantity", "(Quantity)")
    node("Quantity", "(QuantityValue, UnitOfMeasurement?)")
    leaf("QuantityValue")
    node("UnitOfMeasurement", "(UOMCoded, UOMCodedOther?)")
    leaf("UOMCoded")
    leaf("UOMCodedOther")
    node("ItemDescriptions", "(ItemDescription+)")
    node("ItemDescription", "(DescriptionValue, DescriptionLanguage?)")
    leaf("DescriptionValue")
    leaf("DescriptionLanguage")
    node(
        "PricingDetail",
        "(ListOfPrice, TotalValue?, ItemAllowancesOrCharges?, PricingNotes?)",
    )
    node("ListOfPrice", "(Price+)")
    node(
        "Price",
        "(PriceTypeCoded?, UnitPrice, PriceBasisQuantity?, PriceMultiplier?, "
        "ValidityDates?)",
    )
    leaf("PriceTypeCoded")
    node("UnitPrice", "(UnitPriceValue, UnitPriceCurrency?)")
    leaf("UnitPriceValue")
    leaf("UnitPriceCurrency")
    node("PriceBasisQuantity", "(Quantity)")
    leaf("PriceMultiplier")
    node("ValidityDates", "(ValidFromDate?, ValidToDate?)")
    leaf("ValidFromDate")
    leaf("ValidToDate")
    node("TotalValue", "(MonetaryValue)")
    node("MonetaryValue", "(MonetaryAmount, MonetaryCurrency?)")
    leaf("MonetaryAmount")
    leaf("MonetaryCurrency")
    node("ItemAllowancesOrCharges", "(AllowOrCharge+)")
    leaf("PricingNotes")
    node(
        "DeliveryDetail",
        "(ListOfScheduleLine?, ShipToLocation?, DeliveryInstructions?)",
    )
    node("ListOfScheduleLine", "(ScheduleLine+)")
    node(
        "ScheduleLine",
        "(ScheduleLineID?, ScheduleQuantity, ScheduleDates?, ScheduleNotes?)",
    )
    leaf("ScheduleLineID")
    node("ScheduleQuantity", "(Quantity)")
    node("ScheduleDates", "(RequestedDeliveryDate?, PromisedDeliveryDate?)")
    leaf("RequestedDeliveryDate")
    leaf("PromisedDeliveryDate")
    leaf("ScheduleNotes")
    node("ShipToLocation", "(LocationID?, LocationName?, NameAddress?)")
    leaf("LocationID")
    leaf("LocationName")
    leaf("DeliveryInstructions")
    leaf("LineItemNotes")
    node(
        "PackagingDetail",
        "(PackageTypeCoded?, PackagingDescription?, PackageDimensions?, "
        "PackageWeight?, PackageMarking?)",
    )
    leaf("PackageTypeCoded")
    leaf("PackagingDescription")
    node(
        "PackageDimensions",
        "(PackageLength?, PackageWidth?, PackageHeight?, DimensionUOM?)",
    )
    leaf("PackageLength")
    leaf("PackageWidth")
    leaf("PackageHeight")
    leaf("DimensionUOM")
    node("PackageWeight", "(WeightValue, WeightUOM?)")
    leaf("WeightValue")
    leaf("WeightUOM")
    leaf("PackageMarking")
    node(
        "HazardDetail",
        "(HazardTypeCoded?, HazardDescription?, HazardClassification?, "
        "HazardPageNumber?)",
    )
    leaf("HazardTypeCoded")
    leaf("HazardDescription")
    leaf("HazardClassification")
    leaf("HazardPageNumber")
    node("ItemTaxInformation", "(Tax+)")
    node("LineItemAllowancesOrCharges", "(AllowOrCharge+)")
    node("LineItemAttachments", "(Attachment+)")
    leaf("ItemDetailUserArea")

    # --- order summary ---------------------------------------------------------
    node(
        "OrderSummary",
        "(NumberOfLines?, TotalOrderQuantity?, OrderAmounts?, SummaryNotes?)",
    )
    leaf("NumberOfLines")
    node("TotalOrderQuantity", "(Quantity)")
    node(
        "OrderAmounts",
        "(" + ", ".join(f"{kind}Amount?" for kind in _AMOUNT_KINDS) + ")",
    )
    for kind in _AMOUNT_KINDS:
        node(f"{kind}Amount", f"({kind}AmountValue, {kind}AmountCurrency?)")
        leaf(f"{kind}AmountValue")
        leaf(f"{kind}AmountCurrency")
    leaf("SummaryNotes")

    return decls


@lru_cache(maxsize=None)
def xcbl_dtd() -> DTD:
    """The xCBL-Order-scale commerce DTD (569 elements, root ``Order``)."""
    decls = _xcbl_declarations()
    text = "\n".join(f"<!ELEMENT {name} {model}>" for name, model in decls)
    dtd = parse_dtd(text, root="Order")
    assert len(dtd) == XCBL_ELEMENT_COUNT, (
        f"xCBL-like DTD drifted: {len(dtd)} elements, expected {XCBL_ELEMENT_COUNT}"
    )
    return dtd


# ---------------------------------------------------------------------------
# DBLP-like bibliography DTD (for the Section 5.1 compaction anecdote)
# ---------------------------------------------------------------------------

_DBLP_RECORD_TYPES = (
    "article", "inproceedings", "proceedings", "book", "incollection",
    "phdthesis", "mastersthesis", "www",
)

_DBLP_FIELDS = (
    "author", "editor", "title", "booktitle", "pages", "year", "address",
    "journal", "volume", "number", "month", "url", "ee", "cdrom", "cite",
    "publisher", "note", "crossref", "isbn", "series", "school", "chapter",
)


@lru_cache(maxsize=None)
def dblp_dtd() -> DTD:
    """A DBLP-like bibliography DTD: one huge ``dblp`` root holding highly
    repetitive publication records — the extreme-compaction case the paper
    cites (7,991,221 tag nodes collapsing into a 137-node synopsis)."""
    fields = ", ".join(f"{field}*" for field in _DBLP_FIELDS)
    decls = [f"<!ELEMENT dblp ({' | '.join(_DBLP_RECORD_TYPES)})*>"]
    decls.extend(
        f"<!ELEMENT {record} ({fields})>" for record in _DBLP_RECORD_TYPES
    )
    decls.extend(f"<!ELEMENT {field} (#PCDATA)>" for field in _DBLP_FIELDS)
    return parse_dtd("\n".join(decls), root="dblp")


def builtin_dtd(name: str) -> DTD:
    """Look up a built-in DTD by name (``"nitf"``, ``"xcbl"`` or ``"dblp"``)."""
    if name == "nitf":
        return nitf_dtd()
    if name == "xcbl":
        return xcbl_dtd()
    if name == "dblp":
        return dblp_dtd()
    raise ValueError(f"unknown built-in DTD {name!r}; choose from {BUILTIN_DTD_NAMES}")
