"""Validating documents against a DTD's content models.

The document generator promises DTD-valid output; this module provides the
independent check.  Each element's children must match its content model —
a regular expression over element names — which is decided by compiling the
content particle to a Thompson-style NFA (epsilon transitions for
``?``/``*``/``+``, alternation for choices, concatenation for sequences)
and simulating it over the child-tag sequence.

``#PCDATA`` and attribute declarations are outside the model (the library's
trees are element-structure only), so mixed-content elements validate
purely on their element children, in any order for choice-star models —
matching how the generators emit them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dtd.model import DTD, ElementType, Occurs, Particle
from repro.xmltree.tree import XMLTree

__all__ = ["ValidationError", "ValidationReport", "validate_tree"]


@dataclass(frozen=True)
class ValidationError:
    """One violation: an element whose children do not fit its model."""

    node: int
    element: str
    children: tuple[str, ...]
    reason: str

    def __str__(self) -> str:
        kids = "/".join(self.children) or "(none)"
        return f"<{self.element}> node {self.node}: {self.reason} (children: {kids})"


@dataclass
class ValidationReport:
    """All violations found in one document."""

    errors: list[ValidationError] = field(default_factory=list)

    @property
    def valid(self) -> bool:
        """Whether the document produced no validation errors."""
        return not self.errors

    def __bool__(self) -> bool:
        return self.valid

    def __str__(self) -> str:
        if self.valid:
            return "valid"
        return "\n".join(str(error) for error in self.errors)


class _NFA:
    """Thompson NFA over element-name symbols.

    States are integers; transitions are ``(state, symbol) -> {states}``
    plus epsilon edges.  Built once per element type and cached on the
    validator.
    """

    def __init__(self) -> None:
        self.transitions: list[dict[str, set[int]]] = []
        self.epsilons: list[set[int]] = []

    def new_state(self) -> int:
        self.transitions.append({})
        self.epsilons.append(set())
        return len(self.transitions) - 1

    def add_edge(self, source: int, symbol: str, target: int) -> None:
        self.transitions[source].setdefault(symbol, set()).add(target)

    def add_epsilon(self, source: int, target: int) -> None:
        self.epsilons[source].add(target)

    def closure(self, states: set[int]) -> set[int]:
        result = set(states)
        frontier = list(states)
        while frontier:
            state = frontier.pop()
            for target in self.epsilons[state]:
                if target not in result:
                    result.add(target)
                    frontier.append(target)
        return result

    def accepts(self, symbols: tuple[str, ...], start: int, accept: int) -> bool:
        current = self.closure({start})
        for symbol in symbols:
            following: set[int] = set()
            for state in current:
                following |= self.transitions[state].get(symbol, set())
            if not following:
                return False
            current = self.closure(following)
        return accept in current


def _compile_particle(nfa: _NFA, particle: Particle) -> tuple[int, int]:
    """Compile *particle* into (start, accept) states of *nfa*."""
    if particle.kind == "pcdata":
        start = nfa.new_state()
        accept = nfa.new_state()
        nfa.add_epsilon(start, accept)
        return _apply_occurs(nfa, start, accept, Occurs.ONE)

    if particle.kind == "element":
        start = nfa.new_state()
        accept = nfa.new_state()
        assert particle.name is not None
        nfa.add_edge(start, particle.name, accept)
        return _apply_occurs(nfa, start, accept, particle.occurs)

    if particle.kind == "seq":
        start, accept = None, None
        for child in particle.children:
            child_start, child_accept = _compile_particle(nfa, child)
            if start is None:
                start = child_start
            else:
                assert accept is not None
                nfa.add_epsilon(accept, child_start)
            accept = child_accept
        assert start is not None and accept is not None
        return _apply_occurs(nfa, start, accept, particle.occurs)

    # choice
    start = nfa.new_state()
    accept = nfa.new_state()
    for child in particle.children:
        child_start, child_accept = _compile_particle(nfa, child)
        nfa.add_epsilon(start, child_start)
        nfa.add_epsilon(child_accept, accept)
    return _apply_occurs(nfa, start, accept, particle.occurs)


def _apply_occurs(
    nfa: _NFA, start: int, accept: int, occurs: Occurs
) -> tuple[int, int]:
    """Wrap a compiled fragment with its repetition operator."""
    if occurs == Occurs.ONE:
        return start, accept
    outer_start = nfa.new_state()
    outer_accept = nfa.new_state()
    nfa.add_epsilon(outer_start, start)
    nfa.add_epsilon(accept, outer_accept)
    if occurs in (Occurs.OPTIONAL, Occurs.STAR):
        nfa.add_epsilon(outer_start, outer_accept)
    if occurs in (Occurs.STAR, Occurs.PLUS):
        nfa.add_epsilon(accept, start)
    return outer_start, outer_accept


class _ElementValidator:
    """Compiled acceptor for one element type's children."""

    def __init__(self, element: ElementType):
        self.element = element
        if element.content is None:
            self.nfa: Optional[_NFA] = None
            self.start = self.accept = -1
        else:
            self.nfa = _NFA()
            self.start, self.accept = _compile_particle(self.nfa, element.content)

    def accepts(self, children: tuple[str, ...]) -> bool:
        if self.nfa is None:
            return not children  # EMPTY / pure-PCDATA: no element children
        return self.nfa.accepts(children, self.start, self.accept)


def validate_tree(
    dtd: DTD, tree: XMLTree, max_errors: int = 100
) -> ValidationReport:
    """Check *tree* against *dtd*; returns a report of all violations.

    Checks: the root element matches the DTD root; every tag is declared;
    every node's element-children sequence is accepted by its content model.
    Document-generator size/depth truncation produces *prefixes* of valid
    content, so truncated documents may legitimately fail the strict model —
    pass the generator's output un-truncated (the default configuration) for
    a guaranteed-valid stream, or inspect the specific errors.
    """
    report = ValidationReport()

    def record(node: int, element: str, children: tuple[str, ...], reason: str):
        if len(report.errors) < max_errors:
            report.errors.append(
                ValidationError(node, element, children, reason)
            )

    if tree.labels[0] != dtd.root:
        record(0, tree.labels[0], (), f"root must be <{dtd.root}>")

    validators: dict[str, _ElementValidator] = {}
    for node in tree.iter_preorder():
        tag = tree.labels[node]
        if tag not in dtd:
            record(node, tag, (), "element not declared")
            continue
        validator = validators.get(tag)
        if validator is None:
            validator = _ElementValidator(dtd.element(tag))
            validators[tag] = validator
        children = tuple(tree.labels[child] for child in tree.children[node])
        if not validator.accepts(children):
            record(node, tag, children, "children do not match content model")
    return report
