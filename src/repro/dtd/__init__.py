"""DTD substrate: model, parser, and the built-in NITF/xCBL-scale document
types used by the paper's evaluation."""

from repro.dtd.builtin import (
    BUILTIN_DTD_NAMES,
    NITF_ELEMENT_COUNT,
    XCBL_ELEMENT_COUNT,
    builtin_dtd,
    nitf_dtd,
    xcbl_dtd,
)
from repro.dtd.model import DTD, DTDError, ElementType, Occurs, Particle
from repro.dtd.parser import parse_content_model, parse_dtd
from repro.dtd.validate import ValidationError, ValidationReport, validate_tree

__all__ = [
    "DTD",
    "DTDError",
    "ElementType",
    "Occurs",
    "Particle",
    "parse_dtd",
    "parse_content_model",
    "validate_tree",
    "ValidationReport",
    "ValidationError",
    "builtin_dtd",
    "nitf_dtd",
    "xcbl_dtd",
    "BUILTIN_DTD_NAMES",
    "NITF_ELEMENT_COUNT",
    "XCBL_ELEMENT_COUNT",
]
