"""Parser for the ``<!ELEMENT ...>`` subset of DTD syntax.

Supports what the built-in document types and typical news/commerce DTDs
use: sequences ``(a, b?, c*)``, choices ``(a | b)+``, nested groups, mixed
content ``(#PCDATA | em | a)*``, ``EMPTY`` and ``ANY``.  Attribute
declarations (``<!ATTLIST``), entities and comments are skipped — the
generators only need element structure.
"""

from __future__ import annotations

import re

from repro.dtd.model import DTD, DTDError, ElementType, Occurs, Particle

__all__ = ["parse_dtd", "parse_content_model"]

_ELEMENT_START_RE = re.compile(r"<!ELEMENT\s+([\w.\-:]+)\s+", re.DOTALL)
_COMMENT_RE = re.compile(r"<!--.*?-->", re.DOTALL)
_ATTLIST_RE = re.compile(r"<!ATTLIST\s.*?>", re.DOTALL)
_ENTITY_RE = re.compile(r"<!ENTITY\s.*?>", re.DOTALL)

_OCCURS_BY_SUFFIX = {"?": Occurs.OPTIONAL, "*": Occurs.STAR, "+": Occurs.PLUS}


class _ContentParser:
    """Recursive-descent parser for one content-model expression."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> DTDError:
        return DTDError(f"{message} at offset {self.pos} in {self.text!r}")

    def skip_space(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def read_occurs(self) -> Occurs:
        if self.pos < len(self.text) and self.text[self.pos] in _OCCURS_BY_SUFFIX:
            suffix = self.text[self.pos]
            self.pos += 1
            return _OCCURS_BY_SUFFIX[suffix]
        return Occurs.ONE

    def parse_group(self) -> Particle:
        """Parse ``( item (sep item)* )occurs`` with a consistent separator."""
        self.skip_space()
        if self.text[self.pos] != "(":
            raise self.error("expected '('")
        self.pos += 1
        items = [self.parse_item()]
        separator = None
        while True:
            self.skip_space()
            if self.pos >= len(self.text):
                raise self.error("unterminated group")
            char = self.text[self.pos]
            if char == ")":
                self.pos += 1
                break
            if char not in ",|":
                raise self.error(f"expected ',', '|' or ')', found {char!r}")
            if separator is None:
                separator = char
            elif separator != char:
                raise self.error("mixed ',' and '|' in one group")
            self.pos += 1
            items.append(self.parse_item())
        occurs = self.read_occurs()
        if len(items) == 1 and items[0].kind != "pcdata":
            # Collapse single-item groups, composing the operators
            # (e.g. ``(a?)*`` degrades to ``a*``).
            inner = items[0]
            if occurs == Occurs.ONE:
                return inner
            if inner.occurs == Occurs.ONE:
                return Particle(inner.kind, occurs, inner.name, inner.children)
            return Particle("seq", occurs, children=(inner,))
        kind = "choice" if separator == "|" else "seq"
        return Particle(kind, occurs, children=tuple(items))

    def parse_item(self) -> Particle:
        self.skip_space()
        if self.pos >= len(self.text):
            raise self.error("unexpected end of content model")
        if self.text[self.pos] == "(":
            return self.parse_group()
        if self.text.startswith("#PCDATA", self.pos):
            self.pos += len("#PCDATA")
            return Particle("pcdata")
        match = re.match(r"[\w.\-:]+", self.text[self.pos :])
        if not match:
            raise self.error("expected an element name")
        name = match.group(0)
        self.pos += len(name)
        return Particle("element", self.read_occurs(), name=name)


def parse_content_model(text: str) -> Particle:
    """Parse one parenthesised content model into a :class:`Particle`."""
    parser = _ContentParser(text.strip())
    particle = parser.parse_group()
    parser.skip_space()
    if parser.pos != len(parser.text):
        raise parser.error("trailing input after content model")
    return particle


def _strip_pcdata(particle: Particle) -> tuple[Particle | None, bool]:
    """Remove ``#PCDATA`` particles, reporting whether any were present."""
    if particle.kind == "pcdata":
        return None, True
    if particle.kind == "element":
        return particle, False
    kept: list[Particle] = []
    has_pcdata = False
    for child in particle.children:
        stripped, child_pcdata = _strip_pcdata(child)
        has_pcdata = has_pcdata or child_pcdata
        if stripped is not None:
            kept.append(stripped)
    if not kept:
        return None, has_pcdata
    return (
        Particle(particle.kind, particle.occurs, children=tuple(kept)),
        has_pcdata,
    )


def _iter_declarations(text: str):
    """Yield ``(name, content-model-text)`` for each ``<!ELEMENT`` in *text*.

    Content models may nest parentheses, so the model's extent is found by
    balancing them rather than by regex.
    """
    for match in _ELEMENT_START_RE.finditer(text):
        name = match.group(1)
        pos = match.end()
        if text.startswith("EMPTY", pos):
            yield name, "EMPTY"
            continue
        if text.startswith("ANY", pos):
            yield name, "ANY"
            continue
        if pos >= len(text) or text[pos] != "(":
            raise DTDError(f"malformed content model for element {name!r}")
        depth = 0
        end = pos
        while end < len(text):
            char = text[end]
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
                if depth == 0:
                    end += 1
                    break
            end += 1
        if depth != 0:
            raise DTDError(f"unbalanced parentheses in element {name!r}")
        if end < len(text) and text[end] in "?*+":
            end += 1
        yield name, text[pos:end]


def parse_dtd(text: str, root: str | None = None) -> DTD:
    """Parse DTD *text* into a :class:`DTD`.

    The root defaults to the first declared element, matching the common
    convention of declaring the document element first.
    """
    text = _COMMENT_RE.sub("", text)
    text = _ATTLIST_RE.sub("", text)
    text = _ENTITY_RE.sub("", text)

    elements: dict[str, ElementType] = {}
    first: str | None = None
    for name, model in _iter_declarations(text):
        if name in elements:
            raise DTDError(f"element {name!r} declared twice")
        if first is None:
            first = name
        if model == "EMPTY":
            elements[name] = ElementType(name)
        elif model == "ANY":
            # ANY is modelled as a structural leaf: generators cannot
            # meaningfully instantiate "any element" content.
            elements[name] = ElementType(name, has_pcdata=True)
        else:
            particle = parse_content_model(model)
            content, has_pcdata = _strip_pcdata(particle)
            elements[name] = ElementType(name, content, has_pcdata=has_pcdata)
    if not elements:
        raise DTDError("no <!ELEMENT> declarations found")
    chosen_root = root or first
    assert chosen_root is not None
    return DTD(chosen_root, elements)
