"""Document Type Definition (DTD) model.

The workload generators of Section 5.1 are DTD-driven: documents are random
instances of a DTD, and tree patterns are random walks over the DTD's
element graph.  This module models the subset of DTDs those generators need:
element declarations with content particles (sequences, choices, repetition
operators) plus ``EMPTY``/``#PCDATA`` leaves.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional

__all__ = ["Occurs", "Particle", "ElementType", "DTD", "DTDError"]


class DTDError(ValueError):
    """Raised for structurally invalid DTDs."""


class Occurs(enum.Enum):
    """Repetition operator attached to a content particle."""

    ONE = ""
    OPTIONAL = "?"
    STAR = "*"
    PLUS = "+"

    @property
    def min_count(self) -> int:
        """Minimum number of occurrences the operator admits."""
        return 1 if self in (Occurs.ONE, Occurs.PLUS) else 0

    @property
    def unbounded(self) -> bool:
        """Whether the operator admits arbitrarily many occurrences."""
        return self in (Occurs.STAR, Occurs.PLUS)


@dataclass(frozen=True)
class Particle:
    """One content-model particle: an element reference, a sequence, or a
    choice, each with a repetition operator.

    ``kind`` is ``"element"``, ``"seq"``, ``"choice"`` or ``"pcdata"``.
    Element particles carry ``name``; group particles carry ``children``.
    """

    kind: str
    occurs: Occurs = Occurs.ONE
    name: Optional[str] = None
    children: tuple["Particle", ...] = ()

    def __post_init__(self) -> None:
        if self.kind == "element":
            if not self.name:
                raise DTDError("element particle needs a name")
        elif self.kind in ("seq", "choice"):
            if not self.children:
                raise DTDError(f"{self.kind} particle needs children")
        elif self.kind == "pcdata":
            pass
        else:
            raise DTDError(f"unknown particle kind {self.kind!r}")

    def element_names(self) -> Iterator[str]:
        """Yield every element name referenced below this particle."""
        if self.kind == "element":
            assert self.name is not None
            yield self.name
        for child in self.children:
            yield from child.element_names()

    def render(self) -> str:
        """Back to DTD content-model syntax."""
        if self.kind == "element":
            return f"{self.name}{self.occurs.value}"
        if self.kind == "pcdata":
            return "#PCDATA"
        separator = ", " if self.kind == "seq" else " | "
        inner = separator.join(child.render() for child in self.children)
        return f"({inner}){self.occurs.value}"


@dataclass(frozen=True)
class ElementType:
    """One ``<!ELEMENT name content>`` declaration.

    ``content`` is ``None`` for ``EMPTY`` elements and for pure
    ``(#PCDATA)`` elements (the generators treat both as structural leaves;
    ``has_pcdata`` distinguishes them for value generation).
    """

    name: str
    content: Optional[Particle] = None
    has_pcdata: bool = False

    def child_names(self) -> tuple[str, ...]:
        """Distinct element names that can appear as children, in
        declaration order."""
        if self.content is None:
            return ()
        seen: list[str] = []
        for name in self.content.element_names():
            if name not in seen:
                seen.append(name)
        return tuple(seen)

    def render(self) -> str:
        """Back to ``<!ELEMENT ...>`` syntax.

        Mixed content is rendered without its ``#PCDATA`` alternative (the
        generators treat text as an element-level property), so rendering is
        structure-preserving but not byte-identical.
        """
        if self.content is None and not self.has_pcdata:
            return f"<!ELEMENT {self.name} EMPTY>"
        if self.content is None:
            return f"<!ELEMENT {self.name} (#PCDATA)>"
        body = self.content.render()
        if self.content.kind == "element":
            body = f"({body})"
        return f"<!ELEMENT {self.name} {body}>"


class DTD:
    """A set of element declarations with a designated root element."""

    def __init__(self, root: str, elements: dict[str, ElementType]):
        if root not in elements:
            raise DTDError(f"root element {root!r} is not declared")
        undeclared = {
            name
            for element in elements.values()
            for name in element.child_names()
            if name not in elements
        }
        if undeclared:
            raise DTDError(
                f"content models reference undeclared elements: {sorted(undeclared)[:5]}"
            )
        self.root = root
        self.elements = dict(elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __contains__(self, name: str) -> bool:
        return name in self.elements

    def element(self, name: str) -> ElementType:
        """Declaration of *name*; KeyError if undeclared."""
        return self.elements[name]

    def child_graph(self) -> dict[str, tuple[str, ...]]:
        """Element name → distinct possible child element names."""
        return {
            name: element.child_names() for name, element in self.elements.items()
        }

    def reachable_elements(self) -> frozenset[str]:
        """Element names reachable from the root (a well-formed DTD for our
        generators should reach everything)."""
        seen: set[str] = set()
        stack = [self.root]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self.elements[name].child_names())
        return frozenset(seen)

    def max_depth(self, limit: int = 64) -> int:
        """Length of the longest root path through the child graph.

        Recursive DTDs admit unbounded documents, so a cycle reachable from
        the root yields *limit*; otherwise the child graph restricted to
        reachable elements is a DAG and its longest path is computed by a
        topological dynamic program.
        """
        reachable = self.reachable_elements()
        graph = {
            name: tuple(c for c in children if c in reachable)
            for name, children in self.child_graph().items()
            if name in reachable
        }
        # Depth-first cycle detection + post-order for the DP.
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {name: WHITE for name in graph}
        post_order: list[str] = []
        stack: list[tuple[str, int]] = [(self.root, 0)]
        while stack:
            name, child_index = stack.pop()
            if child_index == 0:
                if color[name] == BLACK:
                    continue
                if color[name] == GRAY:
                    continue
                color[name] = GRAY
            children = graph[name]
            if child_index < len(children):
                stack.append((name, child_index + 1))
                child = children[child_index]
                if color[child] == GRAY:
                    return limit  # cycle reachable from the root
                if color[child] == WHITE:
                    stack.append((child, 0))
            else:
                color[name] = BLACK
                post_order.append(name)
        height: dict[str, int] = {}
        for name in post_order:
            height[name] = 1 + max(
                (height[c] for c in graph[name]), default=0
            )
        return min(height.get(self.root, 1), limit)

    def render(self) -> str:
        """The whole DTD back in ``<!ELEMENT ...>`` syntax."""
        return "\n".join(
            element.render() for element in self.elements.values()
        )

    def __repr__(self) -> str:
        return f"DTD(root={self.root!r}, elements={len(self.elements)})"
