"""Figure 9 — average absolute relative error of proximity metric
M3(p,q) = P(p ∧ q) / P(p ∨ q).

Paper shape: consistent with M1/M2; Hashes produce good estimates with
relatively small per-node budgets.
"""

from __future__ import annotations

from repro.experiments.figures import figure9

from _bench_utils import save_figure, series_map


def test_figure9(benchmark, quick_configs):
    figure = benchmark.pedantic(
        figure9, args=(quick_configs,), rounds=1, iterations=1
    )
    save_figure(figure)
    curves = series_map(figure)

    for dtd in ("NITF", "XCBL"):
        hashes = curves[f"Hashes - {dtd}"]
        sets = curves[f"Sets - {dtd}"]
        counters = curves[f"Counters - {dtd}"]
        assert len(set(counters)) == 1          # flat baseline
        assert hashes[-1] <= hashes[0]          # decays with budget
        # Sweep-mean comparison: see bench_figure7 for the rationale.
        assert sum(hashes) / len(hashes) <= sum(sets) / len(sets) + 1e-9
        assert hashes[-1] < 25.0                # good estimates at ~half stream
