"""Figure 10 — Erel (positive) and Esqr (negative) as functions of the
synopsis compression ratio α, for the Hashes representation at a fixed
per-node budget.

Paper shape: positive-query error decreases as α grows toward 1 (less
compression), remaining reasonable (~15%) at α = 0.2; the negative-query
error stays extremely low and — counter-intuitively — *increases* with α,
because a heavily pruned synopsis has fewer paths left to wrongly accept a
negative query.
"""

from __future__ import annotations

from repro.experiments.figures import figure10

from _bench_utils import save_figure, series_map


def test_figure10(benchmark, quick_configs):
    figure = benchmark.pedantic(
        figure10, args=(quick_configs,), rounds=1, iterations=1
    )
    save_figure(figure)
    curves = series_map(figure)

    for dtd in ("NITF", "XCBL"):
        erel = curves[f"Erel - {dtd}"]
        # Less compression -> better (or equal) accuracy at the extremes.
        assert erel[-1] <= erel[0] + 1e-9
        # Uncompressed (alpha = 1.0, lossless folds only) stays accurate.
        assert erel[-1] < 25.0

    # Negative-query errors, when present at all, stay tiny.
    for label, ys in curves.items():
        if label.startswith("Esqr") and ys:
            assert all(y <= -1.5 for y in ys), (label, ys)
