"""Figure 6 — Erel of positive queries as a function of the *total* synopsis
size |HS| (xCBL data set).

Paper shape: the fairest comparison of the three representations.  Counters
are tiny but inaccurate; at a given space budget Hashes dominate Sets
(the paper: ~5% error at a size Sets need four times as much space for).
"""

from __future__ import annotations

from repro.experiments.figures import figure6

from _bench_utils import save_figure, series_map


def test_figure6(benchmark, xcbl_quick):
    figure = benchmark.pedantic(
        figure6, args=([xcbl_quick],), rounds=1, iterations=1
    )
    save_figure(figure)
    curves = series_map(figure)
    xs = {series.label: series.xs for series in figure.series}

    counters = xs["Counters - XCBL"]
    hashes_xs = xs["Hashes - XCBL"]

    # Counters are a fixed-size structure: a single point, far below the
    # largest sampled budgets.
    assert len(counters) == 1
    assert counters[0] < max(hashes_xs)

    # Accuracy improves as the synopsis grows, for both sampled schemes.
    assert curves["Hashes - XCBL"][-1] <= curves["Hashes - XCBL"][0]
    assert curves["Sets - XCBL"][-1] <= curves["Sets - XCBL"][0]

    # Hashes dominate Sets at the largest budget, and beat the counter
    # baseline's fixed accuracy once given enough space.
    assert curves["Hashes - XCBL"][-1] <= curves["Sets - XCBL"][-1] + 1e-9
    assert curves["Hashes - XCBL"][-1] <= curves["Counters - XCBL"][0] + 1e-9
