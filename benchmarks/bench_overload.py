"""Overload benchmark: bounded queues, back-pressure, fair shares.

Sweeps the publish rate past the saturation knee on the family's fixed
random tree and replays the same stream under each queue policy
(unbounded baseline, drop-new, drop-oldest, NACK — all through the
:class:`~repro.routing.builder.OverlayBuilder` façade), then runs two
focused cells at the saturating rate: a weighted-fair scheduling cell
scoring per-class completion shares, and a closed-loop AIMD source cell
where the publisher reacts to NACK back-pressure instead of publishing
open-loop.

The headline claims asserted here:

* **conservation** — every cell balances its ledger:
  ``offered == completed + dropped + nacked`` with nothing in flight
  after the drain, bounded or not;
* **unbounded queues do not survive overload** — past the knee the
  baseline's peak queue depth keeps growing with the rate, and its
  delivery p99 grows with it;
* **bounded queues degrade gracefully** — at the saturating rate every
  bounded cell keeps its peak depth at ``capacity + 1`` and its
  admitted-traffic p99 strictly below the unbounded baseline's: the
  engine sheds load instead of queueing it;
* **weighted-fair shares survive the knee** — under sustained overload
  the per-class completion shares order like the configured weights;
* **closed-loop sources drain** — the AIMD window throttles into the
  bound, every document is eventually absorbed, and the ledger still
  balances.

Also runnable standalone for a quick smoke check (used by CI)::

    PYTHONPATH=src python benchmarks/bench_overload.py --smoke
"""

from __future__ import annotations

import argparse

from common import (
    overlay_argument_parser,
    run_with_profile,
    overlay_builder,
    prepare_quick,
    prepare_smoke,
)
from repro.experiments.harness import prepare
from repro.routing.broker import LatencyStats
from repro.routing.builder import OverlayBuilder
from repro.routing.engine import ClosedLoopSource, LinkModel, ServiceModel
from repro.routing.overlay import BrokerOverlay
from repro.routing.policy import QueuePolicy, WeightedFairScheduling

N_BROKERS = 4
N_SUBSCRIBERS = 60
#: Publish rates swept per queue policy; the top rate sits well past the
#: saturation knee of the service model below.
RATES = (0.5, 2.0, 10.0)
SATURATING_RATE = max(RATES)
CAPACITY = 8
SERVICE = ServiceModel(base=0.2, per_match=0.05)
LINKS = LinkModel(default=1.0)

#: Queue-policy cells swept per rate; ``None`` is the unbounded baseline.
QUEUE_CELLS: tuple[tuple[str, QueuePolicy], ...] = (
    ("unbounded", QueuePolicy(None)),
    ("drop-new", QueuePolicy(CAPACITY, "drop-new")),
    ("drop-oldest", QueuePolicy(CAPACITY, "drop-oldest")),
    ("nack", QueuePolicy(CAPACITY, "nack")),
)

#: Weighted-fair cell: class 0 is provisioned three shares to class 1's
#: one, so past the knee completions should split roughly 3:1.
FAIR_WEIGHTS = {0: 3.0, 1: 1.0}
FAIR_CLASSES = (0, 1)
#: The fairness cell's own workload shape: a single broker with a small
#: fixed routing table (so service time does not scale with the sweep's
#: subscriber count), driven a few× past its service rate for at least
#: this many publications — shares only converge over a long storm.
FAIR_SUBSCRIBERS = 8
FAIR_RATE = 6.0
FAIR_MIN_PUBLICATIONS = 400


def base_builder(
    prepared, n_subscribers: int, n_brokers: int
) -> OverlayBuilder:
    """The sweep's shared recipe: topology, homes, timing models.

    Linear matching keeps service time affine in table size, the regime
    where queues actually build (see bench_latency.py).
    """
    return (
        overlay_builder(n_brokers, prepared.positive[:n_subscribers])
        .matching("linear")
        .service(SERVICE)
        .links(LINKS)
    )


def sync_reference(
    overlay: BrokerOverlay, corpus
) -> dict[int, frozenset[int]]:
    """Per published document, the synchronous path's delivery sets."""
    return {
        index: frozenset(
            overlay.route(document, index % len(overlay.brokers))[0]
        )
        for index, document in enumerate(corpus.documents)
    }


def assert_conserved(stats: LatencyStats, cell: object) -> None:
    """The drained conservation ledger every cell must balance."""
    assert stats.in_flight_jobs == 0, cell
    assert stats.offered_jobs == (
        stats.completed_jobs + stats.dropped_jobs + stats.nacked_jobs
    ), cell
    assert sum(stats.dropped_by_broker.values()) == stats.dropped_jobs, cell


def run_cell(
    builder: OverlayBuilder,
    overlay: BrokerOverlay,
    corpus,
    rate: float,
    policy: QueuePolicy,
    reference: dict[int, frozenset[int]],
) -> LatencyStats:
    """One engine run at *rate* under *policy*, ledger-checked."""
    engine = builder.queue_policy(policy).build_engine(overlay)
    engine.publish_corpus(corpus, rate=rate)
    stats = engine.run()
    assert_conserved(stats, (policy, rate))
    delivered = engine.delivered_sets()
    if not policy.bounded:
        # The unbounded baseline is the pre-overload engine: nothing is
        # ever shed and delivery matches the synchronous path exactly.
        assert stats.dropped_jobs == 0 and stats.nacked_jobs == 0, rate
        assert delivered == reference, rate
    else:
        # Bounded queues shed load; they never invent deliveries.
        for index, subscribers in delivered.items():
            assert subscribers <= reference[index], (policy, rate, index)
    return stats


def run_sweep(
    prepared,
    rates: tuple[float, ...] = RATES,
    n_subscribers: int = N_SUBSCRIBERS,
    n_brokers: int = N_BROKERS,
) -> list[tuple[str, float, LatencyStats]]:
    """Drive the stream through every (queue policy, rate) cell."""
    corpus = prepared.corpus
    builder = base_builder(prepared, n_subscribers, n_brokers)
    overlay = builder.build_overlay()
    reference = sync_reference(overlay, corpus)
    rows: list[tuple[str, float, LatencyStats]] = []
    for name, policy in QUEUE_CELLS:
        for rate in rates:
            rows.append(
                (
                    name,
                    rate,
                    run_cell(
                        builder, overlay, corpus, rate, policy, reference
                    ),
                )
            )
    return rows


def run_fairness_cell(prepared) -> LatencyStats:
    """Weighted-fair scheduling under a long sustained storm.

    Runs on a single broker — one saturated drain point, so the
    scheduler (not topology spread) decides who completes; on the
    multi-broker sweep the lightly loaded downstream brokers complete
    forwarded copies class-blind and dilute the shares.  The corpus is
    replayed back to back until at least ``FAIR_MIN_PUBLICATIONS`` have
    been offered: the share signal lives in the steady-state storm, and
    a short run is dominated by the ramp and the class-blind tail
    drain.  Admission is class-blind too, so the acceptance check below
    allows a loose band around the provisioned split.
    """
    corpus = prepared.corpus
    builder = (
        base_builder(prepared, FAIR_SUBSCRIBERS, n_brokers=1)
        .scheduling(WeightedFairScheduling(FAIR_WEIGHTS))
        .queue_policy(QueuePolicy(CAPACITY, "drop-oldest"))
    )
    engine = builder.build_engine(builder.build_overlay())
    per_pass = len(corpus.documents)
    passes = max(1, -(-FAIR_MIN_PUBLICATIONS // per_pass))
    for repeat in range(passes):
        engine.publish_corpus(
            corpus,
            rate=FAIR_RATE,
            start=repeat * per_pass / FAIR_RATE,
            classes=FAIR_CLASSES,
        )
    stats = engine.run()
    assert_conserved(stats, ("weighted_fair", FAIR_RATE))
    return stats


def run_closed_loop_cell(
    prepared,
    n_subscribers: int = N_SUBSCRIBERS,
    n_brokers: int = N_BROKERS,
):
    """A back-pressured AIMD source against NACK-bounded queues.

    Returns ``(stats, report)``: the engine ledger and the source's own
    view (window trajectory endpoint, clean/dirty ack split).
    """
    corpus = prepared.corpus
    builder = (
        base_builder(prepared, n_subscribers, n_brokers)
        .queue_policy(QueuePolicy(2, "nack"))
        .sources(
            ClosedLoopSource(
                corpus,
                at_broker=0,
                initial_window=4.0,
                feedback_delay=0.5,
                seed=3,
            )
        )
    )
    engine = builder.build_engine(builder.build_overlay())
    stats = engine.run()
    assert_conserved(stats, "closed_loop")
    report = engine.source_report(0)
    assert report.published == len(corpus.documents), report
    assert report.pending == 0 and report.outstanding == 0, report
    assert report.acked == report.published, report
    return stats, report


def render(rows: list[tuple[str, float, LatencyStats]]) -> str:
    header = (
        f"{'policy':12s} {'rate':>5s} {'p50':>7s} {'p99':>7s} "
        f"{'depth':>5s} {'admit':>6s} {'drop':>5s} {'nack':>5s} "
        f"{'deliv':>6s}"
    )
    lines = [header, "-" * len(header)]
    for name, rate, stats in rows:
        lines.append(
            f"{name:12s} {rate:5.2f} {stats.latency_p50:7.2f} "
            f"{stats.latency_p99:7.2f} {stats.peak_queue_depth:5d} "
            f"{stats.admission_ratio:6.3f} {stats.dropped_jobs:5d} "
            f"{stats.nacked_jobs:5d} {stats.deliveries:6d}"
        )
    return "\n".join(lines) + "\n"


def render_fairness(stats: LatencyStats) -> str:
    shares = stats.completed_share_by_class
    lines = [
        "weighted_fair shares at saturating rate "
        f"(weights {FAIR_WEIGHTS}):"
    ]
    for priority_class in sorted(shares):
        lines.append(
            f"  class {priority_class}: "
            f"share {shares[priority_class]:.3f} "
            f"({stats.completed_by_class.get(priority_class, 0)} completed)"
        )
    return "\n".join(lines) + "\n"


def render_closed_loop(stats: LatencyStats, report) -> str:
    return (
        "closed_loop: "
        f"published {report.published}, acked {report.acked} "
        f"(clean {report.clean_acks}), nack signals {report.nack_signals}, "
        f"final window {report.window:.2f}, "
        f"admission {stats.admission_ratio:.3f}\n"
    )


def check_acceptance(rows: list[tuple[str, float, LatencyStats]]) -> None:
    """Assert the overload headlines over a finished sweep.

    Conservation and delivery containment are asserted per cell inside
    :func:`run_cell`; here we check the degradation shape.
    """
    by_cell = {(name, rate): stats for name, rate, stats in rows}
    rates = sorted({rate for _, rate, _ in rows})
    low, top = rates[0], rates[-1]
    baseline_low = by_cell[("unbounded", low)]
    baseline_top = by_cell[("unbounded", top)]
    # Past the knee the unbounded backlog keeps growing with the rate.
    assert (
        baseline_top.peak_queue_depth > baseline_low.peak_queue_depth
    ), (baseline_low.peak_queue_depth, baseline_top.peak_queue_depth)
    assert baseline_top.latency_p99 > baseline_low.latency_p99, (
        baseline_low.latency_p99,
        baseline_top.latency_p99,
    )
    for name, _ in QUEUE_CELLS:
        if name == "unbounded":
            continue
        bounded = by_cell[(name, top)]
        # Graceful degradation: the bound caps the backlog (one extra
        # slot for the job in service) and with it the admitted
        # traffic's tail latency; load is shed, not queued.
        assert bounded.peak_queue_depth <= CAPACITY + 1, name
        assert bounded.latency_p99 < baseline_top.latency_p99, (
            name,
            bounded.latency_p99,
            baseline_top.latency_p99,
        )
        assert bounded.dropped_jobs + bounded.nacked_jobs > 0, name
        assert 0.0 < bounded.admission_ratio < 1.0, name
        # Below the knee the bound is never exercised.
        assert by_cell[(name, low)].admission_ratio == 1.0, name


def check_fairness_acceptance(stats: LatencyStats) -> None:
    """Past the knee, completion shares order like the weights."""
    shares = stats.completed_share_by_class
    total = sum(FAIR_WEIGHTS.values())
    assert set(shares) == set(FAIR_CLASSES), shares
    assert shares[0] > shares[1], shares
    # Loose band: class-blind admission and the final drain keep the
    # share inside ~0.15 of the provisioned 3/4 : 1/4 split.
    assert abs(shares[0] - FAIR_WEIGHTS[0] / total) < 0.15, shares


def summary_line(
    rows: list[tuple[str, float, LatencyStats]],
    fair_stats: LatencyStats,
    report,
) -> str:
    """One-line machine-readable digest (published as a CI step output)."""
    by_cell = {(name, rate): stats for name, rate, stats in rows}
    top = max(rate for _, rate, _ in rows)
    baseline = by_cell[("unbounded", top)]
    bounded = by_cell[("drop-oldest", top)]
    shares = fair_stats.completed_share_by_class
    return (
        f"overload=rate:{top:g},"
        f"unbounded_p99:{baseline.latency_p99:.2f},"
        f"bounded_p99:{bounded.latency_p99:.2f},"
        f"unbounded_depth:{baseline.peak_queue_depth},"
        f"bounded_depth:{bounded.peak_queue_depth},"
        f"bounded_admission:{bounded.admission_ratio:.3f},"
        f"fair_share0:{shares.get(0, 0.0):.3f},"
        f"closed_loop_window:{report.window:.2f}"
    )


def test_overload(benchmark, nitf_quick):
    from _bench_utils import RESULTS_DIR

    prepared = prepare(nitf_quick)
    rows = benchmark.pedantic(
        lambda: run_sweep(prepared), rounds=1, iterations=1
    )
    fair_stats = run_fairness_cell(prepared)
    loop_stats, report = run_closed_loop_cell(prepared)

    RESULTS_DIR.mkdir(exist_ok=True)
    report_text = (
        render(rows)
        + "\n"
        + render_fairness(fair_stats)
        + "\n"
        + render_closed_loop(loop_stats, report)
    )
    (RESULTS_DIR / "overload.txt").write_text(report_text)
    print()
    print(report_text)

    check_acceptance(rows)
    check_fairness_acceptance(fair_stats)


def main() -> None:
    args = overlay_argument_parser(__doc__.splitlines()[0]).parse_args()
    run_with_profile(args, lambda: _run(args))


def _run(args: argparse.Namespace) -> None:
    if args.smoke:
        prepared = prepare_smoke(args.dtd)
        scale = dict(n_subscribers=16, n_brokers=3)
    else:
        prepared = prepare_quick(args.dtd)
        scale = dict(n_subscribers=N_SUBSCRIBERS, n_brokers=N_BROKERS)
    rows = run_sweep(prepared, **scale)
    fair_stats = run_fairness_cell(prepared)
    loop_stats, report = run_closed_loop_cell(prepared, **scale)
    print(render(rows))
    print(render_fairness(fair_stats))
    print(render_closed_loop(loop_stats, report))
    check_acceptance(rows)
    check_fairness_acceptance(fair_stats)
    print("acceptance checks passed")
    print(summary_line(rows, fair_stats, report))


if __name__ == "__main__":
    main()
