"""Figure 4 — average absolute relative error of positive queries vs the
maximum hash/set size, for Counters / Sets / Hashes on both DTDs.

Paper shape: Hashes clearly outperforms the other approaches and is less
sensitive to the DTD; error decreases with the maximum size; Counters are
constant (no size knob); a hash size of ~10% of the stream suffices for
single-digit relative error.
"""

from __future__ import annotations

from repro.experiments.figures import figure4

from _bench_utils import save_figure, series_map


def test_figure4(benchmark, quick_configs):
    figure = benchmark.pedantic(
        figure4, args=(quick_configs,), rounds=1, iterations=1
    )
    save_figure(figure)
    curves = series_map(figure)

    for dtd in ("NITF", "XCBL"):
        hashes = curves[f"Hashes - {dtd}"]
        sets = curves[f"Sets - {dtd}"]
        counters = curves[f"Counters - {dtd}"]

        # Counters are flat: no dependence on the swept size.
        assert len(set(counters)) == 1
        # Error decreases with sample size for the sampled representations.
        assert hashes[-1] <= hashes[0]
        assert sets[-1] <= sets[0]
        # Hashes beat Sets at the largest common budget (the paper's
        # headline ordering).
        assert hashes[-1] <= sets[-1] + 1e-9
        # At a budget of ~half the stream, hashes reach low error.
        assert hashes[-1] < 20.0
