"""Latency/throughput benchmark: discrete-event delivery under load.

Sweeps publish rate × advertisement regime × community threshold over the
default NITF quick workload on a fixed 4-broker random tree.  Every cell
replays the same document stream through the event engine
(:class:`repro.routing.engine.DeliveryEngine`): per-broker FIFO service
queues, service time affine in match operations, unit link latency.
Reported per cell: publication-to-delivery latency percentiles
(p50/p95/p99), mean queueing delay, peak queue depth, and throughput —
the timing axis the match-count benchmarks cannot see.

The headline claims asserted here:

* the engine delivers exactly the subscriber sets of the synchronous
  routing path in every cell (sync/async equivalence);
* at the highest publish rate, community aggregation at the acceptance
  threshold shows measurably lower mean queueing delay and at-least-equal
  throughput versus per-subscription advertisement — smaller routing
  tables pay off in *time* under load, the paper's trade-off scored on a
  new axis;
* the engine is deterministic: re-running a cell under the same seed
  reproduces its stats bit for bit.

Also runnable standalone for a quick smoke check (used by CI)::

    PYTHONPATH=src python benchmarks/bench_latency.py --smoke
"""

from __future__ import annotations

from common import build_overlay, overlay_argument_parser, prepare_quick, prepare_smoke
from repro.experiments.harness import prepare
from repro.routing.broker import LatencyStats
from repro.routing.engine import DeliveryEngine, LinkModel, ServiceModel
from repro.routing.overlay import BrokerOverlay

N_BROKERS = 4
N_SUBSCRIBERS = 60
RATES = (0.25, 1.0, 4.0)
THRESHOLDS = (0.7, 0.5, 0.3)
ACCEPTANCE_THRESHOLD = 0.5
SERVICE = ServiceModel(base=0.2, per_match=0.05)
LINKS = LinkModel(default=1.0)


def sync_reference(
    overlay: BrokerOverlay, corpus
) -> dict[int, frozenset[int]]:
    """Per published document, the synchronous path's delivery sets."""
    return {
        index: frozenset(
            overlay.route(document, index % len(overlay.brokers))[0]
        )
        for index, document in enumerate(corpus.documents)
    }


def run_cell(
    overlay: BrokerOverlay,
    corpus,
    rate: float,
    reference: dict[int, frozenset[int]],
) -> LatencyStats:
    """One engine run at *rate*, checked against the synchronous path."""
    engine = DeliveryEngine(overlay, service=SERVICE, links=LINKS)
    engine.publish_corpus(corpus, rate=rate)
    stats = engine.run()
    assert engine.delivered_sets() == reference, (overlay.mode, rate)
    return stats


def run_sweep(
    prepared,
    rates: tuple[float, ...] = RATES,
    thresholds: tuple[float, ...] = THRESHOLDS,
    n_subscribers: int = N_SUBSCRIBERS,
    n_brokers: int = N_BROKERS,
) -> list[tuple[float, object, LatencyStats]]:
    """Drive the stream through every (rate, regime) cell.

    Returns ``(rate, threshold-or-None, stats)`` rows; ``None`` marks the
    per-subscription baseline.  Community similarity uses the exact corpus
    provider, isolating the queueing trade-off from synopsis estimation
    error (bench_routing.py covers the estimated-similarity side).
    """
    subscriptions = prepared.positive[:n_subscribers]
    corpus = prepared.corpus
    rows: list[tuple[float, object, LatencyStats]] = []
    for threshold in (None, *thresholds):
        overlay = build_overlay(n_brokers, subscriptions)
        if threshold is None:
            overlay.advertise_subscriptions()
        else:
            overlay.advertise_communities(corpus, threshold=threshold)
        reference = sync_reference(overlay, corpus)
        for rate in rates:
            rows.append(
                (rate, threshold, run_cell(overlay, corpus, rate, reference))
            )
    regime_rank = {threshold: rank for rank, threshold in enumerate(thresholds)}
    rows.sort(
        key=lambda row: (row[0], -1 if row[1] is None else regime_rank[row[1]])
    )
    return rows


def render(rows: list[tuple[float, object, LatencyStats]]) -> str:
    header = (
        f"{'rate':>5s} {'regime':24s} {'p50':>7s} {'p95':>7s} {'p99':>7s} "
        f"{'qdelay':>7s} {'depth':>5s} {'thrpt':>6s} {'deliv':>6s}"
    )
    lines = [header, "-" * len(header)]
    for rate, threshold, stats in rows:
        regime = (
            "per_subscription"
            if threshold is None
            else f"community(th={threshold})"
        )
        lines.append(
            f"{rate:5.2f} {regime:24s} {stats.latency_p50:7.2f} "
            f"{stats.latency_p95:7.2f} {stats.latency_p99:7.2f} "
            f"{stats.queue_delay_mean:7.2f} {stats.peak_queue_depth:5d} "
            f"{stats.throughput:6.2f} {stats.deliveries:6d}"
        )
    return "\n".join(lines) + "\n"


def check_acceptance(rows: list[tuple[float, object, LatencyStats]]) -> None:
    """Assert the headline claims over a finished sweep.

    Sync/async delivery equivalence is asserted per cell inside
    :func:`run_cell`; here we check the aggregates and the queueing-delay
    headline.
    """
    for rate, threshold, stats in rows:
        assert stats.documents > 0 and stats.deliveries > 0, (rate, threshold)
        assert stats.makespan > 0.0, (rate, threshold)
        assert (
            stats.latency_p50
            <= stats.latency_p95
            <= stats.latency_p99
            <= stats.latency_max
        ), (rate, threshold)
    by_cell = {(rate, threshold): stats for rate, threshold, stats in rows}
    top_rate = max(rate for rate, _, _ in rows)
    baseline = by_cell[(top_rate, None)]
    aggregated = by_cell.get((top_rate, ACCEPTANCE_THRESHOLD))
    if aggregated is not None:
        # Aggregation's payoff in time: under the heaviest load, smaller
        # routing tables mean shorter services, hence measurably shorter
        # queues and no worse throughput.
        assert aggregated.queue_delay_mean < 0.95 * baseline.queue_delay_mean, (
            aggregated.queue_delay_mean,
            baseline.queue_delay_mean,
        )
        assert aggregated.throughput >= baseline.throughput, (
            aggregated.throughput,
            baseline.throughput,
        )


def check_determinism(prepared, n_subscribers: int, n_brokers: int) -> None:
    """Two identical engine runs must agree bit for bit — including under
    seeded Poisson arrivals."""
    subscriptions = prepared.positive[:n_subscribers]
    corpus = prepared.corpus
    overlay = build_overlay(n_brokers, subscriptions)
    overlay.advertise_communities(
        corpus, threshold=ACCEPTANCE_THRESHOLD
    )
    outcomes = []
    for _ in range(2):
        engine = DeliveryEngine(overlay, service=SERVICE, links=LINKS)
        engine.publish_corpus(corpus, rate=2.0, arrivals="poisson", seed=7)
        outcomes.append((engine.run(), engine.delivered_sets()))
    assert outcomes[0] == outcomes[1], "event engine is not deterministic"


def summary_line(rows: list[tuple[float, object, LatencyStats]]) -> str:
    """One-line machine-readable digest (published as a CI step output)."""
    by_cell = {(rate, threshold): stats for rate, threshold, stats in rows}
    top_rate = max(rate for rate, _, _ in rows)
    baseline = by_cell[(top_rate, None)]
    aggregated = by_cell.get((top_rate, ACCEPTANCE_THRESHOLD), baseline)
    return (
        f"summary=rate:{top_rate:g},"
        f"baseline_qdelay:{baseline.queue_delay_mean:.2f},"
        f"community_qdelay:{aggregated.queue_delay_mean:.2f},"
        f"baseline_thrpt:{baseline.throughput:.2f},"
        f"community_thrpt:{aggregated.throughput:.2f},"
        f"baseline_p95:{baseline.latency_p95:.2f},"
        f"community_p95:{aggregated.latency_p95:.2f}"
    )


def test_latency(benchmark, nitf_quick):
    from _bench_utils import RESULTS_DIR

    prepared = prepare(nitf_quick)
    rows = benchmark.pedantic(
        lambda: run_sweep(prepared), rounds=1, iterations=1
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    report = render(rows)
    (RESULTS_DIR / "latency.txt").write_text(report)
    print()
    print(report)

    check_acceptance(rows)
    check_determinism(prepared, N_SUBSCRIBERS, N_BROKERS)


def main() -> None:
    args = overlay_argument_parser(__doc__.splitlines()[0]).parse_args()

    if args.smoke:
        prepared = prepare_smoke(args.dtd)
        rows = run_sweep(
            prepared,
            rates=(0.5, 4.0),
            thresholds=(0.5,),
            n_subscribers=16,
            n_brokers=3,
        )
        check_determinism(prepared, n_subscribers=16, n_brokers=3)
    else:
        prepared = prepare_quick(args.dtd)
        rows = run_sweep(prepared)
        check_determinism(prepared, N_SUBSCRIBERS, N_BROKERS)
    print(render(rows))
    check_acceptance(rows)
    print("acceptance checks passed")
    print(summary_line(rows))


if __name__ == "__main__":
    main()
