"""Latency/throughput benchmark: discrete-event delivery under load.

Two sweeps over the default NITF quick workload on a fixed 4-broker
random tree, both assembled through the
:class:`~repro.routing.builder.OverlayBuilder` façade:

* **advertisement sweep** — publish rate × advertisement policy ×
  community threshold.  Every cell replays the same document stream
  through the event engine (per-broker service queues, service time
  affine in match operations, unit link latency) and reports
  publication-to-delivery latency percentiles (p50/p95/p99), mean
  queueing delay, peak queue depth and throughput — the timing axis the
  match-count benchmarks cannot see.
* **scheduling sweep** — at the saturating publish rate, the same stream
  tagged with three subscriber classes is replayed under each
  :class:`~repro.routing.policy.SchedulingPolicy` (FIFO, priority,
  deadline) and scored per class: the fairness-vs-tail-latency trade-off
  the policy objects expose.

The headline claims asserted here:

* the engine delivers exactly the subscriber sets of the synchronous
  routing path in every cell (sync/async equivalence) — scheduling
  policies reorder service, never delivery membership;
* at the highest publish rate, community aggregation at the acceptance
  threshold shows measurably lower mean queueing delay and at-least-equal
  throughput versus per-subscription advertisement;
* at the saturating rate, :class:`PriorityScheduling` cuts the
  high-class p99 latency versus FIFO — priority buys the paying class
  tail latency with the low class's queueing time;
* the engine is deterministic: re-running a cell under the same seed
  reproduces its stats bit for bit.

Also runnable standalone for a quick smoke check (used by CI)::

    PYTHONPATH=src python benchmarks/bench_latency.py --smoke
"""

from __future__ import annotations

import argparse

from common import (
    overlay_argument_parser,
    run_with_profile,
    overlay_builder,
    prepare_quick,
    prepare_smoke,
)
from repro.experiments.harness import prepare
from repro.routing.broker import LatencyStats
from repro.routing.builder import OverlayBuilder
from repro.routing.engine import LinkModel, ServiceModel
from repro.routing.overlay import BrokerOverlay
from repro.routing.policy import (
    CommunityPolicy,
    DeadlineScheduling,
    FifoScheduling,
    PerSubscriptionPolicy,
    PriorityScheduling,
    SchedulingPolicy,
)

N_BROKERS = 4
N_SUBSCRIBERS = 60
RATES = (0.25, 1.0, 4.0)
#: Default rate for the scheduling sweep: the saturating end of RATES.
SATURATING_RATE = max(RATES)
THRESHOLDS = (0.7, 0.5, 0.3)
ACCEPTANCE_THRESHOLD = 0.5
SERVICE = ServiceModel(base=0.2, per_match=0.05)
LINKS = LinkModel(default=1.0)

#: Subscriber classes cycled over the publish stream in the scheduling
#: sweep; class 2 is the "paying" high-priority class.
CLASSES = (0, 1, 2)
HIGH_CLASS = 2
DEADLINE_SLACK = 10.0

SCHEDULING_POLICIES: tuple[tuple[str, SchedulingPolicy], ...] = (
    ("fifo", FifoScheduling()),
    ("priority", PriorityScheduling()),
    ("deadline", DeadlineScheduling()),
)


def base_builder(prepared, n_subscribers: int, n_brokers: int) -> OverlayBuilder:
    """The sweep's shared recipe: topology, homes, timing models.

    Matching runs in ``linear`` (per-pattern scan) mode so service time
    scales with table size — the queueing effect the paper's latency
    claims are about.  Trie matching amortises shared prefixes across
    entries and flattens that signal at smoke scale.
    """
    return (
        overlay_builder(n_brokers, prepared.positive[:n_subscribers])
        .matching("linear")
        .service(SERVICE)
        .links(LINKS)
    )


def sync_reference(
    overlay: BrokerOverlay, corpus
) -> dict[int, frozenset[int]]:
    """Per published document, the synchronous path's delivery sets."""
    return {
        index: frozenset(
            overlay.route(document, index % len(overlay.brokers))[0]
        )
        for index, document in enumerate(corpus.documents)
    }


def run_cell(
    builder: OverlayBuilder,
    overlay: BrokerOverlay,
    corpus,
    rate: float,
    reference: dict[int, frozenset[int]],
    classes=None,
    deadline_slack=None,
) -> LatencyStats:
    """One engine run at *rate*, checked against the synchronous path."""
    engine = builder.build_engine(overlay)
    engine.publish_corpus(
        corpus, rate=rate, classes=classes, deadline_slack=deadline_slack
    )
    stats = engine.run()
    assert engine.delivered_sets() == reference, (overlay.mode, rate)
    return stats


def run_sweep(
    prepared,
    rates: tuple[float, ...] = RATES,
    thresholds: tuple[float, ...] = THRESHOLDS,
    n_subscribers: int = N_SUBSCRIBERS,
    n_brokers: int = N_BROKERS,
) -> list[tuple[float, object, LatencyStats]]:
    """Drive the stream through every (rate, advertisement-policy) cell.

    Returns ``(rate, threshold-or-None, stats)`` rows; ``None`` marks the
    per-subscription baseline.  Community similarity uses the exact corpus
    provider, isolating the queueing trade-off from synopsis estimation
    error (bench_routing.py covers the estimated-similarity side).
    """
    corpus = prepared.corpus
    builder = base_builder(prepared, n_subscribers, n_brokers)
    rows: list[tuple[float, object, LatencyStats]] = []
    for threshold in (None, *thresholds):
        if threshold is None:
            builder.advertisement(PerSubscriptionPolicy())
        else:
            builder.advertisement(CommunityPolicy(threshold)).provider(corpus)
        overlay = builder.build_overlay()
        reference = sync_reference(overlay, corpus)
        for rate in rates:
            rows.append(
                (
                    rate,
                    threshold,
                    run_cell(builder, overlay, corpus, rate, reference),
                )
            )
    regime_rank = {threshold: rank for rank, threshold in enumerate(thresholds)}
    rows.sort(
        key=lambda row: (row[0], -1 if row[1] is None else regime_rank[row[1]])
    )
    return rows


def run_scheduling_sweep(
    prepared,
    rate: float = SATURATING_RATE,
    n_subscribers: int = N_SUBSCRIBERS,
    n_brokers: int = N_BROKERS,
    policies: tuple[tuple[str, SchedulingPolicy], ...] = SCHEDULING_POLICIES,
) -> list[tuple[str, LatencyStats]]:
    """Replay the class-tagged stream under each scheduling policy.

    Runs at the saturating *rate* under the per-subscription baseline —
    the big-table regime where queues actually build, so scheduling has
    something to reorder.  Every policy must deliver the identical
    subscriber sets; only the timing may move.
    """
    corpus = prepared.corpus
    builder = base_builder(prepared, n_subscribers, n_brokers).advertisement(
        PerSubscriptionPolicy()
    )
    overlay = builder.build_overlay()
    reference = sync_reference(overlay, corpus)
    rows: list[tuple[str, LatencyStats]] = []
    for name, policy in policies:
        builder.scheduling(policy)
        rows.append(
            (
                name,
                run_cell(
                    builder,
                    overlay,
                    corpus,
                    rate,
                    reference,
                    classes=CLASSES,
                    deadline_slack=DEADLINE_SLACK,
                ),
            )
        )
    builder.scheduling(FifoScheduling())
    return rows


def render(rows: list[tuple[float, object, LatencyStats]]) -> str:
    header = (
        f"{'rate':>5s} {'regime':24s} {'p50':>7s} {'p95':>7s} {'p99':>7s} "
        f"{'qdelay':>7s} {'depth':>5s} {'thrpt':>6s} {'deliv':>6s}"
    )
    lines = [header, "-" * len(header)]
    for rate, threshold, stats in rows:
        regime = (
            "per_subscription"
            if threshold is None
            else f"community(th={threshold})"
        )
        lines.append(
            f"{rate:5.2f} {regime:24s} {stats.latency_p50:7.2f} "
            f"{stats.latency_p95:7.2f} {stats.latency_p99:7.2f} "
            f"{stats.queue_delay_mean:7.2f} {stats.peak_queue_depth:5d} "
            f"{stats.throughput:6.2f} {stats.deliveries:6d}"
        )
    return "\n".join(lines) + "\n"


def render_scheduling(rows: list[tuple[str, LatencyStats]]) -> str:
    header = (
        f"{'scheduling':10s} {'class':>5s} {'p50':>7s} {'p95':>7s} "
        f"{'p99':>7s} {'mean':>7s} {'deliv':>6s}"
    )
    lines = [header, "-" * len(header)]
    for name, stats in rows:
        for priority_class, digest in sorted(stats.latency_by_class.items()):
            lines.append(
                f"{name:10s} {priority_class:5d} {digest.p50:7.2f} "
                f"{digest.p95:7.2f} {digest.p99:7.2f} {digest.mean:7.2f} "
                f"{digest.deliveries:6d}"
            )
    return "\n".join(lines) + "\n"


def check_acceptance(rows: list[tuple[float, object, LatencyStats]]) -> None:
    """Assert the headline claims over a finished advertisement sweep.

    Sync/async delivery equivalence is asserted per cell inside
    :func:`run_cell`; here we check the aggregates and the queueing-delay
    headline.
    """
    for rate, threshold, stats in rows:
        assert stats.documents > 0 and stats.deliveries > 0, (rate, threshold)
        assert stats.makespan > 0.0, (rate, threshold)
        assert (
            stats.latency_p50
            <= stats.latency_p95
            <= stats.latency_p99
            <= stats.latency_max
        ), (rate, threshold)
    by_cell = {(rate, threshold): stats for rate, threshold, stats in rows}
    top_rate = max(rate for rate, _, _ in rows)
    baseline = by_cell[(top_rate, None)]
    aggregated = by_cell.get((top_rate, ACCEPTANCE_THRESHOLD))
    if aggregated is not None:
        # Aggregation's payoff in time: under the heaviest load, smaller
        # routing tables mean shorter services, hence measurably shorter
        # queues and no worse throughput.
        assert aggregated.queue_delay_mean < 0.95 * baseline.queue_delay_mean, (
            aggregated.queue_delay_mean,
            baseline.queue_delay_mean,
        )
        assert aggregated.throughput >= baseline.throughput, (
            aggregated.throughput,
            baseline.throughput,
        )


def check_scheduling_acceptance(rows: list[tuple[str, LatencyStats]]) -> None:
    """Assert the scheduling headline over a finished scheduling sweep.

    At saturating load, strict priority must cut the high class's tail
    latency versus FIFO (it can only do so by taxing the low classes,
    which the per-class table makes visible), and every policy must have
    produced identical delivery counts per class.
    """
    by_policy = dict(rows)
    for name, stats in rows:
        assert stats.latency_by_class, name
        assert sum(
            digest.deliveries for digest in stats.latency_by_class.values()
        ) == stats.deliveries, name
    fifo = by_policy["fifo"]
    priority = by_policy["priority"]
    assert {
        priority_class: digest.deliveries
        for priority_class, digest in fifo.latency_by_class.items()
    } == {
        priority_class: digest.deliveries
        for priority_class, digest in priority.latency_by_class.items()
    }
    fifo_high = fifo.latency_by_class[HIGH_CLASS]
    priority_high = priority.latency_by_class[HIGH_CLASS]
    assert priority_high.p99 < fifo_high.p99, (
        priority_high.p99,
        fifo_high.p99,
    )


def check_determinism(prepared, n_subscribers: int, n_brokers: int) -> None:
    """Two identical engine runs must agree bit for bit — including under
    seeded Poisson arrivals and non-FIFO scheduling."""
    corpus = prepared.corpus
    builder = (
        base_builder(prepared, n_subscribers, n_brokers)
        .advertisement(CommunityPolicy(ACCEPTANCE_THRESHOLD))
        .provider(corpus)
        .scheduling(PriorityScheduling())
    )
    overlay = builder.build_overlay()
    outcomes = []
    for _ in range(2):
        engine = builder.build_engine(overlay)
        engine.publish_corpus(
            corpus, rate=2.0, arrivals="poisson", seed=7, classes=CLASSES
        )
        outcomes.append((engine.run(), engine.delivered_sets()))
    assert outcomes[0] == outcomes[1], "event engine is not deterministic"


def summary_line(rows: list[tuple[float, object, LatencyStats]]) -> str:
    """One-line machine-readable digest (published as a CI step output)."""
    by_cell = {(rate, threshold): stats for rate, threshold, stats in rows}
    top_rate = max(rate for rate, _, _ in rows)
    baseline = by_cell[(top_rate, None)]
    aggregated = by_cell.get((top_rate, ACCEPTANCE_THRESHOLD), baseline)
    return (
        f"summary=rate:{top_rate:g},"
        f"baseline_qdelay:{baseline.queue_delay_mean:.2f},"
        f"community_qdelay:{aggregated.queue_delay_mean:.2f},"
        f"baseline_thrpt:{baseline.throughput:.2f},"
        f"community_thrpt:{aggregated.throughput:.2f},"
        f"baseline_p95:{baseline.latency_p95:.2f},"
        f"community_p95:{aggregated.latency_p95:.2f}"
    )


def scheduling_summary_line(rows: list[tuple[str, LatencyStats]]) -> str:
    """Per-policy p99 digest (published as a CI step output)."""
    parts = []
    for name, stats in rows:
        high = stats.latency_by_class.get(HIGH_CLASS)
        parts.append(f"{name}_p99:{stats.latency_p99:.2f}")
        if high is not None:
            parts.append(f"{name}_class{HIGH_CLASS}_p99:{high.p99:.2f}")
    return "scheduling=" + ",".join(parts)


def test_latency(benchmark, nitf_quick):
    from _bench_utils import RESULTS_DIR

    prepared = prepare(nitf_quick)
    rows = benchmark.pedantic(
        lambda: run_sweep(prepared), rounds=1, iterations=1
    )
    scheduling_rows = run_scheduling_sweep(prepared)

    RESULTS_DIR.mkdir(exist_ok=True)
    report = render(rows) + "\n" + render_scheduling(scheduling_rows)
    (RESULTS_DIR / "latency.txt").write_text(report)
    print()
    print(report)

    check_acceptance(rows)
    check_scheduling_acceptance(scheduling_rows)
    check_determinism(prepared, N_SUBSCRIBERS, N_BROKERS)


def main() -> None:
    args = overlay_argument_parser(__doc__.splitlines()[0]).parse_args()
    run_with_profile(args, lambda: _run(args))


def _run(args: argparse.Namespace) -> None:

    if args.smoke:
        prepared = prepare_smoke(args.dtd)
        rows = run_sweep(
            prepared,
            rates=(0.5, 4.0),
            thresholds=(0.5,),
            n_subscribers=16,
            n_brokers=3,
        )
        scheduling_rows = run_scheduling_sweep(
            prepared, n_subscribers=16, n_brokers=3
        )
        check_determinism(prepared, n_subscribers=16, n_brokers=3)
    else:
        prepared = prepare_quick(args.dtd)
        rows = run_sweep(prepared)
        scheduling_rows = run_scheduling_sweep(prepared)
        check_determinism(prepared, N_SUBSCRIBERS, N_BROKERS)
    print(render(rows))
    print(render_scheduling(scheduling_rows))
    check_acceptance(rows)
    check_scheduling_acceptance(scheduling_rows)
    print("acceptance checks passed")
    print(summary_line(rows))
    print(scheduling_summary_line(scheduling_rows))


if __name__ == "__main__":
    main()
