"""Ablation: the three pruning operators in isolation (design choices of
Section 3.3, applied in the order Section 5.2 reports works best).

Not a paper figure — this quantifies *why* the paper's fold → delete →
merge ordering is sensible: at a matched size reduction, lossless+lossy
folds hurt accuracy the least, deletions hurt negatives the least, and
merges buy the largest size reductions on wide synopses.
"""

from __future__ import annotations

import pytest

from repro.core.errors import average_relative_error
from repro.core.selectivity import SelectivityEstimator
from repro.experiments.harness import build_synopsis, prepare
from repro.synopsis.pruning import (
    delete_low_cardinality,
    fold_leaves,
    merge_same_label,
)
from repro.synopsis.size import measure

from _bench_utils import RESULTS_DIR

TARGET_REDUCTION = 0.75  # shrink to 75% of the original size


def _shrink_with(synopsis, operator) -> int:
    """Apply one operator repeatedly until the target size is reached."""
    target = int(measure(synopsis).total * TARGET_REDUCTION)
    for _ in range(200):
        if measure(synopsis).total <= target:
            break
        if operator(synopsis) == 0:
            break
    return measure(synopsis).total


OPERATORS = {
    "fold": lambda syn: fold_leaves(syn, min_similarity=0.0, max_folds=25),
    "delete": lambda syn: delete_low_cardinality(syn, max_deletions=25),
    "merge": lambda syn: merge_same_label(syn, min_similarity=0.0, max_merges=25),
}


@pytest.mark.parametrize("operator_name", sorted(OPERATORS))
def test_pruning_operator_ablation(benchmark, nitf_quick, operator_name):
    prepared = prepare(nitf_quick)

    def run():
        synopsis = build_synopsis(prepared, "hashes", 100)
        initial = measure(synopsis).total
        final = _shrink_with(synopsis, OPERATORS[operator_name])
        estimator = SelectivityEstimator(synopsis)
        estimated = [estimator.selectivity(p) for p in prepared.positive]
        erel = average_relative_error(prepared.exact_positive, estimated)
        return initial, final, erel.percent

    initial, final, erel = benchmark.pedantic(run, rounds=1, iterations=1)

    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "ablation_pruning.txt", "a") as out:
        out.write(
            f"{operator_name}: size {initial} -> {final} "
            f"({final / initial:.2f}), Erel {erel:.2f}%\n"
        )

    # Every operator must actually shrink the synopsis...
    assert final < initial
    # ...while keeping estimation functional.
    assert 0.0 <= erel < 400.0
