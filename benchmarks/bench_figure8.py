"""Figure 8 — average absolute relative error of proximity metric
M2(p,q) = (P(p|q) + P(q|p)) / 2.

Paper shape: near-identical to Figures 7 and 9 — the three metrics behave
consistently, which the paper reads as evidence the estimator is stable.
"""

from __future__ import annotations

from repro.experiments.figures import figure7, figure8

from _bench_utils import save_figure, series_map


def test_figure8(benchmark, quick_configs):
    figure = benchmark.pedantic(
        figure8, args=(quick_configs,), rounds=1, iterations=1
    )
    save_figure(figure)
    curves = series_map(figure)

    for dtd in ("NITF", "XCBL"):
        hashes = curves[f"Hashes - {dtd}"]
        sets = curves[f"Sets - {dtd}"]
        assert hashes[-1] <= hashes[0]
        # Sweep-mean comparison: see bench_figure7 for the rationale.
        assert sum(hashes) / len(hashes) <= sum(sets) / len(sets) + 1e-9

    # Consistency across metrics (paper's observation): at the largest
    # budget M1 and M2 errors agree within a small factor for Hashes.
    m1 = series_map(figure7(quick_configs))
    for dtd in ("NITF", "XCBL"):
        a = curves[f"Hashes - {dtd}"][-1]
        b = m1[f"Hashes - {dtd}"][-1]
        assert abs(a - b) <= max(5.0, 0.5 * max(a, b) + 1e-9)
