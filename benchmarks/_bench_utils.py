"""Helpers shared by the benchmark modules (kept out of conftest so imports
are unambiguous when tests/ and benchmarks/ load in one session)."""

from __future__ import annotations

import pathlib

from repro.experiments.figures import FigureResult
from repro.experiments.report import figure_to_csv, render_figure

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_figure(figure: FigureResult) -> str:
    """Persist a figure's table and CSV under benchmarks/results/ and echo
    the table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    table = render_figure(figure)
    (RESULTS_DIR / f"{figure.figure_id}.txt").write_text(table)
    (RESULTS_DIR / f"{figure.figure_id}.csv").write_text(figure_to_csv(figure))
    print()
    print(table)
    return table


def series_map(figure: FigureResult) -> dict[str, list[float]]:
    """label -> ys, for curve-shape assertions."""
    return {series.label: series.ys for series in figure.series}
