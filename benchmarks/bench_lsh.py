"""LSH candidate generation vs the exact all-pairs oracle.

Community formation pays one similarity evaluation per (pattern, leader)
probe; the exact oracle considers every leader for every pattern, so its
evaluation count grows as n · C(n) — the wall the paper's 10⁵–10⁶
subscription targets run into.  This benchmark sweeps
:class:`~repro.core.candidates.LSHCandidates` band/row configurations
over 10³–10⁵ NITF subscriptions and reports, per cell: clustering
wall-clock, similarity evaluations, community count, and pair-level
precision/recall of the LSH clustering against the exact one (two
patterns count as a true positive when both clusterings place them in
the same community; recall < 1 is *dropped co-membership coverage* and
is reported as such, not hidden).

Two shingle sources are swept:

* **structural** — the default :func:`~repro.core.candidates.pattern_tokens`
  (label set + trie spine prefixes).  Cheap and self-contained, but M3
  is extensional: ``/nitf`` and ``//*`` match the same stream while
  sharing no structure, so structural recall plateaus — the table
  records that honestly instead of tuning around it;
* **synopsis** — each pattern shingled by its matching-set sample ids
  from the shared :class:`~repro.synopsis.synopsis.DocumentSynopsis`.
  MinHash over matching samples estimates exactly the Jaccard quantity
  M3 measures, so band collisions track the metric itself; this is the
  configuration the acceptance bar (recall ≥ 0.9 at the default
  16 × 2 bands) is asserted against.

The exact oracle is only run up to ``EXACT_CAP`` subscriptions; above
it the exact cell is reported as *not run* with a growth extrapolation,
and the LSH cells run end-to-end through
``advertise(CommunityPolicy(candidates=...))`` to show interactive
community formation at 10⁵.

The standalone run prints an ``lsh=…`` key=value line which CI publishes
as a step output::

    PYTHONPATH=src python benchmarks/bench_lsh.py --smoke
"""

from __future__ import annotations

import argparse

import time
from collections import Counter

from common import overlay_argument_parser, run_with_profile
from repro.core.candidates import LSHCandidates
from repro.core.selectivity import SelectivityEstimator
from repro.core.similarity import m3_joint_over_union
from repro.dtd.builtin import nitf_dtd
from repro.generators.docgen import DocumentGenerator
from repro.generators.querygen import PatternGenConfig, PatternGenerator
from repro.routing.builder import OverlayBuilder
from repro.routing.community import leader_clustering
from repro.routing.policy import CommunityPolicy
from repro.synopsis.synopsis import DocumentSynopsis

SIZES = (1_000, 10_000, 100_000)
SMOKE_SIZES = (300, 1_000)
#: Largest population the exact all-pairs oracle is actually run at.
EXACT_CAP = 10_000
THRESHOLD = 0.5
PATTERN_SEED = 7
DOC_SEED = 21
N_DOCS = 120
N_BROKERS = 8
#: (shingle source, bands, rows); 16 × 2 is the LSHCandidates default.
CONFIGS = (
    ("structural", 16, 2),
    ("synopsis", 8, 2),
    ("synopsis", 16, 2),
    ("synopsis", 16, 4),
)
DEFAULT_CONFIG = ("synopsis", 16, 2)
#: Acceptance floor for the default config wherever recall is measured.
RECALL_FLOOR = 0.9


class MemoSimilarity:
    """M3 through a pair memo, counting every evaluation dispatched.

    The memo mirrors what a broker's live ``SimilarityIndex`` amortises;
    ``calls`` is the scalability driver the candidate stage exists to
    shrink — how many (pattern, leader) probes clustering dispatches.
    """

    def __init__(self, estimator: SelectivityEstimator):
        self.estimator = estimator
        self.memo: dict = {}
        self.calls = 0

    def __call__(self, p, q) -> float:
        self.calls += 1
        key = (p, q) if hash(p) <= hash(q) else (q, p)
        value = self.memo.get(key)
        if value is None:
            value = m3_joint_over_union(self.estimator, p, q)
            self.memo[key] = value
        return value


def make_synopsis_tokens(estimator: SelectivityEstimator):
    """Shingle a pattern by its matching-set sample ids (memoised)."""
    cache: dict = {}

    def tokens(pattern):
        got = cache.get(pattern)
        if got is None:
            got = [
                ("doc", i)
                for i in sorted(estimator.matching_view(pattern).ids)
            ]
            cache[pattern] = got
        return got

    return tokens


def community_labels(communities, n: int) -> list[int]:
    labels = [0] * n
    for cid, community in enumerate(communities):
        for member in community.members:
            labels[member] = cid
    return labels


def pair_confusion(exact: list[int], lsh: list[int]):
    """Pair-level precision/recall of *lsh* against *exact* co-membership.

    Computed from the (exact, lsh) contingency table in O(n): the
    co-member pair counts are sums of C(group, 2) over label groups.
    """

    def pair_count(counter) -> int:
        return sum(v * (v - 1) // 2 for v in counter.values())

    true_positive = pair_count(Counter(zip(exact, lsh, strict=True)))
    exact_pairs = pair_count(Counter(exact))
    lsh_pairs = pair_count(Counter(lsh))
    precision = true_positive / lsh_pairs if lsh_pairs else 1.0
    recall = true_positive / exact_pairs if exact_pairs else 1.0
    return precision, recall, exact_pairs - true_positive


class Cell:
    """One (size, config) measurement."""

    def __init__(self, size, source, bands, rows):
        self.size = size
        self.source = source
        self.bands = bands
        self.rows = rows
        self.seconds = 0.0
        self.calls = 0
        self.communities = 0
        self.precision = None
        self.recall = None
        self.dropped_pairs = None

    @property
    def is_default(self) -> bool:
        return (self.source, self.bands, self.rows) == DEFAULT_CONFIG


class SizeRow:
    """The exact baseline plus every LSH cell at one population size."""

    def __init__(self, size: int):
        self.size = size
        self.exact_seconds = None
        self.exact_calls = None
        self.exact_communities = None
        self.cells: list[Cell] = []


def prepare_workload(max_size: int):
    dtd = nitf_dtd()
    config = PatternGenConfig(height=3, p_branch=0.05)
    patterns = PatternGenerator(
        dtd, seed=PATTERN_SEED, config=config
    ).generate_many(max_size, distinct=False)
    synopsis = DocumentSynopsis(mode="sets", capacity=128, seed=DOC_SEED)
    docgen = DocumentGenerator(dtd, seed=DOC_SEED)
    for _ in range(N_DOCS):
        synopsis.insert_document(docgen.generate())
    return patterns, SelectivityEstimator(synopsis)


def run_sweep(sizes=SIZES, exact_cap: int = EXACT_CAP) -> list[SizeRow]:
    patterns, estimator = prepare_workload(max(sizes))
    synopsis_tokens = make_synopsis_tokens(estimator)
    rows = []
    for size in sizes:
        row = SizeRow(size)
        population = patterns[:size]
        exact_labels = None
        if size <= exact_cap:
            similarity = MemoSimilarity(estimator)
            started = time.perf_counter()
            exact = leader_clustering(population, similarity, THRESHOLD)
            row.exact_seconds = time.perf_counter() - started
            row.exact_calls = similarity.calls
            row.exact_communities = len(exact)
            exact_labels = community_labels(exact, size)
        for source, bands, rows_ in CONFIGS:
            cell = Cell(size, source, bands, rows_)
            template = LSHCandidates(
                bands=bands,
                rows=rows_,
                seed=0,
                tokens=synopsis_tokens if source == "synopsis" else None,
            )
            similarity = MemoSimilarity(estimator)
            started = time.perf_counter()
            clustered = leader_clustering(
                population, similarity, THRESHOLD, candidates=template
            )
            cell.seconds = time.perf_counter() - started
            cell.calls = similarity.calls
            cell.communities = len(clustered)
            if exact_labels is not None:
                cell.precision, cell.recall, cell.dropped_pairs = (
                    pair_confusion(
                        exact_labels, community_labels(clustered, size)
                    )
                )
            row.cells.append(cell)
        rows.append(row)
    return rows


def run_end_to_end(size: int, n_brokers: int = N_BROKERS) -> float:
    """Wall-clock of a full LSH-gated advertise() at *size* subscriptions."""
    patterns, estimator = prepare_workload(size)
    template = LSHCandidates(tokens=make_synopsis_tokens(estimator))
    started = time.perf_counter()
    (
        OverlayBuilder()
        .topology("random_tree", n_brokers=n_brokers, seed=11)
        .subscriptions(patterns)
        .provider(estimator)
        .advertisement(CommunityPolicy(threshold=THRESHOLD))
        .candidates(template)
        .build_overlay()
    )
    return time.perf_counter() - started


def render(rows: list[SizeRow]) -> str:
    header = (
        f"{'patterns':>8s} {'shingles':>10s} {'config':>7s} {'secs':>7s} "
        f"{'sim evals':>10s} {'comms':>6s} {'prec':>6s} {'recall':>7s} "
        f"{'dropped pairs':>14s}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        if row.exact_seconds is not None:
            lines.append(
                f"{row.size:8d} {'—':>10s} {'exact':>7s} "
                f"{row.exact_seconds:7.2f} {row.exact_calls:10d} "
                f"{row.exact_communities:6d} {'1.000':>6s} {'1.000':>7s} "
                f"{0:14d}"
            )
        else:
            lines.append(
                f"{row.size:8d} {'—':>10s} {'exact':>7s} "
                f"{'not run':>7s}  (cap {EXACT_CAP}; n·C growth puts it "
                f"~{row.size // EXACT_CAP}x the {EXACT_CAP} cell)"
            )
        for cell in row.cells:
            star = "*" if cell.is_default else " "
            if cell.recall is None:
                tail = f"{'—':>6s} {'—':>7s} {'—':>14s}"
            else:
                tail = (
                    f"{cell.precision:6.3f} {cell.recall:7.3f} "
                    f"{cell.dropped_pairs:14d}"
                )
            lines.append(
                f"{cell.size:8d} {cell.source:>10s} "
                f"{f'{cell.bands}x{cell.rows}{star}':>7s} {cell.seconds:7.2f} "
                f"{cell.calls:10d} {cell.communities:6d} {tail}"
            )
    return "\n".join(lines) + "\n"


def check_acceptance(rows: list[SizeRow]) -> None:
    """Assert the headline claims over a finished sweep."""
    for row in rows:
        for cell in row.cells:
            assert cell.communities > 0, (row.size, cell.source)
            if cell.is_default and cell.recall is not None:
                assert cell.recall >= RECALL_FLOOR, (
                    f"default-config recall {cell.recall:.3f} below "
                    f"{RECALL_FLOOR} at {row.size} patterns"
                )
        if row.exact_calls is not None and row.size >= 1_000:
            for cell in row.cells:
                assert cell.calls < row.exact_calls, (
                    f"{cell.source} {cell.bands}x{cell.rows} dispatched "
                    f"{cell.calls} similarity evaluations vs exact "
                    f"{row.exact_calls} at {row.size}"
                )


def default_cell(rows: list[SizeRow]):
    """The largest measured-recall cell of the default configuration."""
    for row in reversed(rows):
        for cell in row.cells:
            if cell.is_default and cell.recall is not None:
                return row, cell
    raise AssertionError("no measured default-config cell")


def main() -> None:
    args = overlay_argument_parser(__doc__.splitlines()[0]).parse_args()
    run_with_profile(args, lambda: _run(args))


def _run(args: argparse.Namespace) -> None:
    sizes = SMOKE_SIZES if args.smoke else SIZES
    rows = run_sweep(sizes=sizes)
    print(render(rows))
    check_acceptance(rows)
    end_to_end_size = sizes[-1]
    end_to_end = run_end_to_end(
        end_to_end_size, n_brokers=4 if args.smoke else N_BROKERS
    )
    print(
        f"end-to-end advertise(CommunityPolicy, candidates=lsh) at "
        f"{end_to_end_size} subscriptions: {end_to_end:.1f}s"
    )
    print("acceptance checks passed")
    row, cell = default_cell(rows)
    speedup = (
        row.exact_seconds / cell.seconds if cell.seconds > 0 else float("inf")
    )
    print(
        f"lsh=recall {cell.recall:.3f} precision {cell.precision:.3f} at "
        f"{row.size} patterns ({cell.bands}x{cell.rows} synopsis shingles, "
        f"{cell.calls} vs {row.exact_calls} sim evals, "
        f"{speedup:.1f}x wall-clock; advertise at {end_to_end_size}: "
        f"{end_to_end:.1f}s)"
    )


if __name__ == "__main__":
    main()
