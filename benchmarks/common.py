"""Corpus/workload setup shared by the overlay benchmark family.

``bench_overlay.py`` (advertisement policies), ``bench_churn.py``
(subscription lifecycle) and ``bench_latency.py`` (event-driven delivery,
scheduling policies) sweep the same prepared quick-scale workload over the
same seeded broker topology; this module holds that setup once so the
tables stay comparable cell for cell — and so a CI smoke run means the
same thing in every benchmark.

Overlays are assembled through the
:class:`~repro.routing.builder.OverlayBuilder` façade: one builder per
sweep captures topology, placement and timing models, and each cell
resolves its advertisement / scheduling policy object through it.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import PreparedExperiment, prepare
from repro.routing.builder import OverlayBuilder
from repro.routing.overlay import BrokerOverlay

#: The overlay shape every benchmark in the family routes over.
TOPOLOGY = "random_tree"
TOPOLOGY_SEED = 11


def overlay_argument_parser(description: str) -> argparse.ArgumentParser:
    """The standalone-CLI surface shared by the overlay benchmarks."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload: a fast end-to-end sanity run for CI",
    )
    parser.add_argument("--dtd", default="nitf", choices=("nitf", "xcbl"))
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the top-20 cumulative hot spots",
    )
    return parser


def run_with_profile(args: argparse.Namespace, fn):
    """Run *fn()* — under cProfile when ``--profile`` was passed.

    Every benchmark main routes through this so the profiling surface is
    uniform across the family: hot spots print as a top-20
    cumulative-time table after the benchmark's own output.
    """
    if not getattr(args, "profile", False):
        return fn()
    profiler = cProfile.Profile()
    result = profiler.runcall(fn)
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    print()
    print("profile: top 20 by cumulative time")
    stats.print_stats(20)
    return result


def prepare_quick(dtd: str = "nitf") -> PreparedExperiment:
    """The quick-scale workload the benchmark tables are built from.

    The harness caches preparations in-process, so benchmarks sharing a
    session reuse one corpus and workload.
    """
    return prepare(ExperimentConfig.quick(dtd))


def prepare_smoke(dtd: str = "nitf") -> PreparedExperiment:
    """The tiny CI smoke workload: documents and positive patterns only."""
    return prepare(
        ExperimentConfig.quick(
            dtd, n_documents=60, n_positive=16, n_negative=0, n_pairs=0
        )
    )


def overlay_builder(
    n_brokers: int,
    patterns,
    topology: str = TOPOLOGY,
    seed: int = TOPOLOGY_SEED,
) -> OverlayBuilder:
    """The family's shared recipe: seeded topology, round-robin homes.

    Cells layer their advertisement / scheduling policies and timing
    models on top before building.
    """
    return (
        OverlayBuilder()
        .topology(topology, n_brokers, seed=seed)
        .subscriptions(patterns)
    )


def build_overlay(
    n_brokers: int,
    patterns,
    topology: str = TOPOLOGY,
    seed: int = TOPOLOGY_SEED,
) -> BrokerOverlay:
    """A topology-seeded overlay with *patterns* attached round-robin.

    Membership only — for call sites that drive the advertisement sweep
    themselves by calling ``overlay.advertise(policy, ...)`` per cell.
    """
    overlay = BrokerOverlay.build(topology, n_brokers, seed=seed)
    overlay.attach_round_robin(patterns)
    return overlay
