"""Ablation: decomposing the estimation error into its two sources.

The synopsis approximates in two independent ways:

1. **skeletonisation** — documents enter as skeleton trees, so instance-
   level branching is lost (``/a/b[c][d]`` cannot distinguish one ``b``
   carrying both children from two ``b``'s carrying one each); this error
   is *structural* and upward-only;
2. **sampling** — matching sets are summarised (reservoir or distinct
   samples); this error is *statistical* and two-sided.

Running Sets mode with capacity ≥ the stream isolates (1): no sampling
occurs, every remaining error is skeletonisation.  The gap between that
floor and any finite-budget configuration is the sampling component.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import evaluate, prepare

from _bench_utils import RESULTS_DIR


@pytest.mark.parametrize("dtd_name", ["nitf", "xcbl"])
def test_skeleton_error_floor(benchmark, dtd_name, quick_configs):
    config = next(c for c in quick_configs if c.dtd_name == dtd_name)
    prepared = prepare(config)

    def run():
        lossless = evaluate(prepared, "sets", config.n_documents)
        sampled = evaluate(prepared, "hashes", max(config.sizes) // 2)
        return lossless, sampled

    lossless, sampled = benchmark.pedantic(run, rounds=1, iterations=1)

    floor = lossless.erel_positive.percent
    total = sampled.erel_positive.percent

    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "ablation_skeleton.txt", "a") as out:
        out.write(
            f"{dtd_name}: skeletonisation floor {floor:.2f}% | "
            f"hashes@{max(config.sizes) // 2} total {total:.2f}% | "
            f"sampling component {max(total - floor, 0.0):.2f}%\n"
        )
    print(
        f"\n{dtd_name}: floor={floor:.2f}% total={total:.2f}% "
        f"sampling={max(total - floor, 0.0):.2f}%"
    )

    # The lossless configuration bounds every sampled one from below.
    assert floor <= total + 1e-9
    # Skeletonisation alone is a modest error source on DTD-driven data
    # (documents valid for one DTD rarely split pattern branches across
    # same-tag siblings in ways that matter).
    assert floor < 20.0
