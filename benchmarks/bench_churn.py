"""Subscription-churn benchmark: incremental lifecycle vs periodic rebuild.

Sweeps churn rate × community threshold over the default NITF quick
workload.  Each cell drives the *same* membership trajectory (seeded
departures + arrivals per epoch) through two maintenance regimes:

* **incremental** — the event-driven lifecycle: every arrival/departure is
  absorbed through ``subscribe``/``unsubscribe``, re-aggregating only the
  home broker's touched communities over its live ``SimilarityIndex``;
* **periodic** — membership changes are recorded but tables go stale, with
  a full ``advertise_communities`` rebuild every ``REBUILD_PERIOD`` epochs
  (the classic batch operating mode).

Reported per cell: delivery quality (minimum and final recall/precision
across epochs) for both regimes, cumulative advertisement traffic, and the
similarity engine's prune ratio (joint-selectivity provider calls skipped
by the tag-disjointness prefilter).

The headline claims asserted here:

* **zero decay for the incremental regime** — after every epoch, each
  broker's routing table is identical to one rebuilt from scratch over the
  surviving subscriptions (the lifecycle protocol loses nothing);
* at rebuild epochs the periodic regime converges back to the incremental
  tables; between rebuilds its delivery quality may decay, which is the
  cost the lifecycle API removes.

A second, burst-shaped sweep compares the per-event lifecycle against the
**batch churn API** (``subscribe_many`` / ``unsubscribe_many``): the same
membership trajectory, with each epoch's arrivals landing as one burst at
one broker, absorbed either event by event or as a single batched
re-aggregation + advertisement diff.  The batched path must end every
epoch on the identical routing tables while spending fewer advertisement
messages across the sweep — the transient community shapes the per-event
loop floods and withdraws between arrivals never hit the wire.

Also runnable standalone for a quick smoke check (used by CI)::

    PYTHONPATH=src python benchmarks/bench_churn.py --smoke
"""

from __future__ import annotations

import argparse

import random

from common import (
    TOPOLOGY,
    TOPOLOGY_SEED,
    build_overlay,
    overlay_argument_parser,
    run_with_profile,
    prepare_quick,
    prepare_smoke,
)
from repro.experiments.harness import prepare
from repro.routing.overlay import BrokerOverlay

N_BROKERS = 4
CHURN_RATES = (0.05, 0.2, 0.4)
THRESHOLDS = (0.7, 0.5, 0.3)
N_SUBSCRIBERS = 40
N_EPOCHS = 6
REBUILD_PERIOD = 3
CHURN_SEED = 23


def table_signature(overlay: BrokerOverlay) -> dict:
    """Per-broker routing state, comparable across subscriber-id histories
    (deliver payloads are renumbered by survivor rank)."""
    rank = {
        subscriber_id: position
        for position, subscriber_id in enumerate(sorted(overlay.subscriptions))
    }
    signature = {}
    for broker_id, node in overlay.brokers.items():
        entries = set()
        for entry in node.table:
            kind, payload = entry.destination
            if kind == "deliver":
                payload = tuple(
                    sorted(rank.get(member, -1 - member) for member in payload)
                )
            entries.add((entry.pattern, kind, payload))
        signature[broker_id] = frozenset(entries)
    return signature


def rebuild(overlay: BrokerOverlay, corpus, threshold: float) -> BrokerOverlay:
    """A fresh overlay fully re-aggregated from *overlay*'s membership."""
    fresh = BrokerOverlay.build(TOPOLOGY, len(overlay.brokers), seed=TOPOLOGY_SEED)
    for home_id, pattern in overlay.subscriptions.values():
        fresh.attach(home_id, pattern)
    fresh.advertise_communities(corpus, threshold=threshold)
    return fresh


def prune_ratio(overlay: BrokerOverlay) -> float:
    """Network-wide tag-disjointness prune ratio of the live indexes."""
    pruned = evaluated = 0
    for node in overlay.brokers.values():
        if node.index is not None:
            pruned += node.index.stats.joint_pruned
            evaluated += node.index.stats.joint_evaluated
    decided = pruned + evaluated
    return pruned / decided if decided else 0.0


class CellResult:
    """Outcome of one (churn rate, threshold) trajectory."""

    def __init__(self, churn_rate: float, threshold: float):
        self.churn_rate = churn_rate
        self.threshold = threshold
        self.incremental_recalls: list[float] = []
        self.periodic_recalls: list[float] = []
        self.incremental_precisions: list[float] = []
        self.periodic_precisions: list[float] = []
        self.incremental_ads = 0
        self.periodic_ads = 0
        self.match_operations = 0
        self.prune_ratio = 0.0


def run_cell(
    prepared,
    churn_rate: float,
    threshold: float,
    n_subscribers: int,
    n_epochs: int,
    n_brokers: int,
    rebuild_period: int,
) -> CellResult:
    corpus = prepared.corpus
    pool = prepared.positive
    initial = pool[:n_subscribers]
    reserve = pool[n_subscribers:] or pool

    incremental = build_overlay(n_brokers, initial)
    periodic = build_overlay(n_brokers, initial)
    incremental.advertise_communities(corpus, threshold=threshold)
    periodic.advertise_communities(corpus, threshold=threshold)

    result = CellResult(churn_rate, threshold)
    rng = random.Random(CHURN_SEED)
    arrivals = 0
    events = max(1, round(churn_rate * n_subscribers))
    for epoch in range(1, n_epochs + 1):
        victims = rng.sample(
            sorted(incremental.subscriptions),
            k=min(events, len(incremental.subscriptions)),
        )
        for victim in victims:
            incremental.unsubscribe(victim)
            periodic.detach(victim)
        for _ in range(events):
            pattern = reserve[arrivals % len(reserve)]
            home = (n_subscribers + arrivals) % n_brokers
            arrivals += 1
            incremental.subscribe(home, pattern)
            periodic.attach(home, pattern)
        if epoch % rebuild_period == 0:
            # Periodic regime: pay a full re-flood, drop the stale tables.
            result.periodic_ads += periodic.advertisement_messages
            periodic.advertise_communities(corpus, threshold=threshold)
            assert table_signature(periodic) == table_signature(incremental), (
                "periodic rebuild must converge to the incremental tables",
                churn_rate,
                threshold,
                epoch,
            )

        # Zero-decay headline: the incremental tables equal a from-scratch
        # re-aggregation over the surviving subscriptions, every epoch.
        fresh = rebuild(incremental, corpus, threshold)
        assert table_signature(incremental) == table_signature(fresh), (
            "incremental lifecycle decayed",
            churn_rate,
            threshold,
            epoch,
        )

        inc_stats = incremental.route_corpus(corpus)
        stale_stats = periodic.route_corpus(corpus)
        result.incremental_recalls.append(inc_stats.recall)
        result.periodic_recalls.append(stale_stats.recall)
        result.incremental_precisions.append(inc_stats.precision)
        result.periodic_precisions.append(stale_stats.precision)
        result.match_operations += inc_stats.match_operations

    result.incremental_ads = incremental.advertisement_messages
    result.periodic_ads += periodic.advertisement_messages
    result.prune_ratio = prune_ratio(incremental)
    return result


class BatchCellResult:
    """Outcome of one burst trajectory: per-event vs batched lifecycle."""

    def __init__(self, threshold: float):
        self.threshold = threshold
        self.per_event_ads = 0
        self.batched_ads = 0


def run_batch_cell(
    prepared,
    threshold: float,
    n_subscribers: int,
    n_epochs: int,
    n_brokers: int,
    burst: int,
) -> BatchCellResult:
    """Drive one burst-shaped trajectory through both churn APIs.

    Each epoch retires *burst* random subscriptions and lands *burst*
    arrivals on a single (rotating) broker.  The per-event overlay
    absorbs them one ``subscribe``/``unsubscribe`` at a time; the
    batched overlay coalesces each side of the epoch through
    ``unsubscribe_many``/``subscribe_many``.  Both must converge to the
    same routing tables every epoch.
    """
    corpus = prepared.corpus
    pool = prepared.positive
    initial = pool[:n_subscribers]
    reserve = pool[n_subscribers:] or pool

    per_event = build_overlay(n_brokers, initial)
    batched = build_overlay(n_brokers, initial)
    per_event.advertise_communities(corpus, threshold=threshold)
    batched.advertise_communities(corpus, threshold=threshold)

    result = BatchCellResult(threshold)
    rng = random.Random(CHURN_SEED)
    arrivals = 0
    for epoch in range(1, n_epochs + 1):
        victims = rng.sample(
            sorted(per_event.subscriptions),
            k=min(burst, len(per_event.subscriptions)),
        )
        for victim in victims:
            per_event.unsubscribe(victim)
        batched.unsubscribe_many(victims)
        home = epoch % n_brokers
        patterns = []
        for _ in range(burst):
            patterns.append(reserve[arrivals % len(reserve)])
            arrivals += 1
        for pattern in patterns:
            per_event.subscribe(home, pattern)
        batched.subscribe_many(home, patterns)
        assert table_signature(batched) == table_signature(per_event), (
            "batched lifecycle diverged from the per-event loop",
            threshold,
            epoch,
        )
    result.per_event_ads = per_event.advertisement_messages
    result.batched_ads = batched.advertisement_messages
    return result


def run_sweep(
    prepared,
    churn_rates=CHURN_RATES,
    thresholds=THRESHOLDS,
    n_subscribers: int = N_SUBSCRIBERS,
    n_epochs: int = N_EPOCHS,
    n_brokers: int = N_BROKERS,
    rebuild_period: int = REBUILD_PERIOD,
) -> list[CellResult]:
    return [
        run_cell(
            prepared,
            churn_rate,
            threshold,
            n_subscribers,
            n_epochs,
            n_brokers,
            rebuild_period,
        )
        for churn_rate in churn_rates
        for threshold in thresholds
    ]


def run_batch_sweep(
    prepared,
    thresholds=THRESHOLDS,
    n_subscribers: int = N_SUBSCRIBERS,
    n_epochs: int = N_EPOCHS,
    n_brokers: int = N_BROKERS,
    burst: int = 8,
) -> list[BatchCellResult]:
    return [
        run_batch_cell(
            prepared, threshold, n_subscribers, n_epochs, n_brokers, burst
        )
        for threshold in thresholds
    ]


def render_batch(rows: list[BatchCellResult]) -> str:
    header = (
        f"{'thresh':>6s} {'per-event ads':>13s} {'batched ads':>11s} "
        f"{'saved':>7s}"
    )
    lines = [header, "-" * len(header)]
    for cell in rows:
        saved = 1.0 - cell.batched_ads / cell.per_event_ads
        lines.append(
            f"{cell.threshold:6.2f} {cell.per_event_ads:13d} "
            f"{cell.batched_ads:11d} {saved:7.1%}"
        )
    return "\n".join(lines) + "\n"


def render(rows: list[CellResult]) -> str:
    header = (
        f"{'churn':>5s} {'thresh':>6s} {'inc rec':>8s} {'stale rec':>9s} "
        f"{'stale min':>9s} {'inc ads':>8s} {'stale ads':>9s} {'pruned':>7s}"
    )
    lines = [header, "-" * len(header)]
    for cell in rows:
        lines.append(
            f"{cell.churn_rate:5.2f} {cell.threshold:6.2f} "
            f"{cell.incremental_recalls[-1]:8.3f} "
            f"{cell.periodic_recalls[-1]:9.3f} "
            f"{min(cell.periodic_recalls):9.3f} "
            f"{cell.incremental_ads:8d} {cell.periodic_ads:9d} "
            f"{cell.prune_ratio:7.1%}"
        )
    return "\n".join(lines) + "\n"


def check_acceptance(rows: list[CellResult]) -> None:
    """Assert the headline claims over a finished sweep.

    The zero-decay equality is asserted per epoch inside :func:`run_cell`;
    here we sanity-check the aggregate outputs.
    """
    for cell in rows:
        for series in (
            cell.incremental_recalls,
            cell.periodic_recalls,
            cell.incremental_precisions,
            cell.periodic_precisions,
        ):
            assert series and all(0.0 <= value <= 1.0 for value in series), cell
        assert 0.0 <= cell.prune_ratio <= 1.0
        assert cell.incremental_ads > 0 and cell.periodic_ads > 0


def check_batch_acceptance(rows: list[BatchCellResult]) -> None:
    """Assert the batching headline over a finished burst sweep.

    Table equality per epoch is asserted inside :func:`run_batch_cell`;
    here: batching never costs extra advertisement traffic in any cell,
    and across the sweep it saves strictly — the transient aggregations
    the per-event loop announces between burst members stay local.
    """
    assert rows
    for cell in rows:
        assert cell.per_event_ads > 0, cell.threshold
        assert cell.batched_ads <= cell.per_event_ads, cell.threshold
    assert sum(cell.batched_ads for cell in rows) < sum(
        cell.per_event_ads for cell in rows
    ), "batched churn saved no advertisement traffic"


def test_churn(benchmark, nitf_quick):
    from _bench_utils import RESULTS_DIR

    prepared = prepare(nitf_quick)
    rows = benchmark.pedantic(
        lambda: run_sweep(prepared), rounds=1, iterations=1
    )
    batch_rows = run_batch_sweep(prepared)

    RESULTS_DIR.mkdir(exist_ok=True)
    report = render(rows) + "\n" + render_batch(batch_rows)
    (RESULTS_DIR / "churn.txt").write_text(report)
    print()
    print(report)

    check_acceptance(rows)
    check_batch_acceptance(batch_rows)


def main() -> None:
    args = overlay_argument_parser(__doc__.splitlines()[0]).parse_args()
    run_with_profile(args, lambda: _run(args))


def _run(args: argparse.Namespace) -> None:

    if args.smoke:
        prepared = prepare_smoke(args.dtd)
        rows = run_sweep(
            prepared,
            churn_rates=(0.25,),
            thresholds=(0.5,),
            n_subscribers=12,
            n_epochs=2,
            n_brokers=3,
            rebuild_period=2,
        )
        batch_rows = run_batch_sweep(
            prepared,
            thresholds=(0.5,),
            n_subscribers=12,
            n_epochs=2,
            n_brokers=3,
            burst=8,
        )
    else:
        prepared = prepare_quick(args.dtd)
        rows = run_sweep(prepared)
        batch_rows = run_batch_sweep(prepared)
    print(render(rows))
    print(render_batch(batch_rows))
    check_acceptance(rows)
    check_batch_acceptance(batch_rows)
    print("acceptance checks passed")


if __name__ == "__main__":
    main()
