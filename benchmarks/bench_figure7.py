"""Figure 7 — average absolute relative error of proximity metric
M1(p,q) = P(p|q) over random positive-pattern pairs.

Paper shape: same ordering as Figure 4 (Hashes best) with higher absolute
errors, since the metric composes several estimates.
"""

from __future__ import annotations

from repro.experiments.figures import figure4, figure7

from _bench_utils import save_figure, series_map


def test_figure7(benchmark, quick_configs):
    figure = benchmark.pedantic(
        figure7, args=(quick_configs,), rounds=1, iterations=1
    )
    save_figure(figure)
    curves = series_map(figure)

    for dtd in ("NITF", "XCBL"):
        hashes = curves[f"Hashes - {dtd}"]
        sets = curves[f"Sets - {dtd}"]
        assert hashes[-1] <= hashes[0]          # error decays with budget
        # Hashes win across the sweep.  The comparison uses sweep means:
        # at the very top of the quick-scale sweep the capacity approaches
        # the stream length and Sets saturate to losslessness (a reduced-
        # scale artifact), while single mid-points are noisy.
        assert sum(hashes) / len(hashes) <= sum(sets) / len(sets) + 1e-9

    # Metric errors compound estimation errors: at the smallest budget the
    # metric error is at least the plain selectivity error (Figure 4).
    selectivity = series_map(figure4(quick_configs))
    assert curves["Hashes - NITF"][0] >= 0.5 * selectivity["Hashes - NITF"][0]
