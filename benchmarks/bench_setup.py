"""Section 5.1 setup statistics (Table 1 and the workload profile prose).

Regenerates, at quick scale, the numbers the paper quotes about its data
sets: document counts and sizes, and the positive workloads' average /
most-selective / least-selective pattern selectivities (paper: 8.27% NITF /
36.17% xCBL averages, 0.01% minima, 84.85% / 100% maxima).
"""

from __future__ import annotations

from repro.experiments.figures import setup_summary
from repro.experiments.report import render_summary

from _bench_utils import RESULTS_DIR


def test_setup_summary(benchmark, quick_configs):
    summary = benchmark.pedantic(
        setup_summary, args=(quick_configs,), rounds=1, iterations=1
    )
    table = render_summary(summary)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "setup_summary.txt").write_text(table)
    print()
    print(table)

    for dtd_name in ("nitf", "xcbl"):
        stats = summary[dtd_name]
        # Documents average ~100 tag pairs at <= 10 levels (Section 5.1).
        assert 60 <= stats["avg_tag_pairs"] <= 160
        assert stats["max_depth"] <= 10
        # Positive patterns span the selectivity range.
        assert 0 < stats["positive_min_selectivity_pct"] < 10
        assert stats["positive_max_selectivity_pct"] >= 50
    # xCBL patterns are less selective than NITF's on average
    # (paper: 36.17% vs 8.27%).
    assert (
        summary["xcbl"]["positive_avg_selectivity_pct"]
        > summary["nitf"]["positive_avg_selectivity_pct"]
    )
