"""Micro-benchmarks of the core operations (not paper figures): synopsis
insertion throughput, SEL latency per representation, exact matching, hash
sample maintenance, and skeleton-path extraction.

These use pytest-benchmark's statistical timing (multiple rounds), unlike
the figure benches which run once and assert curve shapes.
"""

from __future__ import annotations

import pytest

from repro.core.selectivity import SelectivityEstimator
from repro.dtd.builtin import nitf_dtd
from repro.experiments.config import DOC_GENERATOR_PRESETS
from repro.generators.docgen import generate_documents
from repro.generators.querygen import PatternGenerator
from repro.synopsis.hashes import DistinctHasher, HashSample
from repro.synopsis.synopsis import DocumentSynopsis
from repro.xmltree.matcher import PatternMatcher
from repro.xmltree.skeleton import skeleton_paths


@pytest.fixture(scope="module")
def documents():
    return generate_documents(
        nitf_dtd(), 200, seed=17, config=DOC_GENERATOR_PRESETS["nitf"]
    )


@pytest.fixture(scope="module")
def patterns():
    return PatternGenerator(nitf_dtd(), seed=18).generate_many(20)


@pytest.fixture(scope="module", params=["counters", "sets", "hashes"])
def loaded_synopsis(request, documents):
    synopsis = DocumentSynopsis(mode=request.param, capacity=100, seed=1)
    for doc in documents:
        synopsis.insert_document(doc)
    synopsis_id = request.param
    return synopsis_id, synopsis


def test_skeleton_paths_throughput(benchmark, documents):
    def run():
        total = 0
        for doc in documents[:50]:
            total += sum(1 for _ in skeleton_paths(doc))
        return total

    assert benchmark(run) > 0


def test_synopsis_insert_throughput(benchmark, documents):
    def run():
        synopsis = DocumentSynopsis(mode="hashes", capacity=100, seed=2)
        for doc in documents[:100]:
            synopsis.insert_document(doc)
        return synopsis.n_nodes

    assert benchmark(run) > 0


def test_selectivity_latency(benchmark, loaded_synopsis, patterns):
    _, synopsis = loaded_synopsis
    estimator = SelectivityEstimator(synopsis)

    def run():
        estimator.clear_cache()
        return [estimator.selectivity(p) for p in patterns]

    values = benchmark(run)
    assert all(0.0 <= v <= 1.0 for v in values)


def test_exact_matcher_throughput(benchmark, documents, patterns):
    matchers = [PatternMatcher(p) for p in patterns[:5]]

    def run():
        hits = 0
        for matcher in matchers:
            for doc in documents[:100]:
                hits += matcher.matches(doc)
        return hits

    assert benchmark(run) >= 0


def test_hash_sample_insert(benchmark):
    hasher = DistinctHasher(seed=3)

    def run():
        sample = HashSample(hasher, capacity=128)
        for x in range(5_000):
            sample.insert(x)
        return sample.estimate_cardinality()

    assert benchmark(run) > 0


def test_joint_selectivity_latency(benchmark, documents, patterns):
    synopsis = DocumentSynopsis(mode="hashes", capacity=100, seed=4)
    for doc in documents:
        synopsis.insert_document(doc)
    estimator = SelectivityEstimator(synopsis)
    pairs = list(zip(patterns[:10], patterns[10:20], strict=True))

    def run():
        estimator.clear_cache()
        return [estimator.joint_selectivity(p, q) for p, q in pairs]

    values = benchmark(run)
    assert all(0.0 <= v <= 1.0 for v in values)
