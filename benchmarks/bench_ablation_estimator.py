"""Ablation: the hash-mode probability estimator (design choice in
``repro.core.selectivity``).

``P(p) = |SEL(rs, rp)| / |S(rs)|`` leaves open how each cardinality is
estimated from distinct samples.  Three candidates:

* **aligned-ratio** — subsample numerator and denominator to a common level
  and ratio the raw counts;
* **exact-N** (the implementation's choice) — expand the numerator at its
  own level, divide by the exactly-known stream count;
* **estimated-N** — expand both numerator and root-sample cardinality.

Aligned-ratio is exact for stream-wide patterns but collapses resolution
whenever one universal path drives the root sample to a high level; exact-N
keeps each query's own sample resolution.  This bench quantifies the gap
that justified the choice (documented in the selectivity module).
"""

from __future__ import annotations

import pytest

from repro.core.errors import average_relative_error
from repro.core.selectivity import SelectivityEstimator
from repro.experiments.harness import build_synopsis, prepare
from repro.xmltree.matcher import CompiledPattern

from _bench_utils import RESULTS_DIR

CAPACITY = 100  # 20% of the quick-scale stream


def _estimate_all(prepared, strategy: str) -> list[float]:
    synopsis = build_synopsis(prepared, "hashes", CAPACITY)
    estimator = SelectivityEstimator(synopsis)
    root_view = synopsis.full_view(synopsis.root)
    values = []
    for pattern in prepared.positive:
        view = estimator._sel_root_view(CompiledPattern(pattern))
        if strategy == "aligned-ratio":
            level = max(view.level, root_view.level)
            root_ids = root_view.at_level(level)
            value = len(view.at_level(level)) / len(root_ids) if root_ids else 0.0
        elif strategy == "exact-N":
            value = view.estimate_cardinality() / synopsis.n_documents
        else:  # estimated-N
            denominator = max(root_view.estimate_cardinality(), 1.0)
            value = view.estimate_cardinality() / denominator
        values.append(min(max(value, 0.0), 1.0))
    return values


@pytest.mark.parametrize("dtd_name", ["nitf", "xcbl"])
def test_estimator_ablation(benchmark, dtd_name, quick_configs):
    config = next(c for c in quick_configs if c.dtd_name == dtd_name)
    prepared = prepare(config)

    def run():
        return {
            strategy: average_relative_error(
                prepared.exact_positive, _estimate_all(prepared, strategy)
            ).percent
            for strategy in ("aligned-ratio", "exact-N", "estimated-N")
        }

    errors = benchmark.pedantic(run, rounds=1, iterations=1)

    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "ablation_estimator.txt", "a") as out:
        out.write(f"{dtd_name} (capacity={CAPACITY}): {errors}\n")
    print(f"\n{dtd_name}: {errors}")

    # The implementation's choice must dominate both alternatives.
    assert errors["exact-N"] <= errors["aligned-ratio"] + 1e-9
    assert errors["exact-N"] <= errors["estimated-N"] + 1e-9
