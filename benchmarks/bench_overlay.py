"""Multi-broker overlay routing benchmark.

Sweeps broker count × community threshold over the default NITF quick
workload and reports, per configuration, the network-wide filtering cost
(match operations), routing state (table entries), advertisement traffic
and delivery precision/recall — the paper's scalability trade-off measured
across an actual overlay instead of one broker.

The headline claims asserted here:

* community-aggregated advertisement performs fewer total match operations
  than per-subscription advertisement at every broker count;
* recall stays >= 0.9 at similarity threshold 0.5 on the default workload.

Also runnable standalone for a quick smoke check (used by CI)::

    PYTHONPATH=src python benchmarks/bench_overlay.py --smoke
"""

from __future__ import annotations

import argparse

from common import (
    TOPOLOGY,
    overlay_argument_parser,
    run_with_profile,
    overlay_builder,
    prepare_quick,
    prepare_smoke,
)
from repro.experiments.harness import prepare
from repro.routing.overlay import OverlayStats
from repro.routing.policy import CommunityPolicy, PerSubscriptionPolicy

BROKER_COUNTS = (2, 4, 8)
THRESHOLDS = (0.7, 0.5, 0.3)
N_SUBSCRIBERS = 60
ACCEPTANCE_THRESHOLD = 0.5


def run_sweep(
    prepared,
    n_subscribers: int = N_SUBSCRIBERS,
    broker_counts: tuple[int, ...] = BROKER_COUNTS,
    thresholds: tuple[float, ...] = THRESHOLDS,
    topology: str = TOPOLOGY,
) -> list[tuple[int, object, OverlayStats]]:
    """Route the prepared corpus under every (brokers, policy) cell.

    Returns ``(n_brokers, threshold-or-None, stats)`` rows; ``None`` marks
    the per-subscription baseline.  Community similarity uses the exact
    corpus provider, isolating the routing trade-off from synopsis
    estimation error (bench_routing.py covers the estimated-similarity
    side).

    Matching runs in ``linear`` (per-pattern scan) mode: the paper's
    fewer-table-entries claim is about scan cost, and the trie's shared
    prefixes already collapse most of the per-subscription redundancy,
    which would blur exactly the effect this sweep measures.
    """
    subscriptions = prepared.positive[:n_subscribers]
    corpus = prepared.corpus
    rows: list[tuple[int, object, OverlayStats]] = []
    for n_brokers in broker_counts:
        overlay = (
            overlay_builder(n_brokers, subscriptions, topology=topology)
            .matching("linear")
            .advertisement(PerSubscriptionPolicy())
            .build_overlay()
        )
        rows.append((n_brokers, None, overlay.route_corpus(corpus)))
        for threshold in thresholds:
            overlay.advertise(CommunityPolicy(threshold), provider=corpus)
            rows.append((n_brokers, threshold, overlay.route_corpus(corpus)))
    return rows


def render(rows: list[tuple[int, object, OverlayStats]]) -> str:
    header = (
        f"{'brokers':>7s} {'regime':24s} {'ops':>7s} {'tables':>6s} "
        f"{'ads':>5s} {'fwd/doc':>7s} {'precision':>9s} {'recall':>7s}"
    )
    lines = [header, "-" * len(header)]
    for n_brokers, threshold, stats in rows:
        regime = (
            "per_subscription"
            if threshold is None
            else f"community(th={threshold})"
        )
        lines.append(
            f"{n_brokers:7d} {regime:24s} {stats.match_operations:7d} "
            f"{stats.total_table_entries:6d} "
            f"{stats.advertisement_messages:5d} "
            f"{stats.forwards_per_document:7.2f} "
            f"{stats.precision:9.3f} {stats.recall:7.3f}"
        )
    return "\n".join(lines) + "\n"


def check_acceptance(rows: list[tuple[int, object, OverlayStats]]) -> None:
    """Assert the headline claims over a finished sweep."""
    baselines = {
        n_brokers: stats for n_brokers, th, stats in rows if th is None
    }
    for n_brokers, threshold, stats in rows:
        if threshold is None:
            # Per-subscription advertisement routes exactly.
            assert stats.precision == 1.0 and stats.recall == 1.0, stats
            continue
        baseline = baselines[n_brokers]
        assert stats.match_operations < baseline.match_operations, (
            n_brokers,
            threshold,
        )
        if threshold == ACCEPTANCE_THRESHOLD:
            assert stats.recall >= 0.9, (n_brokers, stats.recall)


def test_overlay_routing(benchmark, nitf_quick):
    from _bench_utils import RESULTS_DIR

    prepared = prepare(nitf_quick)
    rows = benchmark.pedantic(
        lambda: run_sweep(prepared), rounds=1, iterations=1
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    report = render(rows)
    (RESULTS_DIR / "overlay.txt").write_text(report)
    print()
    print(report)

    check_acceptance(rows)


def main() -> None:
    args = overlay_argument_parser(__doc__.splitlines()[0]).parse_args()
    run_with_profile(args, lambda: _run(args))


def _run(args: argparse.Namespace) -> None:

    if args.smoke:
        rows = run_sweep(
            prepare_smoke(args.dtd),
            n_subscribers=16,
            broker_counts=(2, 3),
            thresholds=(0.5,),
        )
    else:
        rows = run_sweep(prepare_quick(args.dtd))
    print(render(rows))
    check_acceptance(rows)
    print("acceptance checks passed")


if __name__ == "__main__":
    main()
