"""Broker-topology churn: incremental join/leave vs full rebuilds.

Sweeps broker-churn rate × advertisement policy over the default NITF
quick workload.  Each cell drives the *same* seeded trajectory of broker
joins (leaf grafts and edge splits) and leaves (merges, sometimes with an
explicit target) through the incremental topology lifecycle
(``BrokerOverlay.add_broker`` / ``remove_broker``) and prices it against
the rebuild alternatives:

* **incremental** — each join seeds only the newcomer's links, each
  leave withdraws the retiring broker's own advertisements and
  transplants its reversible-covering state; cumulative advertisement
  messages are the overhead measure;
* **per-epoch rebuild** — the cost a deployment would pay to re-flood
  the whole overlay from scratch after every epoch of churn (summed
  fresh-advertisement message counts over the same trajectory);
* **periodic rebuild** — rebuilding only every ``REBUILD_PERIOD`` epochs
  leaves the routing state *topologically* stale in between;
  ``convergence lag`` counts the epochs served on a stale topology.

The headline claims asserted here:

* **zero table decay** — after every epoch, each broker's routing table
  is identical (up to id relabelling) to a from-scratch rebuild of the
  surviving topology, for every advertisement policy;
* **incremental wins everywhere** — at every swept churn rate and under
  every policy, incremental maintenance spends fewer advertisement
  messages than per-epoch rebuilds.  (The sweep deliberately stays below
  the crossover: once essentially the whole overlay churns every epoch,
  one batch re-flood is cheaper than per-event surgery — and unlike
  subscription staleness, a *topologically* stale table is not merely
  imprecise but unroutable, so real deployments cannot sit past the
  crossover anyway.)

Also runnable standalone for a quick smoke check (used by CI; the
``topology=`` summary line becomes a CI step output)::

    PYTHONPATH=src python benchmarks/bench_topology_churn.py --smoke
"""

from __future__ import annotations

import argparse

import random

from common import (
    build_overlay,
    overlay_argument_parser,
    run_with_profile,
    prepare_quick,
    prepare_smoke,
)
from repro.experiments.harness import prepare
from repro.routing.overlay import BrokerOverlay
from repro.routing.policy import (
    CommunityPolicy,
    HybridPolicy,
    PerSubscriptionPolicy,
)

N_BROKERS = 6
MIN_BROKERS = 3
MAX_BROKERS = 10
#: Topology events per epoch = rate × broker count.  Incremental
#: maintenance wins clearly up to half the overlay churning per epoch;
#: past that (rate ≳ 1.0, i.e. every broker churning every epoch) the
#: surgery bill crosses over and batch rebuilds become cheaper — which
#: is the regime boundary the sweep is designed to stay inside.
CHURN_RATES = (0.1, 0.25, 0.5)
N_SUBSCRIBERS = 36
N_EPOCHS = 6
REBUILD_PERIOD = 2
CHURN_SEED = 31


def policies():
    """The swept advertisement policies (fresh instance per cell)."""
    return (
        ("per_subscription", PerSubscriptionPolicy(), False),
        ("community", CommunityPolicy(0.5), True),
        ("hybrid", HybridPolicy(0.5, aggregate_above=6), True),
    )


class CellResult:
    """Outcome of one (churn rate, policy) trajectory."""

    def __init__(self, churn_rate: float, policy_name: str):
        self.churn_rate = churn_rate
        self.policy_name = policy_name
        self.incremental_ads = 0
        self.rebuild_ads = 0
        self.convergence_lag = 0
        self.epochs = 0
        self.joins = 0
        self.leaves = 0


def churn_epoch(overlay: BrokerOverlay, rng, events: int) -> tuple[int, int]:
    """Apply one epoch of seeded topology churn; returns (joins, leaves)."""
    joins = leaves = 0
    for _ in range(events):
        if len(overlay.brokers) <= MIN_BROKERS:
            op = "join"
        elif len(overlay.brokers) >= MAX_BROKERS:
            op = "leave"
        else:
            op = rng.choice(("join", "leave"))
        if op == "join":
            parent = rng.choice(sorted(overlay.brokers))
            split = None
            neighbors = overlay.brokers[parent].neighbors
            if neighbors and rng.random() < 0.5:
                split = rng.choice(neighbors)
            overlay.add_broker(parent, split=split)
            joins += 1
        else:
            retiring = rng.choice(sorted(overlay.brokers))
            merge_into = None
            if rng.random() < 0.5:
                merge_into = rng.choice(
                    overlay.brokers[retiring].neighbors
                )
            overlay.remove_broker(retiring, merge_into=merge_into)
            leaves += 1
    return joins, leaves


def run_cell(
    prepared,
    churn_rate: float,
    policy_name: str,
    policy,
    provider_needed: bool,
    n_subscribers: int,
    n_epochs: int,
    n_brokers: int,
    rebuild_period: int,
) -> CellResult:
    corpus = prepared.corpus
    provider = corpus if provider_needed else None
    patterns = prepared.positive[:n_subscribers]

    overlay = build_overlay(n_brokers, patterns)
    overlay.advertise(policy, provider)

    result = CellResult(churn_rate, policy_name)
    rng = random.Random(CHURN_SEED)
    events = max(1, round(churn_rate * n_brokers))
    settled = overlay.advertisement_messages
    stale_signature = overlay.topology_signature()
    for epoch in range(1, n_epochs + 1):
        joins, leaves = churn_epoch(overlay, rng, events)
        result.joins += joins
        result.leaves += leaves
        result.epochs += 1

        # Zero-decay headline: the incremental tables equal a fresh
        # rebuild of the surviving topology, every epoch — and the
        # rebuild's advertisement bill is what a per-epoch rebuild
        # regime would have paid for this epoch.
        fresh = overlay.rebuilt(policy, provider)
        truth = overlay.topology_signature()
        assert truth == fresh.topology_signature(), (
            "incremental topology lifecycle decayed",
            churn_rate,
            policy_name,
            epoch,
        )
        result.rebuild_ads += fresh.advertisement_messages

        # Periodic regime: between rebuilds the overlay serves a stale
        # topology; count those epochs as convergence lag.
        if epoch % rebuild_period == 0:
            stale_signature = truth
        elif truth != stale_signature:
            result.convergence_lag += 1

    result.incremental_ads = overlay.advertisement_messages - settled
    return result


def run_sweep(
    prepared,
    churn_rates=CHURN_RATES,
    n_subscribers: int = N_SUBSCRIBERS,
    n_epochs: int = N_EPOCHS,
    n_brokers: int = N_BROKERS,
    rebuild_period: int = REBUILD_PERIOD,
) -> list[CellResult]:
    return [
        run_cell(
            prepared,
            churn_rate,
            name,
            policy,
            provider_needed,
            n_subscribers,
            n_epochs,
            n_brokers,
            rebuild_period,
        )
        for churn_rate in churn_rates
        for name, policy, provider_needed in policies()
    ]


def render(rows: list[CellResult]) -> str:
    header = (
        f"{'rate':>5s} {'policy':>16s} {'joins':>5s} {'leaves':>6s} "
        f"{'inc ads':>8s} {'rebuild ads':>11s} {'saved':>7s} {'lag':>5s}"
    )
    lines = [header, "-" * len(header)]
    for cell in rows:
        saved = 1.0 - cell.incremental_ads / cell.rebuild_ads
        lines.append(
            f"{cell.churn_rate:5.2f} {cell.policy_name:>16s} "
            f"{cell.joins:5d} {cell.leaves:6d} "
            f"{cell.incremental_ads:8d} {cell.rebuild_ads:11d} "
            f"{saved:7.1%} {cell.convergence_lag:3d}/{cell.epochs}"
        )
    return "\n".join(lines) + "\n"


def summary_line(rows: list[CellResult]) -> str:
    """One-line digest published as a CI step output."""
    parts = [
        f"{cell.policy_name}@{cell.churn_rate:g}:"
        f"inc={cell.incremental_ads},rebuild={cell.rebuild_ads},"
        f"lag={cell.convergence_lag}"
        for cell in rows
    ]
    return "topology=" + ";".join(parts)


def check_acceptance(rows: list[CellResult]) -> None:
    """Assert the headline claims over a finished sweep.

    Zero decay is asserted per epoch inside :func:`run_cell`; here:
    incremental join/leave must beat per-epoch rebuilds on advertisement
    traffic in every cell, and the lag column must expose what periodic
    rebuilds give up.
    """
    assert rows
    for cell in rows:
        assert cell.joins + cell.leaves > 0, cell.policy_name
        assert cell.incremental_ads > 0, cell.policy_name
        assert cell.incremental_ads < cell.rebuild_ads, (
            "incremental topology churn spent more advertisement traffic "
            "than full rebuilds",
            cell.churn_rate,
            cell.policy_name,
        )
        assert 0 <= cell.convergence_lag < cell.epochs


def test_topology_churn(benchmark, nitf_quick):
    from _bench_utils import RESULTS_DIR

    prepared = prepare(nitf_quick)
    rows = benchmark.pedantic(
        lambda: run_sweep(prepared), rounds=1, iterations=1
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    report = render(rows)
    (RESULTS_DIR / "topology_churn.txt").write_text(report)
    print()
    print(report)

    check_acceptance(rows)


def main() -> None:
    args = overlay_argument_parser(__doc__.splitlines()[0]).parse_args()
    run_with_profile(args, lambda: _run(args))


def _run(args: argparse.Namespace) -> None:

    if args.smoke:
        prepared = prepare_smoke(args.dtd)
        rows = run_sweep(
            prepared,
            churn_rates=(0.5,),
            n_subscribers=12,
            n_epochs=3,
            n_brokers=4,
            rebuild_period=2,
        )
    else:
        prepared = prepare_quick(args.dtd)
        rows = run_sweep(prepared)
    print(render(rows))
    check_acceptance(rows)
    print("acceptance checks passed")
    print(summary_line(rows))


if __name__ == "__main__":
    main()
