"""Routing application benchmark (the paper's motivating use case).

Builds semantic communities from estimated similarities (synopsis-backed,
not exact) and measures routing quality and filtering cost against the
per-subscription and flooding baselines — demonstrating the Section 1
claim: similarity-derived communities cut filtering cost while keeping
delivery quality high.
"""

from __future__ import annotations

from repro.core.selectivity import SelectivityEstimator
from repro.core.similarity import SimilarityEstimator
from repro.experiments.harness import build_synopsis, prepare
from repro.routing.broker import RoutingSimulator
from repro.routing.community import leader_clustering

from _bench_utils import RESULTS_DIR


def test_community_routing(benchmark, nitf_quick):
    prepared = prepare(nitf_quick)
    subscriptions = prepared.positive[:60]

    def run():
        synopsis = build_synopsis(prepared, "hashes", 100)
        estimator = SimilarityEstimator(SelectivityEstimator(synopsis))

        def similarity(p, q):
            return estimator.similarity(p, q, metric="M3")

        communities = leader_clustering(subscriptions, similarity, threshold=0.7)
        simulator = RoutingSimulator(prepared.corpus, subscriptions)
        return (
            simulator.per_subscription(),
            simulator.flooding(),
            simulator.community(communities),
            len(communities),
        )

    exact, flood, community, n_communities = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [
        f"subscribers={exact.subscribers} documents={exact.documents} "
        f"communities={n_communities}",
    ]
    for stats in (exact, flood, community):
        lines.append(
            f"{stats.strategy:17s} precision={stats.precision:.3f} "
            f"recall={stats.recall:.3f} "
            f"matches/doc={stats.matches_per_document:.1f}"
        )
    report = "\n".join(lines) + "\n"
    (RESULTS_DIR / "routing.txt").write_text(report)
    print()
    print(report)

    # Communities reduce filtering cost below per-subscription matching...
    assert community.match_operations < exact.match_operations
    # ...with far better precision than flooding...
    assert community.precision > flood.precision
    # ...and high recall (estimated-similarity communities are coherent).
    assert community.recall > 0.8
