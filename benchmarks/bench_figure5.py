"""Figure 5 — log10 of the RMS error of negative queries vs maximum
hash/set size.

Paper shape: all three methods almost always identify negative queries
(errors around 1e-4 .. 1e-6); Hashes outperforms the others; Sets/Hashes
curves that produce *no* error are omitted (the paper drops them for xCBL).
"""

from __future__ import annotations

from repro.experiments.figures import figure5

from _bench_utils import save_figure, series_map


def test_figure5(benchmark, quick_configs):
    figure = benchmark.pedantic(
        figure5, args=(quick_configs,), rounds=1, iterations=1
    )
    save_figure(figure)
    curves = series_map(figure)

    # Whatever survives the zero-drop must be a *small* error: log10 <= -1.5
    # (i.e. RMS error below ~0.03 on a [0,1] quantity).
    for label, ys in curves.items():
        assert all(y <= -1.5 for y in ys), (label, ys)

    # Negative queries are essentially always identified at the largest
    # budget: every curve ends at log10(Esqr) <= -2 or vanished entirely.
    for label, ys in curves.items():
        if ys:
            assert ys[-1] <= -2.0, (label, ys)
