"""Extension bench: tree-pattern minimization on root-merged patterns.

The ``P(p ∧ q)`` construction doubles pattern sizes; related-work
minimization (Amer-Yahia et al.) removes branches one pattern already
implies of the other.  This bench measures, over the quick-scale NITF pair
workload, how much the merged patterns shrink and verifies minimization is
estimate-neutral (it must be: minimized patterns are semantically equal).
"""

from __future__ import annotations

from repro.core.minimize import minimize
from repro.core.pattern_algebra import merge_patterns
from repro.core.selectivity import SelectivityEstimator
from repro.experiments.harness import build_synopsis, prepare

from _bench_utils import RESULTS_DIR


def test_minimized_merge(benchmark, nitf_quick):
    prepared = prepare(nitf_quick)
    synopsis = build_synopsis(prepared, "sets", nitf_quick.n_documents)
    estimator = SelectivityEstimator(synopsis)
    pairs = prepared.pairs[:100]

    def run():
        merged_sizes = 0
        minimized_sizes = 0
        max_drift = 0.0
        for p, q in pairs:
            merged = merge_patterns(p, q)
            reduced = minimize(merged)
            merged_sizes += merged.size()
            minimized_sizes += reduced.size()
            drift = abs(
                estimator.selectivity(merged) - estimator.selectivity(reduced)
            )
            max_drift = max(max_drift, drift)
        return merged_sizes, minimized_sizes, max_drift

    merged_sizes, minimized_sizes, max_drift = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    saved = 100.0 * (1.0 - minimized_sizes / merged_sizes)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "minimization.txt").write_text(
        f"pairs={len(pairs)} merged nodes={merged_sizes} "
        f"minimized nodes={minimized_sizes} saved={saved:.1f}% "
        f"max estimate drift={max_drift}\n"
    )
    print(f"\nminimization saves {saved:.1f}% of merged-pattern nodes")

    # Minimization never grows a pattern and never changes estimates
    # (lossless-sets estimates are purely structural).
    assert minimized_sizes <= merged_sizes
    assert max_drift == 0.0
