"""Shared benchmark fixtures.

The figure benchmarks all use the quick-scale experiment configs; the
harness caches preparations and evaluations in-process, so one pytest
session re-uses the corpus, workloads and synopsis evaluations across every
figure (exactly as the figures share them in the paper).

Rendered result tables are written to ``benchmarks/results/`` and echoed to
stdout (run with ``-s`` to watch them stream).
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="session")
def quick_configs() -> list[ExperimentConfig]:
    """Both data sets at quick scale (shape-preserving reduction)."""
    return [ExperimentConfig.quick("nitf"), ExperimentConfig.quick("xcbl")]


@pytest.fixture(scope="session")
def nitf_quick() -> ExperimentConfig:
    return ExperimentConfig.quick("nitf")


@pytest.fixture(scope="session")
def xcbl_quick() -> ExperimentConfig:
    return ExperimentConfig.quick("xcbl")
