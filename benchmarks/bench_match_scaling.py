"""Match-cost scaling: the merged pattern trie vs the per-pattern scan.

Sweeps routing-table size over 10²–10⁵ NITF subscriptions (one
destination per subscriber — the per-subscription regime whose table the
paper's Section 1 calls out as the scalability wall) and matches the same
generated document stream through both table modes:

* **linear** — every pattern evaluated per destination (first hit
  short-circuits), the oracle; its operation count grows linearly in
  table size by construction;
* **trie** — one merged-trie traversal per document; patterns share
  spine prefixes, hash-consed branch constraints and their memoised
  satisfaction, so the operation count is driven by how much *distinct
  structure* the table holds, not how many patterns spell it.

Reported per size: match operations per document and wall-clock for both
modes.  The headline claims asserted here:

* both modes deliver identical destination sets at every size;
* trie operations grow **sublinearly** — each 10× size step multiplies
  trie ops by well under 10× — and undercut the linear scan at every
  swept size ≥ 10³;
* trie wall-clock beats the linear scan at every size ≥ 10³.

The standalone run prints a ``match_scaling=…`` key=value line with the
trie-vs-linear match-ops ratio at the largest size, which CI publishes
as a step output::

    PYTHONPATH=src python benchmarks/bench_match_scaling.py --smoke
"""

from __future__ import annotations

import argparse

import time

from common import overlay_argument_parser, run_with_profile
from repro.dtd.builtin import nitf_dtd
from repro.generators.docgen import DocumentGenerator
from repro.generators.querygen import PatternGenerator
from repro.routing.table import RoutingTable

SIZES = (100, 1_000, 10_000, 100_000)
SMOKE_SIZES = (100, 300, 1_000)
N_DOCS = 10
PATTERN_SEED = 7
DOC_SEED = 21
#: Sublinearity margin for a full decade step: a 10× larger table may
#: cost at most 8× the trie ops (measured growth is ~4-7× per decade;
#: the linear scan is 10×).  Sub-decade steps — the smoke sweep — only
#: assert strict sublinearity, since fixed structure amortises less
#: over a 3× step.
GROWTH_MARGIN = 0.8


class ScalePoint:
    """Both modes' cost at one table size."""

    def __init__(self, size: int):
        self.size = size
        self.trie_ops = 0
        self.linear_ops = 0
        self.trie_seconds = 0.0
        self.linear_seconds = 0.0
        self.agreed = True

    @property
    def ops_ratio(self) -> float:
        return self.trie_ops / self.linear_ops if self.linear_ops else 0.0


def build_table(patterns) -> RoutingTable:
    """One per-subscription table: subscriber *i* is destination *i*."""
    table = RoutingTable()
    for index, pattern in enumerate(patterns):
        table.add(pattern, index)
    return table


def measure(table: RoutingTable, documents, mode: str):
    """Total match ops, wall-clock, and the per-document destination sets."""
    operations = 0
    delivered = []
    started = time.perf_counter()
    for document in documents:
        destinations, spent = table.destinations_for(document, matching=mode)
        operations += spent
        delivered.append(frozenset(destinations))
    return operations, time.perf_counter() - started, delivered


def run_sweep(sizes=SIZES, n_docs: int = N_DOCS) -> list[ScalePoint]:
    dtd = nitf_dtd()
    docgen = DocumentGenerator(dtd, seed=DOC_SEED)
    documents = [docgen.generate() for _ in range(n_docs)]
    generator = PatternGenerator(dtd, seed=PATTERN_SEED)
    patterns = generator.generate_many(max(sizes), distinct=False)
    rows = []
    for size in sizes:
        point = ScalePoint(size)
        table = build_table(patterns[:size])
        point.trie_ops, point.trie_seconds, via_trie = measure(
            table, documents, "trie"
        )
        point.linear_ops, point.linear_seconds, via_linear = measure(
            table, documents, "linear"
        )
        point.agreed = via_trie == via_linear
        rows.append(point)
    return rows


def render(rows: list[ScalePoint]) -> str:
    header = (
        f"{'patterns':>8s} {'trie ops/doc':>12s} {'linear ops/doc':>14s} "
        f"{'ratio':>6s} {'trie s':>8s} {'linear s':>8s}"
    )
    lines = [header, "-" * len(header)]
    for point in rows:
        lines.append(
            f"{point.size:8d} {point.trie_ops / N_DOCS:12.1f} "
            f"{point.linear_ops / N_DOCS:14.1f} {point.ops_ratio:6.3f} "
            f"{point.trie_seconds:8.3f} {point.linear_seconds:8.3f}"
        )
    return "\n".join(lines) + "\n"


def check_acceptance(rows: list[ScalePoint]) -> None:
    """Assert the headline claims over a finished sweep."""
    for point in rows:
        assert point.agreed, (
            f"trie and linear destinations diverged at {point.size}"
        )
        assert point.trie_ops > 0 and point.linear_ops > 0, point.size
        if point.size >= 1_000:
            assert point.trie_ops < point.linear_ops, (
                f"trie ops not below linear at {point.size}: "
                f"{point.trie_ops} vs {point.linear_ops}"
            )
            assert point.trie_seconds < point.linear_seconds, (
                f"trie wall-clock not below linear at {point.size}: "
                f"{point.trie_seconds:.3f}s vs {point.linear_seconds:.3f}s"
            )
    for previous, current in zip(rows, rows[1:], strict=False):
        size_growth = current.size / previous.size
        ops_growth = current.trie_ops / previous.trie_ops
        margin = GROWTH_MARGIN if size_growth >= 10 else 1.0
        assert ops_growth <= margin * size_growth, (
            f"trie ops grew {ops_growth:.2f}x over a {size_growth:.0f}x "
            f"size step ({previous.size} -> {current.size}): not sublinear"
        )


def test_match_scaling(benchmark):
    from _bench_utils import RESULTS_DIR

    rows = benchmark.pedantic(
        lambda: run_sweep(sizes=(100, 1_000, 10_000)), rounds=1, iterations=1
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    report = render(rows)
    (RESULTS_DIR / "match_scaling.txt").write_text(report)
    print()
    print(report)
    check_acceptance(rows)


def main() -> None:
    args = overlay_argument_parser(__doc__.splitlines()[0]).parse_args()
    run_with_profile(args, lambda: _run(args))


def _run(args: argparse.Namespace) -> None:
    rows = run_sweep(sizes=SMOKE_SIZES if args.smoke else SIZES)
    print(render(rows))
    check_acceptance(rows)
    top = rows[-1]
    print("acceptance checks passed")
    print(
        f"match_scaling=trie/linear ops ratio {top.ops_ratio:.3f} "
        f"at {top.size} patterns "
        f"({top.trie_ops / N_DOCS:.0f} vs {top.linear_ops / N_DOCS:.0f} "
        f"ops/doc)"
    )


if __name__ == "__main__":
    main()
