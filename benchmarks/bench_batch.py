"""Batched trie matching: shared-traversal drains vs one-at-a-time.

Sweeps batch size × routing-table size × corpus skew and matches the
same document stream through ``RoutingTable.destinations_for_batch``,
which funnels every document in a drain through one
cross-document memo pool (:class:`repro.routing.trie.PatternTrie`,
``match_batch``).  Two corpora:

* **uniform** — every document freshly generated: batches share only
  whatever small subtrees the DTD makes common, so memoisation helps
  modestly at best;
* **skewed** — documents Zipf-sampled (θ = 1.5) from a small pool, the
  hot-document regime of a real feed: repeated documents and repeated
  subtrees dominate, so each batch re-matches mostly structure the pool
  has already paid for.

Reported per cell: trie ops per document, memo hit rate, wall-clock.
The headline claims asserted here:

* batched destinations equal the sequential ``destinations_for`` output
  for every document at every cell — table order included;
* batched ops never exceed the summed sequential ops, at every batch
  size (coarser partitions merge finer ones, so ops are non-increasing
  in batch size everywhere);
* on the skewed corpus, ops **strictly decrease** as batch size grows,
  the memo hit rate is positive from batch size 2 up, and the ops ratio
  vs sequential drops below 1.0 by batch size 8.

The standalone run prints a ``batch=…`` key=value line with the memo
hit rate and batched-vs-sequential ops ratio at the largest skewed
cell, which CI publishes as a step output::

    PYTHONPATH=src python benchmarks/bench_batch.py --smoke
"""

from __future__ import annotations

import argparse
import random
import time

from common import overlay_argument_parser, run_with_profile
from repro.dtd.builtin import nitf_dtd
from repro.generators.docgen import DocumentGenerator
from repro.generators.querygen import PatternGenerator
from repro.generators.zipf import ZipfSampler
from repro.routing.table import RoutingTable

TABLE_SIZES = (1_000, 5_000)
SMOKE_TABLE_SIZES = (300, 1_000)
BATCH_SIZES = (1, 2, 4, 8, 16, 32)
SMOKE_BATCH_SIZES = (1, 4, 16)
#: Stream lengths are divisible by every swept batch size, so coarser
#: partitions merge finer ones exactly and ops are comparable cell for
#: cell.
N_DOCS = 64
SMOKE_N_DOCS = 32
#: Distinct documents behind the skewed stream.
POOL_SIZE = 12
SKEW_THETA = 1.5
PATTERN_SEED = 7
DOC_SEED = 21
POOL_SEED = 33
STREAM_SEED = 5


class BatchPoint:
    """One (corpus, table size, batch size) cell."""

    def __init__(self, corpus: str, size: int, batch: int):
        self.corpus = corpus
        self.size = size
        self.batch = batch
        self.ops = 0
        self.hits = 0
        self.misses = 0
        self.seconds = 0.0
        self.sequential_ops = 0
        self.agreed = True

    @property
    def hit_rate(self) -> float:
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    @property
    def ops_ratio(self) -> float:
        return self.ops / self.sequential_ops if self.sequential_ops else 0.0


def build_table(patterns) -> RoutingTable:
    """One per-subscription table: subscriber *i* is destination *i*."""
    table = RoutingTable()
    for index, pattern in enumerate(patterns):
        table.add(pattern, index)
    return table


def make_corpora(n_docs: int) -> dict[str, list]:
    """The uniform and Zipf-skewed document streams, seeded."""
    dtd = nitf_dtd()
    uniform_gen = DocumentGenerator(dtd, seed=DOC_SEED)
    uniform = [uniform_gen.generate() for _ in range(n_docs)]
    pool_gen = DocumentGenerator(dtd, seed=POOL_SEED)
    pool = [pool_gen.generate() for _ in range(POOL_SIZE)]
    sampler = ZipfSampler(
        POOL_SIZE, theta=SKEW_THETA, rng=random.Random(STREAM_SEED)
    )
    skewed = [pool[sampler.sample()] for _ in range(n_docs)]
    return {"uniform": uniform, "skewed": skewed}


def measure_sequential(table: RoutingTable, documents):
    """Summed one-document ``destinations_for`` ops and delivery lists."""
    operations = 0
    delivered = []
    for document in documents:
        destinations, spent = table.destinations_for(document)
        operations += spent
        delivered.append(destinations)
    return operations, delivered


def measure_batched(table: RoutingTable, documents, batch_size: int):
    """One sweep of the stream drained *batch_size* documents at a time."""
    operations = hits = misses = 0
    delivered = []
    started = time.perf_counter()
    for start in range(0, len(documents), batch_size):
        chunk = documents[start : start + batch_size]
        result = table.destinations_for_batch(chunk)
        operations += result.total_operations
        hits += result.memo_hits
        misses += result.memo_misses
        delivered.extend(result.destinations)
    return operations, hits, misses, time.perf_counter() - started, delivered


def run_sweep(
    table_sizes=TABLE_SIZES,
    batch_sizes=BATCH_SIZES,
    n_docs: int = N_DOCS,
) -> list[BatchPoint]:
    for batch_size in batch_sizes:
        if n_docs % batch_size:
            raise ValueError(
                f"stream length {n_docs} not divisible by batch {batch_size}"
            )
    corpora = make_corpora(n_docs)
    generator = PatternGenerator(nitf_dtd(), seed=PATTERN_SEED)
    patterns = generator.generate_many(max(table_sizes), distinct=False)
    rows = []
    for size in table_sizes:
        table = build_table(patterns[:size])
        for corpus_name, documents in corpora.items():
            sequential_ops, sequential_lists = measure_sequential(
                table, documents
            )
            for batch_size in batch_sizes:
                point = BatchPoint(corpus_name, size, batch_size)
                point.sequential_ops = sequential_ops
                (
                    point.ops,
                    point.hits,
                    point.misses,
                    point.seconds,
                    delivered,
                ) = measure_batched(table, documents, batch_size)
                point.agreed = delivered == sequential_lists
                rows.append(point)
    return rows


def render(rows: list[BatchPoint], n_docs: int) -> str:
    header = (
        f"{'corpus':>7s} {'patterns':>8s} {'batch':>5s} {'ops/doc':>8s} "
        f"{'seq/doc':>8s} {'ratio':>6s} {'hit rate':>8s} {'wall s':>7s}"
    )
    lines = [header, "-" * len(header)]
    for point in rows:
        lines.append(
            f"{point.corpus:>7s} {point.size:8d} {point.batch:5d} "
            f"{point.ops / n_docs:8.1f} "
            f"{point.sequential_ops / n_docs:8.1f} {point.ops_ratio:6.3f} "
            f"{point.hit_rate:8.3f} {point.seconds:7.3f}"
        )
    return "\n".join(lines) + "\n"


def check_acceptance(rows: list[BatchPoint]) -> None:
    """Assert the headline claims over a finished sweep."""
    cells: dict[tuple[str, int], list[BatchPoint]] = {}
    for point in rows:
        assert point.agreed, (
            f"batched destinations diverged from sequential at "
            f"{point.corpus}/{point.size}/batch {point.batch}"
        )
        assert point.ops <= point.sequential_ops, (
            f"batched ops exceed sequential at "
            f"{point.corpus}/{point.size}/batch {point.batch}: "
            f"{point.ops} vs {point.sequential_ops}"
        )
        cells.setdefault((point.corpus, point.size), []).append(point)
    for (corpus, size), points in cells.items():
        points.sort(key=lambda p: p.batch)
        for previous, current in zip(points, points[1:], strict=False):
            assert current.ops <= previous.ops, (
                f"ops grew with batch size at {corpus}/{size}: "
                f"batch {previous.batch} -> {current.batch} cost "
                f"{previous.ops} -> {current.ops}"
            )
            if corpus == "skewed":
                assert current.ops < previous.ops, (
                    f"ops not strictly decreasing on the skewed corpus at "
                    f"{size}: batch {previous.batch} -> {current.batch} "
                    f"cost {previous.ops} -> {current.ops}"
                )
        if corpus == "skewed":
            for point in points:
                if point.batch >= 2:
                    assert point.hit_rate > 0.0, (
                        f"no memo hits at skewed/{size}/batch {point.batch}"
                    )
                if point.batch >= 8:
                    assert point.ops_ratio < 1.0, (
                        f"batched ops not below sequential at "
                        f"skewed/{size}/batch {point.batch}: "
                        f"ratio {point.ops_ratio:.3f}"
                    )


def test_batch_matching(benchmark):
    from _bench_utils import RESULTS_DIR

    rows = benchmark.pedantic(
        lambda: run_sweep(
            table_sizes=SMOKE_TABLE_SIZES,
            batch_sizes=SMOKE_BATCH_SIZES,
            n_docs=SMOKE_N_DOCS,
        ),
        rounds=1,
        iterations=1,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    report = render(rows, SMOKE_N_DOCS)
    (RESULTS_DIR / "batch_matching.txt").write_text(report)
    print()
    print(report)
    check_acceptance(rows)


def main() -> None:
    args = overlay_argument_parser(__doc__.splitlines()[0]).parse_args()
    run_with_profile(args, lambda: _run(args))


def _run(args: argparse.Namespace) -> None:
    if args.smoke:
        n_docs = SMOKE_N_DOCS
        rows = run_sweep(
            table_sizes=SMOKE_TABLE_SIZES,
            batch_sizes=SMOKE_BATCH_SIZES,
            n_docs=n_docs,
        )
    else:
        n_docs = N_DOCS
        rows = run_sweep()
    print(render(rows, n_docs))
    check_acceptance(rows)
    top = max(
        (p for p in rows if p.corpus == "skewed"),
        key=lambda p: (p.size, p.batch),
    )
    print("acceptance checks passed")
    print(
        f"batch=skewed ops ratio {top.ops_ratio:.3f} at batch {top.batch}, "
        f"{top.size} patterns (memo hit rate {top.hit_rate:.3f}, "
        f"{top.ops} vs {top.sequential_ops} ops)"
    )


if __name__ == "__main__":
    main()
