"""Property-based equivalence sweep for the lifecycle APIs.

Two invariants anchor the incremental machinery to the batch machinery it
replaced:

* any interleaving of :meth:`SimilarityIndex.add` / ``remove`` yields the
  same similarity values as a fresh :class:`SimilarityMatrix` built over
  the surviving population alone (the index never pays for this: removed
  pairs stay memoised, surviving pairs are never recomputed);
* a ``subscribe`` → ``unsubscribe`` round trip restores every broker's
  routing table exactly — covering, eviction and resurrection bookkeeping
  are lossless inverses in both advertisement regimes.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.similarity import METRICS, SimilarityIndex, SimilarityMatrix
from repro.routing.overlay import BrokerOverlay
from repro.xmltree.corpus import DocumentCorpus
from tests.strategies import tree_patterns
from tests.test_selectivity_properties import corpora


def overlay_snapshot(overlay):
    """Exact per-broker routing state (active entries only)."""
    return {
        broker_id: frozenset(
            (entry.pattern, entry.destination) for entry in node.table
        )
        for broker_id, node in overlay.brokers.items()
    }


class TestIndexMatrixEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=6),
        st.sampled_from(sorted(METRICS)),
        st.data(),
    )
    def test_any_interleaving_matches_fresh_matrix(
        self, docs, patterns, metric, data
    ):
        corpus = DocumentCorpus(docs)
        index = SimilarityIndex(corpus, metric=metric)
        for pattern in patterns:
            index.add(pattern)
            if len(index) > 1 and data.draw(st.booleans(), label="remove?"):
                victim = data.draw(
                    st.sampled_from(index.handles()), label="victim"
                )
                index.remove(victim)
        survivors = index.patterns
        matrix = SimilarityMatrix(corpus, survivors, metric=metric)
        handles = index.handles()
        for i, handle in enumerate(handles):
            row = index.row(handle)
            for j, other in enumerate(handles):
                assert row[other] == matrix.values[i][j], (metric, i, j)

    @settings(max_examples=40, deadline=None)
    @given(corpora(), st.lists(tree_patterns(), min_size=2, max_size=5))
    def test_remove_then_readd_is_identity(self, docs, patterns):
        corpus = DocumentCorpus(docs)
        index = SimilarityIndex(corpus, patterns)
        baseline = {
            tuple(sorted((i, j))): index(p, q)
            for i, p in enumerate(patterns)
            for j, q in enumerate(patterns)
        }
        victim = index.handles()[-1]
        removed = index.remove(victim)
        index.add(removed)
        restored = {
            tuple(sorted((i, j))): index(p, q)
            for i, p in enumerate(patterns)
            for j, q in enumerate(patterns)
        }
        assert restored == baseline


class TestOverlayRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(tree_patterns(), min_size=1, max_size=4),
        st.lists(tree_patterns(), min_size=1, max_size=3),
        st.data(),
    )
    def test_per_subscription_round_trip(self, base, extra, data):
        # No provider involved: per-subscription advertisement is purely
        # structural, so the round trip exercises covering/resurrection
        # bookkeeping alone.
        overlay = BrokerOverlay.chain(3)
        overlay.attach_round_robin(base)
        overlay.advertise_subscriptions()
        before = overlay_snapshot(overlay)
        pending = [
            overlay.subscribe(position % 3, pattern)
            for position, pattern in enumerate(extra)
        ]
        while pending:
            victim = data.draw(st.sampled_from(pending), label="unsubscribe")
            pending.remove(victim)
            overlay.unsubscribe(victim)
        assert overlay_snapshot(overlay) == before

    @settings(max_examples=15, deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=4),
        st.lists(tree_patterns(), min_size=1, max_size=2),
        st.sampled_from([0.3, 0.7]),
        st.data(),
    )
    def test_community_round_trip(self, docs, base, extra, threshold, data):
        corpus = DocumentCorpus(docs)
        overlay = BrokerOverlay.chain(3)
        overlay.attach_round_robin(base)
        overlay.advertise_communities(corpus, threshold=threshold)
        before = overlay_snapshot(overlay)
        communities_before = {
            broker_id: list(node.communities)
            for broker_id, node in overlay.brokers.items()
        }
        pending = [
            overlay.subscribe(position % 3, pattern)
            for position, pattern in enumerate(extra)
        ]
        while pending:
            victim = data.draw(st.sampled_from(pending), label="unsubscribe")
            pending.remove(victim)
            overlay.unsubscribe(victim)
        assert overlay_snapshot(overlay) == before
        for broker_id, node in overlay.brokers.items():
            assert node.communities == communities_before[broker_id]
