"""Sliding-window synopsis: rotation, coverage bounds, drift tracking."""

import pytest

from repro.core.pattern_parser import parse_xpath
from repro.synopsis.windowed import WindowedEstimator, WindowedSynopsis
from repro.xmltree.tree import XMLTree


def doc(flavour: str, doc_id: int) -> XMLTree:
    return XMLTree.from_nested(("a", [flavour]), doc_id=doc_id)


class TestRotation:
    def test_window_must_be_sane(self):
        with pytest.raises(ValueError):
            WindowedSynopsis(window=1)

    def test_rotation_happens_at_half_window(self):
        windowed = WindowedSynopsis(window=10, mode="sets", capacity=100)
        for doc_id in range(4):
            windowed.insert_document(doc("b", doc_id))
        assert windowed.frozen is None
        windowed.insert_document(doc("b", 4))
        assert windowed.frozen is not None
        assert windowed.frozen.n_documents == 5
        assert windowed.active.n_documents == 0

    def test_coverage_bounds(self):
        windowed = WindowedSynopsis(window=10, mode="sets", capacity=100)
        for doc_id in range(57):
            windowed.insert_document(doc("b", doc_id))
            assert windowed.covered_documents <= windowed.window
        assert windowed.covered_documents >= windowed.half_window

    def test_generations_list(self):
        windowed = WindowedSynopsis(window=6, mode="sets", capacity=100)
        assert len(windowed.generations()) == 1
        for doc_id in range(3):
            windowed.insert_document(doc("b", doc_id))
        generations = windowed.generations()
        assert 1 <= len(generations) <= 2


class TestWindowedEstimation:
    def test_empty_estimates_zero(self):
        windowed = WindowedSynopsis(window=10, mode="sets", capacity=100)
        estimator = WindowedEstimator(windowed)
        assert estimator.selectivity(parse_xpath("/a")) == 0.0

    def test_estimates_reflect_window_only(self):
        """After the stream flips from 'b' documents to 'c' documents, the
        window forgets 'b' entirely once `window` new documents passed."""
        windowed = WindowedSynopsis(window=20, mode="sets", capacity=100)
        estimator = WindowedEstimator(windowed)
        for doc_id in range(50):
            windowed.insert_document(doc("b", doc_id))
        assert estimator.selectivity(parse_xpath("/a/b")) == pytest.approx(1.0)
        for doc_id in range(50, 90):  # 40 > window 'c' documents
            windowed.insert_document(doc("c", doc_id))
        assert estimator.selectivity(parse_xpath("/a/b")) == 0.0
        assert estimator.selectivity(parse_xpath("/a/c")) == pytest.approx(1.0)

    def test_mixed_window_averages(self):
        windowed = WindowedSynopsis(window=100, mode="sets", capacity=200)
        estimator = WindowedEstimator(windowed)
        for doc_id in range(30):
            windowed.insert_document(doc("b" if doc_id % 2 else "c", doc_id))
        value = estimator.selectivity(parse_xpath("/a/b"))
        assert 0.3 <= value <= 0.7

    def test_joint_selectivity(self):
        windowed = WindowedSynopsis(window=40, mode="sets", capacity=100)
        estimator = WindowedEstimator(windowed)
        for doc_id in range(20):
            windowed.insert_document(
                XMLTree.from_nested(("a", ["b", "c"]), doc_id=doc_id)
            )
        joint = estimator.joint_selectivity(
            parse_xpath("/a/b"), parse_xpath("/a/c")
        )
        assert joint == pytest.approx(1.0)

    def test_works_with_hashes(self):
        windowed = WindowedSynopsis(window=30, mode="hashes", capacity=16, seed=9)
        estimator = WindowedEstimator(windowed)
        for doc_id in range(60):
            windowed.insert_document(doc("b", doc_id))
        assert estimator.selectivity(parse_xpath("/a/b")) == pytest.approx(
            1.0, abs=0.3
        )


class TestTopK:
    def test_top_k_orders_by_similarity(self, figure2_documents):
        from repro.core.similarity import SimilarityEstimator
        from repro.xmltree.corpus import DocumentCorpus

        corpus = DocumentCorpus(figure2_documents)
        estimator = SimilarityEstimator(corpus)
        target = parse_xpath("/a/b")
        candidates = [
            parse_xpath("/a/b/e"),   # same match set -> similarity 1
            parse_xpath("/a/d"),     # disjoint -> 0
            parse_xpath("/a"),       # superset -> 1/2 under M3
        ]
        ranked = estimator.top_k(target, candidates, k=2)
        assert ranked[0][0] == 0
        assert ranked[0][1] == pytest.approx(1.0)
        assert ranked[1][0] == 2

    def test_top_k_validates_k(self, figure2_documents):
        from repro.core.similarity import SimilarityEstimator
        from repro.xmltree.corpus import DocumentCorpus

        estimator = SimilarityEstimator(DocumentCorpus(figure2_documents))
        with pytest.raises(ValueError):
            estimator.top_k(parse_xpath("/a"), [parse_xpath("/a")], k=0)
