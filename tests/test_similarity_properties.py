"""Property-based sweep over the Section 4 proximity metrics.

All properties are checked against randomly drawn corpora *and* randomly
drawn tree patterns (the shared small tag alphabet keeps collisions —
hence nonzero selectivities — likely):

* every metric stays inside [0, 1];
* M2 and M3 are exactly symmetric in their arguments;
* ``M3(p, q) <= M1(p, q)`` (the Jaccard union dominates either marginal);
* a pattern with nonzero selectivity is *exactly* perfectly similar to
  itself under every metric;
* the :class:`SimilarityMatrix` engine agrees with direct metric
  evaluation while reaching the provider at most once per pair.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.similarity import (
    METRICS,
    SimilarityMatrix,
    m1_conditional,
    m2_mean_conditional,
    m3_joint_over_union,
)
from repro.xmltree.corpus import DocumentCorpus
from tests.strategies import tree_patterns
from tests.test_selectivity_properties import corpora


class TestMetricRange:
    @settings(max_examples=100, deadline=None)
    @given(corpora(), tree_patterns(), tree_patterns())
    def test_all_metrics_within_unit_interval(self, docs, p, q):
        corpus = DocumentCorpus(docs)
        for name, metric in METRICS.items():
            value = metric(corpus, p, q)
            assert 0.0 <= value <= 1.0, (name, value)


class TestSymmetry:
    @settings(max_examples=100, deadline=None)
    @given(corpora(), tree_patterns(), tree_patterns())
    def test_m2_exactly_symmetric(self, docs, p, q):
        corpus = DocumentCorpus(docs)
        assert m2_mean_conditional(corpus, p, q) == m2_mean_conditional(
            corpus, q, p
        )

    @settings(max_examples=100, deadline=None)
    @given(corpora(), tree_patterns(), tree_patterns())
    def test_m3_exactly_symmetric(self, docs, p, q):
        corpus = DocumentCorpus(docs)
        assert m3_joint_over_union(corpus, p, q) == m3_joint_over_union(
            corpus, q, p
        )


class TestOrdering:
    @settings(max_examples=100, deadline=None)
    @given(corpora(), tree_patterns(), tree_patterns())
    def test_m3_never_exceeds_m1(self, docs, p, q):
        # P(p ∨ q) >= P(q), so joint/union <= joint/P(q).  The union is
        # computed by inclusion-exclusion, whose rounding can nudge the
        # denominator below P(q) by an ulp — hence the tiny tolerance.
        corpus = DocumentCorpus(docs)
        m1 = m1_conditional(corpus, p, q)
        m3 = m3_joint_over_union(corpus, p, q)
        assert m3 <= m1 + 1e-12


class TestSelfSimilarity:
    @settings(max_examples=100, deadline=None)
    @given(corpora(), tree_patterns())
    def test_nonzero_selectivity_patterns_are_self_similar(self, docs, p):
        corpus = DocumentCorpus(docs)
        if corpus.selectivity(p) > 0.0:
            for name, metric in METRICS.items():
                assert metric(corpus, p, p) == 1.0, name
        else:
            for name, metric in METRICS.items():
                assert metric(corpus, p, p) == 0.0, name


class TestMatrixAgreement:
    @settings(max_examples=50, deadline=None)
    @given(corpora(), tree_patterns(), tree_patterns(), tree_patterns())
    def test_matrix_matches_direct_evaluation(self, docs, p, q, r):
        corpus = DocumentCorpus(docs)
        patterns = [p, q, r]
        for name, metric in METRICS.items():
            engine = SimilarityMatrix(corpus, patterns, metric=name)
            values = engine.values
            for i in range(3):
                for j in range(3):
                    assert values[i][j] == metric(
                        corpus, patterns[i], patterns[j]
                    ), (name, i, j)

    @settings(max_examples=50, deadline=None)
    @given(corpora(), tree_patterns(), tree_patterns())
    def test_matrix_never_recomputes_joint_pairs(self, docs, p, q):
        corpus = DocumentCorpus(docs)
        calls: dict[frozenset, int] = {}

        class Counting:
            def selectivity(self, pattern):
                return corpus.selectivity(pattern)

            def joint_selectivity(self, a, b):
                key = frozenset((a, b))
                calls[key] = calls.get(key, 0) + 1
                return corpus.joint_selectivity(a, b)

        engine = SimilarityMatrix(Counting(), [p, q], metric="M3")
        engine.values
        engine.similarity(p, q)
        engine.similarity(q, p)
        engine.top_k(0, 1)
        assert all(count == 1 for count in calls.values()), calls
