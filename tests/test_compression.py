"""Compression driver: reaching target ratios, operator ordering, reports."""

import pytest

from repro.core.pattern_parser import parse_xpath
from repro.core.selectivity import SelectivityEstimator
from repro.synopsis.compression import compress_to_ratio, compress_to_size
from repro.synopsis.size import measure
from repro.synopsis.synopsis import DocumentSynopsis
from repro.xmltree.tree import XMLTree


def small_corpus_synopsis(mode="hashes", capacity=50, n_docs=40, seed=0):
    """A synopsis with some structure worth compressing."""
    synopsis = DocumentSynopsis(mode=mode, capacity=capacity, seed=seed)
    specs = [
        ("a", [("b", [("e", ["k"])]), ("c", [("f", ["o"])])]),
        ("a", [("b", [("e", ["k", "m"])])]),
        ("a", [("d", [("e", ["m"]), "p"])]),
        ("a", [("c", [("f", ["o"]), ("h", ["n"])])]),
    ]
    for doc_id in range(n_docs):
        spec = specs[doc_id % len(specs)]
        synopsis.insert_document(XMLTree.from_nested(spec, doc_id=doc_id))
    return synopsis


class TestCompressToRatio:
    def test_invalid_alpha(self):
        synopsis = small_corpus_synopsis()
        with pytest.raises(ValueError):
            compress_to_ratio(synopsis, 0.0)
        with pytest.raises(ValueError):
            compress_to_ratio(synopsis, 1.5)

    def test_alpha_one_is_lossless_only(self):
        synopsis = small_corpus_synopsis()
        reference = small_corpus_synopsis()
        report = compress_to_ratio(synopsis, 1.0)
        assert report.final.total <= report.initial.total
        assert report.deletions == 0
        assert report.merges == 0
        # Lossless folds must not change estimates.
        est = SelectivityEstimator(synopsis)
        ref = SelectivityEstimator(reference)
        for expression in ("/a/b", "/a/b/e/k", "/a[b][c]", "//f/o"):
            pattern = parse_xpath(expression)
            assert est.selectivity(pattern) == pytest.approx(
                ref.selectivity(pattern)
            ), expression

    @pytest.mark.parametrize("alpha", [0.8, 0.5, 0.3])
    def test_reaches_target(self, alpha):
        synopsis = small_corpus_synopsis()
        report = compress_to_ratio(synopsis, alpha)
        assert report.reached_target
        assert measure(synopsis).total <= int(report.initial.total * alpha)

    def test_achieved_ratio_consistent(self):
        synopsis = small_corpus_synopsis()
        report = compress_to_ratio(synopsis, 0.5)
        assert report.achieved_ratio == pytest.approx(
            report.final.total / report.initial.total
        )

    def test_operations_counted(self):
        synopsis = small_corpus_synopsis()
        report = compress_to_ratio(synopsis, 0.3)
        assert report.folds + report.deletions + report.merges > 0

    def test_estimation_still_valid_after_heavy_compression(self):
        synopsis = small_corpus_synopsis()
        compress_to_ratio(synopsis, 0.25)
        estimator = SelectivityEstimator(synopsis)
        for expression in ("/a", "/a/b", "/a[b][c]", "//e", "//f/o"):
            value = estimator.selectivity(parse_xpath(expression))
            assert 0.0 <= value <= 1.0, expression

    def test_str_report(self):
        synopsis = small_corpus_synopsis()
        report = compress_to_ratio(synopsis, 0.5)
        text = str(report)
        assert "alpha" in text
        assert "folds" in text

    def test_counters_mode_compression(self):
        synopsis = small_corpus_synopsis(mode="counters")
        report = compress_to_ratio(synopsis, 0.5)
        assert report.reached_target

    def test_sets_mode_compression(self):
        synopsis = small_corpus_synopsis(mode="sets", capacity=100)
        report = compress_to_ratio(synopsis, 0.5)
        assert report.reached_target


class TestCompressToSize:
    def test_absolute_budget(self):
        synopsis = small_corpus_synopsis()
        target = measure(synopsis).total // 2
        report = compress_to_size(synopsis, target_total=target)
        assert measure(synopsis).total <= target
        assert report.target_total == target

    def test_unreachable_target_noted(self):
        synopsis = small_corpus_synopsis()
        report = compress_to_size(synopsis, target_total=0)
        assert not report.reached_target
        assert report.notes

    def test_error_grows_as_alpha_shrinks(self):
        """More compression should not *improve* accuracy on a branching
        pattern whose truth requires correlations (monotonicity is not
        strict, so compare the extremes)."""
        exact = SelectivityEstimator(small_corpus_synopsis())
        pattern = parse_xpath("/a[b/e/k][c/f/o]")
        baseline = exact.selectivity(pattern)

        lightly = small_corpus_synopsis()
        compress_to_ratio(lightly, 0.9)
        heavily = small_corpus_synopsis()
        compress_to_ratio(heavily, 0.25)
        light_err = abs(
            SelectivityEstimator(lightly).selectivity(pattern) - baseline
        )
        heavy_err = abs(
            SelectivityEstimator(heavily).selectivity(pattern) - baseline
        )
        assert heavy_err >= light_err - 1e-9
