"""Property suite pinning the candidate subsystem to the exact oracle.

The headline guarantees of the LSH candidate-generation PR:

* the **degenerate** LSH configuration (one band, one row, constant
  signature — every pair collides) reproduces exact clustering
  bit-for-bit, for both leader and agglomerative linkage;
* :class:`~repro.core.candidates.ExactCandidates`-gated clustering is
  identical to the un-gated historical code path;
* :class:`~repro.core.candidates.LSHCandidates` maintained **under
  churn** (any interleaving of adds and removes) ends in exactly the
  state of a fresh build over the survivors;
* the sharded exact oracle emits exactly the sequential oracle's pairs.

Similarity here is label-set Jaccard — deterministic, cheap, and enough
to exercise every tie-break the clusterings make.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import (
    ExactCandidates,
    LSHCandidates,
    ShardedExactCandidates,
)
from repro.routing.community import agglomerative_clustering, leader_clustering
from tests.strategies import property_max_examples, tree_patterns


def label_jaccard(p, q) -> float:
    """Deterministic toy similarity: Jaccard over plain-tag label sets."""
    tags_p, tags_q = p.tags(), q.tags()
    if not tags_p and not tags_q:
        return 1.0
    union = tags_p | tags_q
    return len(tags_p & tags_q) / len(union)


def shape(communities):
    return [
        (community.leader, sorted(community.members))
        for community in communities
    ]


pattern_lists = st.lists(tree_patterns(), min_size=0, max_size=10)


class TestDegenerateLshEqualsExact:
    @settings(max_examples=property_max_examples(40), deadline=None)
    @given(
        patterns=pattern_lists,
        threshold=st.sampled_from((0.0, 0.3, 0.5, 0.8, 1.0)),
    )
    def test_leader_clustering(self, patterns, threshold):
        exact = leader_clustering(patterns, label_jaccard, threshold)
        degenerate = leader_clustering(
            patterns,
            label_jaccard,
            threshold,
            candidates=LSHCandidates.degenerate(),
        )
        assert shape(degenerate) == shape(exact)

    @settings(max_examples=property_max_examples(25), deadline=None)
    @given(
        patterns=pattern_lists,
        n_communities=st.integers(min_value=1, max_value=4),
        min_similarity=st.sampled_from((0.0, 0.4)),
    )
    def test_agglomerative_clustering(
        self, patterns, n_communities, min_similarity
    ):
        exact = agglomerative_clustering(
            patterns, label_jaccard, n_communities, min_similarity
        )
        degenerate = agglomerative_clustering(
            patterns,
            label_jaccard,
            n_communities,
            min_similarity,
            candidates=LSHCandidates.degenerate(),
        )
        assert shape(degenerate) == shape(exact)


class TestExactGateIsIdentity:
    @settings(max_examples=property_max_examples(40), deadline=None)
    @given(
        patterns=pattern_lists,
        threshold=st.sampled_from((0.0, 0.3, 0.5, 0.8, 1.0)),
    )
    def test_leader_clustering(self, patterns, threshold):
        ungated = leader_clustering(patterns, label_jaccard, threshold)
        gated = leader_clustering(
            patterns, label_jaccard, threshold, candidates=ExactCandidates()
        )
        assert shape(gated) == shape(ungated)

    @settings(max_examples=property_max_examples(25), deadline=None)
    @given(
        patterns=pattern_lists,
        n_communities=st.integers(min_value=1, max_value=4),
    )
    def test_agglomerative_clustering(self, patterns, n_communities):
        ungated = agglomerative_clustering(
            patterns, label_jaccard, n_communities
        )
        gated = agglomerative_clustering(
            patterns,
            label_jaccard,
            n_communities,
            candidates=ExactCandidates(),
        )
        assert shape(gated) == shape(ungated)


class TestLshChurnEqualsRebuild:
    @settings(max_examples=property_max_examples(40), deadline=None)
    @given(
        patterns=st.lists(tree_patterns(), min_size=1, max_size=12),
        removals=st.sets(st.integers(min_value=0, max_value=11)),
        data=st.data(),
    )
    def test_interleaved_churn(self, patterns, removals, data):
        template = LSHCandidates(bands=6, rows=2, seed=1)
        churned = template.spawn()
        # Interleave: every pattern is added; a chosen subset is removed
        # at a random later point (possibly after further adds).
        pending = []
        for key, pattern in enumerate(patterns):
            churned.add(key, pattern)
            if key in removals:
                pending.append(key)
            while pending and data.draw(st.booleans()):
                churned.discard(pending.pop(0))
        for key in pending:
            churned.discard(key)

        survivors = [
            (key, pattern)
            for key, pattern in enumerate(patterns)
            if key not in removals
        ]
        fresh = template.spawn()
        for key, pattern in survivors:
            fresh.add(key, pattern)

        assert len(churned) == len(fresh)
        assert churned._buckets == fresh._buckets
        assert set(map(frozenset, churned.pairs())) == set(
            map(frozenset, fresh.pairs())
        )
        for _, pattern in survivors:
            assert churned.candidates_of(pattern) == fresh.candidates_of(
                pattern
            )

    @settings(max_examples=property_max_examples(25), deadline=None)
    @given(patterns=st.lists(tree_patterns(), min_size=1, max_size=8))
    def test_drain_and_refill(self, patterns):
        generator = LSHCandidates(bands=4, rows=2, seed=3)
        for key, pattern in enumerate(patterns):
            generator.add(key, pattern)
        for key in range(len(patterns)):
            assert generator.discard(key) is True
        assert len(generator) == 0
        assert generator._buckets == {}
        assert generator.pairs() == []
        # The drained generator accepts the population again unchanged.
        for key, pattern in enumerate(patterns):
            generator.add(key, pattern)
        fresh = generator.spawn()
        for key, pattern in enumerate(patterns):
            fresh.add(key, pattern)
        assert generator._buckets == fresh._buckets


class TestShardedEqualsSequential:
    @settings(max_examples=property_max_examples(15), deadline=None)
    @given(
        patterns=st.lists(tree_patterns(), min_size=0, max_size=12),
        prefilter=st.booleans(),
    )
    def test_pairs_identical(self, patterns, prefilter):
        sharded = ShardedExactCandidates(
            workers=2, prefilter_labels=prefilter, min_parallel=2
        )
        sequential = ExactCandidates(prefilter_labels=prefilter)
        for key, pattern in enumerate(patterns):
            sharded.add(key, pattern)
            sequential.add(key, pattern)
        assert sharded.pairs() == sequential.pairs()
