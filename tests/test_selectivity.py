"""Selectivity estimation (Algorithms 1 and 2) over the Figure 2 synopsis,
including the Section 3.2 counter-failure examples."""

import pytest

from repro.core.pattern_parser import parse_xpath
from repro.core.selectivity import SelectivityEstimator
from repro.synopsis.synopsis import DocumentSynopsis


@pytest.fixture()
def sets_estimator(figure2_synopsis_factory):
    return SelectivityEstimator(figure2_synopsis_factory(mode="sets"))


@pytest.fixture()
def counter_estimator(figure2_synopsis_factory):
    return SelectivityEstimator(figure2_synopsis_factory(mode="counters"))


@pytest.fixture()
def hashes_estimator(figure2_synopsis_factory):
    return SelectivityEstimator(
        figure2_synopsis_factory(mode="hashes", capacity=100)
    )


class TestSimplePaths:
    """Path frequencies read straight off Figure 2."""

    @pytest.mark.parametrize(
        "expression,expected",
        [
            ("/a", 1.0),
            ("/a/b", 3 / 6),
            ("/a/c", 2 / 6),
            ("/a/d", 3 / 6),
            ("/a/b/e", 3 / 6),
            ("/a/b/e/k", 3 / 6),
            ("/a/b/e/m", 2 / 6),
            ("/a/c/h", 1 / 6),
            ("/a/d/q", 1 / 6),
            ("/a/z", 0.0),
            ("/z", 0.0),
        ],
    )
    def test_sets_exact(self, sets_estimator, expression, expected):
        assert sets_estimator.selectivity(parse_xpath(expression)) == pytest.approx(
            expected
        )

    @pytest.mark.parametrize(
        "expression,expected",
        [("/a", 1.0), ("/a/b", 0.5), ("/a/c", 2 / 6), ("/a/b/h", 0.0)],
    )
    def test_counters_single_path(self, counter_estimator, expression, expected):
        # Single paths need no independence assumption: counters are exact.
        assert counter_estimator.selectivity(
            parse_xpath(expression)
        ) == pytest.approx(expected)

    def test_hashes_small_corpus_exact(self, hashes_estimator):
        assert hashes_estimator.selectivity(parse_xpath("/a/b")) == pytest.approx(
            0.5
        )


class TestBranchingCorrelations:
    """The Section 3.2 examples: correlation vs the independence assumption."""

    def test_mutually_exclusive_branches_sets(self, sets_estimator):
        # b and d never co-occur: correct probability 0.
        assert sets_estimator.selectivity(parse_xpath("/a[b][d]")) == 0.0

    def test_mutually_exclusive_branches_counters(self, counter_estimator):
        # Counters estimate P(a/b) * P(a/d) = 1/2 * 1/2 = 1/4.
        assert counter_estimator.selectivity(
            parse_xpath("/a[b][d]")
        ) == pytest.approx(0.25)

    def test_cooccurring_branches_sets(self, sets_estimator):
        # f and o always co-occur below c (docs 3 and 4): correct value 1/3.
        assert sets_estimator.selectivity(
            parse_xpath("/a[c/f][c/f/o]")
        ) == pytest.approx(2 / 6)

    def test_cooccurring_branches_counters(self, counter_estimator):
        # Counters: P(a/c/f) * P(a/c/f/o) = 1/3 * 1/3 = 1/9 (paper's 1/9).
        assert counter_estimator.selectivity(
            parse_xpath("/a[c/f][c/f/o]")
        ) == pytest.approx(1 / 9)

    def test_hashes_capture_correlation(self, hashes_estimator):
        assert hashes_estimator.selectivity(parse_xpath("/a[b][d]")) == 0.0


class TestWildcardAndDescendant:
    def test_wildcard_step(self, sets_estimator):
        # /a/*/e: b, c and d all have e children -> every document.
        assert sets_estimator.selectivity(parse_xpath("/a/*/e")) == pytest.approx(
            1.0
        )

    def test_wildcard_leaf(self, sets_estimator):
        assert sets_estimator.selectivity(parse_xpath("/a/*")) == pytest.approx(1.0)

    def test_root_wildcard(self, sets_estimator):
        assert sets_estimator.selectivity(parse_xpath("/*")) == pytest.approx(1.0)

    def test_descendant_leaf(self, sets_estimator):
        # //q appears only in document 4.
        assert sets_estimator.selectivity(parse_xpath("//q")) == pytest.approx(
            1 / 6
        )

    def test_descendant_path(self, sets_estimator):
        # //f/o : f with child o -> documents 3, 4.
        assert sets_estimator.selectivity(parse_xpath("//f/o")) == pytest.approx(
            2 / 6
        )

    def test_descendant_zero_length(self, sets_estimator):
        # /a//b: the 'b' is a direct child of 'a' (zero-length //).
        assert sets_estimator.selectivity(parse_xpath("/a//b")) == pytest.approx(
            3 / 6
        )

    def test_descendant_with_branch(self, sets_estimator):
        # //e[k][m]: an e-node with both k and m below -> docs 1,2 (b/e) and 4 (d/e).
        assert sets_estimator.selectivity(
            parse_xpath("//e[k][m]")
        ) == pytest.approx(3 / 6)

    def test_root_constraints_conjunction(self, sets_estimator):
        # /.[//h][//q]: h occurs in doc 3, q in doc 4; never together.
        assert sets_estimator.selectivity(
            parse_xpath("/.[.//h][.//q]")
        ) == pytest.approx(0.0)

    def test_root_constraints_cooccur(self, sets_estimator):
        # /.[//o][//q]: o in {3,4}, q in {4} -> doc 4.
        assert sets_estimator.selectivity(
            parse_xpath("/.[.//o][.//q]")
        ) == pytest.approx(1 / 6)


class TestEstimatorMechanics:
    def test_empty_synopsis_returns_zero(self):
        estimator = SelectivityEstimator(DocumentSynopsis(mode="sets"))
        assert estimator.selectivity(parse_xpath("/a")) == 0.0

    def test_empty_counter_synopsis(self):
        estimator = SelectivityEstimator(DocumentSynopsis(mode="counters"))
        assert estimator.selectivity(parse_xpath("/a")) == 0.0

    def test_results_cached(self, sets_estimator):
        pattern = parse_xpath("/a/b")
        first = sets_estimator.selectivity(pattern)
        assert sets_estimator.selectivity(pattern) == first
        assert pattern in sets_estimator._selectivity_cache

    def test_clear_cache(self, sets_estimator):
        sets_estimator.selectivity(parse_xpath("/a"))
        sets_estimator.clear_cache()
        assert not sets_estimator._selectivity_cache

    def test_estimated_count(self, sets_estimator):
        assert sets_estimator.estimated_count(parse_xpath("/a/b")) == pytest.approx(
            3.0
        )

    def test_joint_selectivity(self, sets_estimator):
        joint = sets_estimator.joint_selectivity(
            parse_xpath("//o"), parse_xpath("//q")
        )
        assert joint == pytest.approx(1 / 6)

    def test_matching_view_sets(self, sets_estimator):
        view = sets_estimator.matching_view(parse_xpath("/a/b"))
        assert set(view.ids) == {1, 2, 3}

    def test_matching_view_counters_raises(self, counter_estimator):
        with pytest.raises(TypeError):
            counter_estimator.matching_view(parse_xpath("/a"))

    def test_probability_clamped(self, sets_estimator):
        value = sets_estimator.selectivity(parse_xpath("//e"))
        assert 0.0 <= value <= 1.0


class TestCounterDescendants:
    def test_descendant_leaf(self, counter_estimator):
        assert counter_estimator.selectivity(parse_xpath("//q")) == pytest.approx(
            1 / 6
        )

    def test_descendant_max_over_depths(self, counter_estimator):
        # //e: max over the three e-nodes' counts = 3 (b/e and d/e).
        assert counter_estimator.selectivity(parse_xpath("//e")) == pytest.approx(
            3 / 6
        )

    def test_descendant_and_branch(self, counter_estimator):
        value = counter_estimator.selectivity(parse_xpath("//e[k][m]"))
        assert 0.0 <= value <= 1.0
