"""reprolint: the analyzer itself — rules, suppressions, CLI contract.

Every rule gets a violating fixture *and* a clean fixture, written in
this codebase's own idioms, so a rule gone vacuous (matching nothing) or
over-eager (matching the sanctioned form) fails here before it rots in
CI.  Fixtures are materialised under ``tmp_path`` mirroring the real
layout (``src/repro/...``) because most rules are path-scoped.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    CODE_BAD_SUPPRESSION,
    CODE_UNUSED_SUPPRESSION,
    AnalysisError,
    AnalysisReport,
    DocstringRule,
    EngineIsolationRule,
    ExportConsistencyRule,
    FrozenModelRule,
    ProcessHashRule,
    UnorderedIterationRule,
    UnseededRandomRule,
    WallClockRule,
    default_rules,
    iter_python_files,
    render_json,
    run_analysis,
)
from repro.analysis.__main__ import main as lint_main


def write_module(root: Path, relpath: str, text: str) -> Path:
    """Materialise *text* at ``root/relpath``, creating parents."""
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


def lint(root: Path, relpath: str, text: str, rules=None):
    """Write one fixture module and run reprolint over it."""
    path = write_module(root, relpath, text)
    report = run_analysis([path], rules or default_rules(), root=root)
    return report


def codes(report: AnalysisReport) -> list[str]:
    """The active violation codes, in report order."""
    return [violation.rule for violation in report.violations]


# ---------------------------------------------------------------------------
# RL001 unseeded randomness
# ---------------------------------------------------------------------------


class TestUnseededRandom:
    def test_module_level_random_call_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/generators/bad.py",
            '"""doc."""\nimport random\n\nvalue = random.random()\n',
            rules=[UnseededRandomRule()],
        )
        assert codes(report) == ["RL001"]

    def test_unseeded_random_constructor_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/generators/bad2.py",
            '"""doc."""\nimport random\n\nrng = random.Random()\n',
            rules=[UnseededRandomRule()],
        )
        assert codes(report) == ["RL001"]

    def test_from_import_of_helpers_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/generators/bad3.py",
            '"""doc."""\nfrom random import shuffle\n',
            rules=[UnseededRandomRule()],
        )
        assert codes(report) == ["RL001"]

    def test_injected_seeded_rng_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/generators/good.py",
            '"""doc."""\n'
            "import random\n\n\n"
            "def make(seed, rng=None):\n"
            '    """doc."""\n'
            "    return rng if rng is not None else random.Random(seed)\n",
            rules=[UnseededRandomRule()],
        )
        assert report.ok

    def test_out_of_scope_path_ignored(self, tmp_path):
        report = lint(
            tmp_path,
            "benchmarks/bench_x.py",
            '"""doc."""\nimport random\n\nvalue = random.random()\n',
            rules=[UnseededRandomRule()],
        )
        assert report.ok


# ---------------------------------------------------------------------------
# RL002 wall clock
# ---------------------------------------------------------------------------


class TestWallClock:
    def test_perf_counter_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/routing/bad_clock.py",
            '"""doc."""\nimport time\n\nstarted = time.perf_counter()\n',
            rules=[WallClockRule()],
        )
        assert codes(report) == ["RL002"]

    def test_datetime_now_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/routing/bad_clock2.py",
            '"""doc."""\nimport datetime\n\nstamp = datetime.datetime.now()\n',
            rules=[WallClockRule()],
        )
        assert codes(report) == ["RL002"]

    def test_from_time_import_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/routing/bad_clock3.py",
            '"""doc."""\nfrom time import monotonic\n',
            rules=[WallClockRule()],
        )
        assert codes(report) == ["RL002"]

    def test_benchmarks_exempt(self, tmp_path):
        report = lint(
            tmp_path,
            "benchmarks/bench_clock.py",
            '"""doc."""\nimport time\n\nstarted = time.perf_counter()\n',
            rules=[WallClockRule()],
        )
        assert report.ok

    def test_simulated_time_parameter_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/routing/good_clock.py",
            '"""doc."""\n\n\n'
            "def service_until(now, duration):\n"
            '    """doc."""\n'
            "    return now + duration\n",
            rules=[WallClockRule()],
        )
        assert report.ok


# ---------------------------------------------------------------------------
# RL003 process-dependent hash/id
# ---------------------------------------------------------------------------


class TestProcessHash:
    def test_hash_in_bucket_key_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/core/bad_hash.py",
            '"""doc."""\n\n\n'
            "def bucket_key(token, band):\n"
            '    """doc."""\n'
            "    return (band, hash(token) % 1024)\n",
            rules=[ProcessHashRule()],
        )
        assert codes(report) == ["RL003"]

    def test_id_key_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/core/bad_id.py",
            '"""doc."""\n\nregistry = {}\n\n\n'
            "def register(node):\n"
            '    """doc."""\n'
            "    registry[id(node)] = node\n",
            rules=[ProcessHashRule()],
        )
        assert codes(report) == ["RL003"]

    def test_dunder_hash_exempt(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/core/good_hash.py",
            '"""doc."""\n\n\n'
            "class Pattern:\n"
            '    """doc."""\n\n'
            "    def __hash__(self):\n"
            "        return hash(self.spine)\n",
            rules=[ProcessHashRule()],
        )
        assert report.ok

    def test_blake2b_digest_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/core/good_digest.py",
            '"""doc."""\nimport hashlib\n\n\n'
            "def stable_key(token):\n"
            '    """doc."""\n'
            "    return hashlib.blake2b(token.encode(), digest_size=8).digest()\n",
            rules=[ProcessHashRule()],
        )
        assert report.ok


# ---------------------------------------------------------------------------
# RL004 unordered set iteration
# ---------------------------------------------------------------------------


class TestUnorderedIteration:
    def test_list_built_from_set_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/routing/bad_iter.py",
            '"""doc."""\n\n\n'
            "def destinations(neighbors):\n"
            '    """doc."""\n'
            "    pending = set(neighbors)\n"
            "    return list(pending)\n",
            rules=[UnorderedIterationRule()],
        )
        assert codes(report) == ["RL004"]

    def test_for_loop_over_set_attr_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/routing/bad_iter2.py",
            '"""doc."""\n\n\n'
            "class Node:\n"
            '    """doc."""\n\n'
            "    def __init__(self):\n"
            "        self.members = set()\n\n"
            "    def emit(self, out):\n"
            '        """doc."""\n'
            "        for member in self.members:\n"
            "            out.append(member)\n",
            rules=[UnorderedIterationRule()],
        )
        assert codes(report) == ["RL004"]

    def test_keyed_min_over_set_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/routing/bad_iter3.py",
            '"""doc."""\n\n\n'
            "def leader(members, weight):\n"
            '    """doc."""\n'
            "    candidates = set(members)\n"
            "    return min(candidates, key=weight)\n",
            rules=[UnorderedIterationRule()],
        )
        assert codes(report) == ["RL004"]

    def test_sorted_iteration_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/routing/good_iter.py",
            '"""doc."""\n\n\n'
            "def destinations(neighbors):\n"
            '    """doc."""\n'
            "    pending = set(neighbors)\n"
            "    return sorted(pending)\n",
            rules=[UnorderedIterationRule()],
        )
        assert report.ok

    def test_order_free_reductions_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/routing/good_iter2.py",
            '"""doc."""\n\n\n'
            "def summarise(members):\n"
            '    """doc."""\n'
            "    pending = set(members)\n"
            "    total = sum(m for m in pending)\n"
            "    hit = any(m > 3 for m in pending)\n"
            "    doubled = {2 * m for m in pending}\n"
            "    return total, hit, doubled\n",
            rules=[UnorderedIterationRule()],
        )
        assert report.ok

    def test_outside_routing_ignored(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/core/free_iter.py",
            '"""doc."""\n\n\n'
            "def anything(values):\n"
            '    """doc."""\n'
            "    return list(set(values))\n",
            rules=[UnorderedIterationRule()],
        )
        assert report.ok


# ---------------------------------------------------------------------------
# RL005 frozen models
# ---------------------------------------------------------------------------


class TestFrozenModel:
    def test_mutable_scheduling_policy_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/routing/bad_policy.py",
            '"""doc."""\nfrom repro.routing.policy import SchedulingPolicy\n\n\n'
            "class Greedy(SchedulingPolicy):\n"
            '    """doc."""\n\n'
            "    def select(self, queue, now):\n"
            '        """doc."""\n'
            "        return 0\n",
            rules=[FrozenModelRule()],
        )
        assert codes(report) == ["RL005"]

    def test_frozen_policy_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/routing/good_policy.py",
            '"""doc."""\nfrom dataclasses import dataclass\n\n'
            "from repro.routing.policy import SchedulingPolicy\n\n\n"
            "@dataclass(frozen=True)\n"
            "class Greedy(SchedulingPolicy):\n"
            '    """doc."""\n\n'
            "    def select(self, queue, now):\n"
            '        """doc."""\n'
            "        return 0\n",
            rules=[FrozenModelRule()],
        )
        assert report.ok

    def test_real_policy_module_is_clean(self):
        src_root = Path(__file__).resolve().parent.parent
        report = run_analysis(
            [src_root / "src/repro/routing/policy.py"],
            [FrozenModelRule()],
            root=src_root,
        )
        assert report.ok


# ---------------------------------------------------------------------------
# RL006 engine isolation
# ---------------------------------------------------------------------------


class TestEngineIsolation:
    def test_engine_import_in_trie_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/routing/trie.py",
            '"""doc."""\nfrom repro.routing.engine import DeliveryEngine\n',
            rules=[EngineIsolationRule()],
        )
        assert "RL006" in codes(report)

    def test_engine_reference_in_table_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/routing/table.py",
            '"""doc."""\nimport repro.routing as routing\n\n\n'
            "def peek(engine):\n"
            '    """doc."""\n'
            "    return routing.DeliveryEngine\n",
            rules=[EngineIsolationRule()],
        )
        assert "RL006" in codes(report)

    def test_engine_module_itself_unscoped(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/routing/engine.py",
            '"""doc."""\n\n\nclass DeliveryEngine:\n    """doc."""\n',
            rules=[EngineIsolationRule()],
        )
        assert report.ok


# ---------------------------------------------------------------------------
# RL007 export consistency
# ---------------------------------------------------------------------------


class TestExportConsistency:
    def test_unbound_all_entry_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/fake/__init__.py",
            '"""doc."""\n\n__all__ = ["missing"]\n',
            rules=[ExportConsistencyRule()],
        )
        assert codes(report) == ["RL007"]

    def test_unlisted_public_reexport_flagged(self, tmp_path):
        write_module(tmp_path, "src/repro/fake2/mod.py", '"""doc."""\nvalue = 1\n')
        report = lint(
            tmp_path,
            "src/repro/fake2/__init__.py",
            '"""doc."""\nfrom repro.fake2.mod import value\n\n__all__ = []\n',
            rules=[ExportConsistencyRule()],
        )
        assert codes(report) == ["RL007"]

    def test_missing_all_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/fake3/__init__.py",
            '"""doc."""\n',
            rules=[ExportConsistencyRule()],
        )
        assert codes(report) == ["RL007"]

    def test_consistent_init_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/fake4/__init__.py",
            '"""doc."""\nfrom repro.fake4.mod import value\n\n'
            '__all__ = ["value"]\n',
            rules=[ExportConsistencyRule()],
        )
        assert report.ok

    def test_non_init_modules_ignored(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/fake5/mod.py",
            '"""doc."""\nvalue = 1\n',
            rules=[ExportConsistencyRule()],
        )
        assert report.ok


# ---------------------------------------------------------------------------
# RL008 docstrings
# ---------------------------------------------------------------------------


class TestDocstrings:
    def test_missing_docstrings_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/core/bare.py",
            "class Thing:\n    def act(self):\n        return 1\n",
            rules=[DocstringRule()],
        )
        assert codes(report) == ["RL008", "RL008", "RL008"]

    def test_private_and_dunder_exempt(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/core/documented.py",
            '"""doc."""\n\n\n'
            "class Thing:\n"
            '    """doc."""\n\n'
            "    def __repr__(self):\n"
            "        return 'Thing()'\n\n"
            "    def _helper(self):\n"
            "        return 1\n",
            rules=[DocstringRule()],
        )
        assert report.ok


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


class TestSuppressions:
    def test_inline_suppression_with_justification(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/core/supp.py",
            '"""doc."""\nimport random\n\n'
            "value = random.random()  # reprolint: disable=RL001 -- fixture\n",
            rules=None,
        )
        assert report.ok
        assert len(report.suppressed) == 1
        assert report.suppressed[0].rule == "RL001"
        assert report.suppressed[0].justification == "fixture"

    def test_own_line_suppression_covers_next_line(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/core/supp2.py",
            '"""doc."""\nimport random\n\n'
            "# reprolint: disable=RL001 -- fixture\n"
            "value = random.random()\n",
        )
        assert report.ok
        assert len(report.suppressed) == 1

    def test_file_level_suppression(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/core/supp3.py",
            '"""doc."""\n'
            "# reprolint: disable-file=RL001 -- fixture module\n"
            "import random\n\n"
            "a = random.random()\nb = random.random()\n",
        )
        assert report.ok
        assert len(report.suppressed) == 2

    def test_suppression_without_justification_rejected(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/core/supp4.py",
            '"""doc."""\nimport random\n\n'
            "value = random.random()  # reprolint: disable=RL001\n",
        )
        # The pragma is malformed AND the violation stays active.
        assert CODE_BAD_SUPPRESSION in codes(report)
        assert "RL001" in codes(report)

    def test_unused_suppression_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/core/supp5.py",
            '"""doc."""\n\n'
            "value = 1  # reprolint: disable=RL001 -- stale pragma\n",
        )
        assert codes(report) == [CODE_UNUSED_SUPPRESSION]

    def test_suppression_for_other_rule_does_not_silence(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/core/supp6.py",
            '"""doc."""\nimport random\n\n'
            "value = random.random()  # reprolint: disable=RL002 -- wrong code\n",
        )
        assert "RL001" in codes(report)


# ---------------------------------------------------------------------------
# Report serialisation and engine plumbing
# ---------------------------------------------------------------------------


class TestReporting:
    def test_json_round_trip(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/core/json_fixture.py",
            '"""doc."""\nimport random\n\n'
            "a = random.random()\n"
            "b = random.random()  # reprolint: disable=RL001 -- fixture\n",
        )
        rebuilt = AnalysisReport.from_json(json.loads(render_json(report)))
        assert rebuilt.violations == report.violations
        assert rebuilt.suppressed == report.suppressed
        assert rebuilt.files_checked == report.files_checked
        assert rebuilt.rule_codes == report.rule_codes

    def test_render_is_deterministic_and_sorted(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/core/z_mod.py",
            '"""doc."""\nimport random\n\nvalue = random.random()\n',
        )
        write_module(
            tmp_path,
            "src/repro/core/a_mod.py",
            '"""doc."""\nimport random\n\nvalue = random.random()\n',
        )
        report = run_analysis(
            [tmp_path / "src"], [UnseededRandomRule()], root=tmp_path
        )
        assert [v.path for v in report.violations] == [
            "src/repro/core/a_mod.py",
            "src/repro/core/z_mod.py",
        ]
        assert report.render() == report.render()

    def test_syntax_error_raises_analysis_error(self, tmp_path):
        path = write_module(tmp_path, "src/repro/core/broken.py", "def f(:\n")
        with pytest.raises(AnalysisError):
            run_analysis([path], default_rules(), root=tmp_path)

    def test_missing_path_raises_analysis_error(self, tmp_path):
        with pytest.raises(AnalysisError):
            list(iter_python_files([tmp_path / "nowhere"]))

    def test_iter_skips_hidden_and_pycache(self, tmp_path):
        write_module(tmp_path, "pkg/mod.py", "x = 1\n")
        write_module(tmp_path, "pkg/__pycache__/mod.py", "x = 1\n")
        write_module(tmp_path, "pkg/.hidden/mod.py", "x = 1\n")
        found = [p.name for p in iter_python_files([tmp_path / "pkg"])]
        assert found == ["mod.py"]


# ---------------------------------------------------------------------------
# CLI contract
# ---------------------------------------------------------------------------


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys, monkeypatch):
        write_module(
            tmp_path, "src/repro/core/clean.py", '"""doc."""\nvalue = 1\n'
        )
        monkeypatch.chdir(tmp_path)
        assert lint_main(["src"]) == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_exit_one_on_violation(self, tmp_path, capsys, monkeypatch):
        write_module(
            tmp_path,
            "src/repro/core/dirty.py",
            '"""doc."""\nimport random\n\nvalue = random.random()\n',
        )
        monkeypatch.chdir(tmp_path)
        assert lint_main(["src"]) == 1
        assert "RL001" in capsys.readouterr().out

    def test_exit_two_on_analysis_error(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert lint_main(["nowhere"]) == 2
        assert "error" in capsys.readouterr().err

    def test_json_format(self, tmp_path, capsys, monkeypatch):
        write_module(
            tmp_path,
            "src/repro/core/dirty.py",
            '"""doc."""\nimport random\n\nvalue = random.random()\n',
        )
        monkeypatch.chdir(tmp_path)
        assert lint_main(["src", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["summary"]["by_rule"] == {"RL001": 1}

    def test_rules_filter_and_unknown_code(self, tmp_path, capsys, monkeypatch):
        write_module(
            tmp_path,
            "src/repro/core/dirty.py",
            '"""doc."""\nimport random\n\nvalue = random.random()\n',
        )
        monkeypatch.chdir(tmp_path)
        # Filtered to RL002 the RL001 violation is invisible.
        assert lint_main(["src", "--rules", "RL002"]) == 0
        capsys.readouterr()
        assert lint_main(["src", "--rules", "RL999"]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in (
            "RL001",
            "RL002",
            "RL003",
            "RL004",
            "RL005",
            "RL006",
            "RL007",
            "RL008",
        ):
            assert code in out

    def test_default_rule_set_has_eight_rules(self):
        assert len(default_rules()) == 8


# ---------------------------------------------------------------------------
# The repository itself must be clean (the CI gate, in miniature)
# ---------------------------------------------------------------------------


class TestRepositoryClean:
    def test_src_tree_passes_reprolint(self):
        repo = Path(__file__).resolve().parent.parent
        report = run_analysis([repo / "src"], default_rules(), root=repo)
        assert report.ok, report.render()

    def test_every_suppression_carries_justification(self):
        repo = Path(__file__).resolve().parent.parent
        report = run_analysis([repo / "src"], default_rules(), root=repo)
        assert report.suppressed, "expected documented suppressions in src/"
        for violation in report.suppressed:
            assert violation.justification
