"""Property suite for overload survival: conservation and equivalence.

Pins the overload layer's contract:

* **Conservation** — every document copy is born exactly once (publish
  or forward) and dies exactly once (completion, drop, or NACK), so
  ``offered == completed + dropped + nacked + in-flight`` holds at
  every drain point, under every queue policy × scheduler × topology,
  including mid-simulation broker leaves and batched drains.
* **Byte-identical default** — ``capacity=None`` replays the pre-PR
  engine exactly: a golden stats digest captured on the pre-overload
  engine is pinned below, and an explicit unbounded ``QueuePolicy``
  must equal the default construction field for field.
* **Below-knee equivalence** — a bound the workload never reaches
  changes nothing: stats and delivered sets are identical to the
  unbounded run.
* **Weighted-fair convergence** — under sustained overload, long-run
  per-class completion shares lean to the configured weights.
"""

from __future__ import annotations

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pattern_parser import parse_xpath
from repro.routing.engine import (
    BatchServiceModel,
    ClosedLoopSource,
    DeliveryEngine,
    LinkModel,
    ServiceModel,
)
from repro.routing.overlay import TOPOLOGIES, BrokerOverlay
from repro.routing.policy import (
    OVERFLOW_MODES,
    DeadlineScheduling,
    FifoScheduling,
    PriorityScheduling,
    QueuePolicy,
    WeightedFairScheduling,
)
from repro.xmltree.corpus import DocumentCorpus
from repro.xmltree.parser import parse_xml
from tests.strategies import property_max_examples, tree_patterns
from tests.test_selectivity_properties import corpora

SCHEDULERS = (
    FifoScheduling(),
    PriorityScheduling(),
    PriorityScheduling({0: 4.0, 1: 1.0}, aging=0.5),
    DeadlineScheduling(default_slack=2.0),
    WeightedFairScheduling({0: 3.0, 1: 1.0}),
)


def membership_overlay(topology, n_brokers, patterns):
    overlay = BrokerOverlay.build(topology, n_brokers, seed=5)
    overlay.attach_round_robin(patterns)
    overlay.advertise_subscriptions()
    return overlay


def assert_conserved(stats):
    """The drained conservation ledger, with non-negativity."""
    assert stats.offered_jobs >= 0
    assert stats.completed_jobs >= 0
    assert stats.dropped_jobs >= 0
    assert stats.nacked_jobs >= 0
    assert stats.in_flight_jobs == 0
    assert stats.offered_jobs == (
        stats.completed_jobs + stats.dropped_jobs + stats.nacked_jobs
    )
    assert sum(stats.offered_by_class.values()) == stats.offered_jobs
    assert sum(stats.completed_by_class.values()) == stats.completed_jobs
    assert sum(stats.dropped_by_class.values()) == stats.dropped_jobs
    assert sum(stats.nacked_by_class.values()) == stats.nacked_jobs
    assert sum(stats.dropped_by_broker.values()) == stats.dropped_jobs
    assert 0.0 <= stats.admission_ratio <= 1.0


def stats_digest(stats, delivered):
    """Canonical digest of one run: every stats field that existed
    before the overload layer, plus the delivered sets.

    Computed over the *pre-existing* surface only, so the pinned
    golden value below is comparable across the PR boundary.
    """
    canonical = repr(
        (
            stats.documents,
            stats.deliveries,
            stats.makespan,
            stats.latency_p50,
            stats.latency_p95,
            stats.latency_p99,
            stats.latency_mean,
            stats.latency_max,
            stats.queue_delay_mean,
            stats.queue_delay_p95,
            stats.queue_delay_max,
            sorted(stats.queue_depth_peaks.items()),
            sorted(stats.busy_time.items()),
            stats.match_operations,
            stats.forwards,
            stats.service_batches,
            stats.serviced_documents,
            sorted(stats.latency_by_class.items()),
            sorted((index, sorted(ids)) for index, ids in delivered.items()),
        )
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def legacy_scenario_engine(**engine_kwargs):
    """The fixed pre-PR replay scenario the golden digest was cut on."""
    overlay = BrokerOverlay.chain(3)
    overlay.attach(0, parse_xpath("/a/b"))
    overlay.attach(1, parse_xpath("//b"))
    overlay.attach(2, parse_xpath("/a"))
    overlay.attach(2, parse_xpath("/c"))
    overlay.advertise_subscriptions()
    shapes = (
        "<a><b/></a>",
        "<a><c/></a>",
        "<c/>",
        "<a><b/><c/></a>",
        "<b/>",
        "<a><a><b/></a></a>",
    )
    corpus = DocumentCorpus(
        [parse_xml(shapes[i % len(shapes)], doc_id=i) for i in range(12)]
    )
    engine = DeliveryEngine(
        overlay,
        service=ServiceModel(base=0.3, per_match=0.07),
        links=LinkModel(default=0.6, overrides={(0, 1): 1.1}),
        scheduling=PriorityScheduling(),
        **engine_kwargs,
    )
    engine.publish_corpus(
        corpus,
        rate=1.7,
        arrivals="poisson",
        seed=9,
        classes=(0, 1, 2),
        deadline_slack=12.0,
    )
    return engine


#: sha256 of :func:`stats_digest` over :func:`legacy_scenario_engine`,
#: computed at the commit *before* the overload layer landed.  The
#: default engine must keep replaying this scenario byte-identically.
GOLDEN_LEGACY_DIGEST = (
    "b6e0b3713cfeefca8724c018880310270a79851e5c6f39d15487bbe7864c8f68"
)


class TestByteIdenticalDefault:
    def test_default_engine_replays_the_pre_overload_digest(self):
        engine = legacy_scenario_engine()
        stats = engine.run()
        assert (
            stats_digest(stats, engine.delivered_sets())
            == GOLDEN_LEGACY_DIGEST
        )
        # The run is also clean through the new ledger's eyes.
        assert_conserved(stats)
        assert stats.dropped_jobs == 0
        assert stats.nacked_jobs == 0
        assert stats.admitted_jobs == stats.offered_jobs

    def test_explicit_unbounded_policy_equals_default(self):
        default = legacy_scenario_engine()
        explicit = legacy_scenario_engine(queue_policy=QueuePolicy(None))
        assert default.run() == explicit.run()
        assert default.delivered_sets() == explicit.delivered_sets()

    @settings(max_examples=property_max_examples(10), deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=4),
        st.sampled_from(sorted(TOPOLOGIES)),
        st.sampled_from([0.4, 3.0]),
        st.sampled_from(SCHEDULERS),
    )
    def test_unreached_bound_is_byte_identical(
        self, docs, patterns, topology, rate, scheduling
    ):
        # A capacity the workload can never fill (more than every copy
        # that could ever exist) must not perturb a single float.
        corpus = DocumentCorpus(docs)
        outcomes = []
        for queue_policy in (None, QueuePolicy(10_000, "drop-oldest")):
            overlay = membership_overlay(topology, 3, patterns)
            engine = DeliveryEngine(
                overlay,
                service=ServiceModel(base=0.2, per_match=0.1),
                links=LinkModel(default=0.5),
                scheduling=scheduling,
                queue_policy=queue_policy,
            )
            engine.publish_corpus(
                corpus, rate=rate, classes=(0, 1), deadline_slack=6.0
            )
            outcomes.append((engine.run(), engine.delivered_sets()))
        assert outcomes[0] == outcomes[1]


class TestConservation:
    @settings(max_examples=property_max_examples(10), deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=4),
        st.sampled_from(sorted(TOPOLOGIES)),
        st.sampled_from([None, 0, 1, 3]),
        st.sampled_from(sorted(OVERFLOW_MODES)),
        st.sampled_from(SCHEDULERS),
        st.sampled_from([0.5, 5.0]),
    )
    def test_every_policy_topology_cell_conserves(
        self, docs, patterns, topology, capacity, overflow, scheduling, rate
    ):
        corpus = DocumentCorpus(docs)
        overlay = membership_overlay(topology, 3, patterns)
        engine = DeliveryEngine(
            overlay,
            service=ServiceModel(base=0.3, per_match=0.1),
            links=LinkModel(default=0.5),
            scheduling=scheduling,
            queue_policy=QueuePolicy(capacity, overflow),
        )
        engine.publish_corpus(
            corpus, rate=rate, classes=(0, 1), deadline_slack=8.0
        )
        stats = engine.run()
        assert_conserved(stats)
        # Deliveries can only come from completed copies, and bounded
        # queues only ever shed work — never invent it.
        sync = {
            index: frozenset(
                overlay.route(document, sorted(overlay.brokers)[
                    index % len(overlay.brokers)
                ])[0]
            )
            for index, document in enumerate(corpus.documents)
        }
        for index, delivered in engine.delivered_sets().items():
            assert delivered <= sync[index]

    @settings(max_examples=property_max_examples(8), deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=4),
        st.sampled_from([0, 2]),
        st.sampled_from(sorted(OVERFLOW_MODES)),
    )
    def test_every_drain_point_conserves_incrementally(
        self, docs, patterns, capacity, overflow
    ):
        # run() may interleave with more publishes; the ledger must
        # balance at each drain, not just the last.
        corpus = DocumentCorpus(docs)
        engine = DeliveryEngine(
            membership_overlay("chain", 3, patterns),
            service=ServiceModel(base=0.5, per_match=0.1),
            queue_policy=QueuePolicy(capacity, overflow),
        )
        for round_start, document in enumerate(corpus.documents):
            engine.publish(document, 0, float(round_start))
            engine.publish(
                document, len(engine.overlay.brokers) - 1,
                float(round_start) + 0.1,
            )
            assert_conserved(engine.run())

    @settings(max_examples=property_max_examples(8), deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=4),
        st.sampled_from([0, 1, 4]),
        st.sampled_from(sorted(OVERFLOW_MODES)),
        st.sampled_from([1, 3]),
        st.data(),
    )
    def test_batched_drains_conserve_under_bounded_queues(
        self, docs, patterns, capacity, overflow, max_batch, data
    ):
        corpus = DocumentCorpus(docs)
        engine = DeliveryEngine(
            membership_overlay("star", 4, patterns),
            service=BatchServiceModel(
                base=0.4, per_match=0.05, per_doc=0.1, max_batch=max_batch
            ),
            links=LinkModel(default=0.5),
            scheduling=data.draw(
                st.sampled_from(SCHEDULERS), label="scheduling"
            ),
            queue_policy=QueuePolicy(capacity, overflow),
        )
        engine.publish_corpus(corpus, rate=4.0, classes=(0, 1))
        assert_conserved(engine.run())

    @settings(max_examples=property_max_examples(8), deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=4),
        st.sampled_from([0, 2]),
        st.sampled_from(sorted(OVERFLOW_MODES)),
        st.data(),
    )
    def test_mid_sim_leave_conserves_under_bounded_queues(
        self, docs, patterns, capacity, overflow, data
    ):
        # A retiring broker reinjects its queued and in-service work at
        # the merge target, where it faces admission again: copies may
        # be dropped there, but never double-counted or lost untracked.
        corpus = DocumentCorpus(docs)
        engine = DeliveryEngine(
            membership_overlay("random_tree", 4, patterns),
            service=ServiceModel(base=0.4, per_match=0.1),
            links=LinkModel(default=1.0),
            queue_policy=QueuePolicy(capacity, overflow),
            allow_topology_churn=True,
        )
        engine.publish_corpus(corpus, rate=3.0, classes=(0, 1))
        retiring = data.draw(st.integers(0, 3), label="retiring")
        when = data.draw(
            st.sampled_from([0.3, 1.1, 2.7]), label="leave time"
        )
        engine.schedule_leave(when, retiring)
        stats = engine.run()
        assert_conserved(stats)
        assert engine.topology_log[0][1].action == "leave"

    @settings(max_examples=property_max_examples(8), deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=4),
        st.sampled_from([0, 1, None]),
        st.sampled_from(sorted(OVERFLOW_MODES)),
        st.integers(min_value=0, max_value=2**30),
    )
    def test_closed_loop_sources_conserve_and_settle(
        self, docs, patterns, capacity, overflow, seed
    ):
        corpus = DocumentCorpus(docs)
        engine = DeliveryEngine(
            membership_overlay("chain", 3, patterns),
            service=ServiceModel(base=0.5, per_match=0.1),
            links=LinkModel(default=0.5),
            queue_policy=QueuePolicy(capacity, overflow),
        )
        source = engine.attach_source(
            ClosedLoopSource(
                corpus,
                at_broker=0,
                initial_window=2.0,
                feedback_delay=0.25,
                jitter=0.5,
                seed=seed,
            )
        )
        stats = engine.run()
        assert_conserved(stats)
        report = engine.source_report(source)
        # The loop always drains: every document is eventually
        # published (window >= 1) and eventually absorbed.
        assert report.published == len(corpus.documents)
        assert report.pending == 0
        assert report.outstanding == 0
        assert report.acked == report.published
        assert report.clean_acks <= report.acked
        assert 1.0 <= report.window


class TestBelowKneeEquivalence:
    @settings(max_examples=property_max_examples(10), deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=4),
        st.sampled_from(sorted(TOPOLOGIES)),
        st.sampled_from(sorted(OVERFLOW_MODES)),
    )
    def test_below_knee_bounded_delivers_identical_sets(
        self, docs, patterns, topology, overflow
    ):
        # Far below the saturation knee queues stay shallow, so a
        # modest bound is never exercised: delivery sets (and the full
        # stats) must match the unbounded engine exactly.
        corpus = DocumentCorpus(docs)
        outcomes = []
        for queue_policy in (None, QueuePolicy(64, overflow)):
            overlay = membership_overlay(topology, 3, patterns)
            engine = DeliveryEngine(
                overlay,
                service=ServiceModel(base=0.1, per_match=0.02),
                links=LinkModel(default=0.2),
                queue_policy=queue_policy,
            )
            engine.publish_corpus(corpus, rate=0.2)
            outcomes.append((engine.run(), engine.delivered_sets()))
        assert outcomes[0][0].dropped_jobs == 0
        assert outcomes[0] == outcomes[1]


class TestWeightedFairConvergence:
    @settings(max_examples=property_max_examples(4), deadline=None)
    @given(
        st.sampled_from(
            [
                {0: 2.0, 1: 1.0},
                {0: 3.0, 1: 1.0},
                {0: 4.0, 1: 2.0, 2: 1.0},
            ]
        ),
        st.integers(min_value=0, max_value=2**20),
    )
    def test_long_run_shares_converge_to_weights(self, weights, seed):
        overlay = BrokerOverlay.chain(1)
        overlay.attach(0, parse_xpath("//b"))
        overlay.advertise_subscriptions()
        corpus = DocumentCorpus(
            [parse_xml("<a><b/></a>", doc_id=i) for i in range(400)]
        )
        engine = DeliveryEngine(
            overlay,
            service=ServiceModel(base=0.5, per_match=0.05),
            scheduling=WeightedFairScheduling(weights),
            queue_policy=QueuePolicy(10, "drop-oldest"),
        )
        engine.publish_corpus(
            corpus,
            rate=20.0,
            arrivals="poisson",
            seed=seed,
            classes=tuple(sorted(weights)),
        )
        stats = engine.run()
        assert_conserved(stats)
        shares = stats.completed_share_by_class
        total = sum(weights.values())
        for priority_class, weight in weights.items():
            # Admission is class-blind, so convergence is to within the
            # admitted mix, not exact; the ramp and final drain add a
            # little more slack.
            assert abs(shares[priority_class] - weight / total) < 0.15
        # And the ordering always matches the weights.
        ordered = sorted(weights, key=lambda c: weights[c])
        for lighter, heavier in zip(ordered, ordered[1:]):
            if weights[lighter] < weights[heavier]:
                assert shares[lighter] < shares[heavier]


class TestClosedLoopDeterminism:
    @settings(max_examples=property_max_examples(6), deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=4),
        st.integers(min_value=0, max_value=2**30),
        st.sampled_from(sorted(OVERFLOW_MODES)),
    )
    def test_same_seed_replays_bit_for_bit(
        self, docs, patterns, seed, overflow
    ):
        corpus = DocumentCorpus(docs)
        outcomes = []
        for _ in range(2):
            engine = DeliveryEngine(
                membership_overlay("star", 3, patterns),
                service=ServiceModel(base=0.4, per_match=0.1),
                links=LinkModel(default=0.5),
                scheduling=WeightedFairScheduling({0: 2.0, 1: 1.0}),
                queue_policy=QueuePolicy(1, overflow),
            )
            source = engine.attach_source(
                ClosedLoopSource(
                    corpus, at_broker=0, jitter=0.4, seed=seed
                )
            )
            outcomes.append(
                (
                    engine.run(),
                    engine.delivered_sets(),
                    engine.source_report(source),
                )
            )
        assert outcomes[0] == outcomes[1]
