"""The candidate-generation subsystem: exact oracle, sharded exact, LSH.

Covers the generator contract (population lifecycle, symmetry,
duplicate-key rejection), the label-overlap prefilter semantics (empty
label sets are never pruned), the sharded oracle's output equality with
the sequential one, the LSH bucket-table maintenance under churn, and
the integration points: ``SimilarityIndex(candidates=...)`` accounting,
the ``prune_label_overlap`` heuristic, and the heap-based ``top_k``.
"""

import pytest

from repro.core.candidates import (
    ExactCandidates,
    LSHCandidates,
    ShardedExactCandidates,
    candidate_pairs,
    pattern_tokens,
    resolve_candidates,
)
from repro.core.pattern_parser import parse_xpath
from repro.core.similarity import (
    SimilarityEstimator,
    SimilarityIndex,
    SimilarityMatrix,
)
from repro.xmltree.corpus import DocumentCorpus
from tests.test_similarity import CountingProvider

P = parse_xpath

PATTERNS = [P("/a/b"), P("/a/c/e"), P("//d/e"), P("/a/b[c]"), P("//*")]


@pytest.fixture()
def corpus(figure2_documents):
    return DocumentCorpus(figure2_documents)


class TestExactCandidates:
    def test_every_pair_is_a_candidate(self):
        generator = ExactCandidates()
        for key, pattern in enumerate(PATTERNS):
            generator.add(key, pattern)
        assert len(generator) == len(PATTERNS)
        n = len(PATTERNS)
        assert generator.pairs() == [
            (i, j) for i in range(n) for j in range(i + 1, n)
        ]
        assert generator.candidates_of(P("/z")) == set(range(n))
        assert generator.is_candidate(P("/a"), P("/z"))

    def test_pairs_follow_insertion_order(self):
        generator = ExactCandidates()
        generator.add("z", P("/a"))
        generator.add("a", P("/b"))
        generator.add("m", P("/c"))
        assert generator.pairs() == [("z", "a"), ("z", "m"), ("a", "m")]

    def test_duplicate_key_rejected(self):
        generator = ExactCandidates()
        generator.add(1, P("/a"))
        with pytest.raises(ValueError):
            generator.add(1, P("/b"))

    def test_discard(self):
        generator = ExactCandidates()
        generator.add(1, P("/a"))
        assert generator.discard(1) is True
        assert generator.discard(1) is False
        assert len(generator) == 0

    def test_spawn_is_empty_with_same_config(self):
        template = ExactCandidates(prefilter_labels=True)
        template.add(1, P("/a"))
        fresh = template.spawn()
        assert len(fresh) == 0
        assert fresh.prefilter_labels is True

    def test_label_prefilter_drops_disjoint_vocabularies(self):
        generator = ExactCandidates(prefilter_labels=True)
        generator.add("ab", P("//a/b"))
        generator.add("cd", P("//c/d"))
        generator.add("bx", P("//b"))
        assert generator.pairs() == [("ab", "bx")]
        assert generator.candidates_of(P("//d")) == {"cd"}
        assert not generator.is_candidate(P("//a"), P("//c"))

    def test_pure_wildcard_patterns_are_never_prefiltered(self):
        generator = ExactCandidates(prefilter_labels=True)
        generator.add("star", P("//*"))
        generator.add("cd", P("//c/d"))
        assert generator.pairs() == [("star", "cd")]
        assert generator.is_candidate(P("//*"), P("//c/d"))

    def test_equal_patterns_always_candidates(self):
        generator = ExactCandidates(prefilter_labels=True)
        assert generator.is_candidate(P("//a"), P("//a"))

    def test_describe(self):
        assert ExactCandidates().describe() == "exact"
        assert "prefilter" in ExactCandidates(prefilter_labels=True).describe()


class TestShardedExactCandidates:
    def assert_matches_sequential(self, patterns, **kwargs):
        sharded = ShardedExactCandidates(
            workers=2, min_parallel=2, **kwargs
        )
        sequential = ExactCandidates(
            prefilter_labels=sharded.prefilter_labels
        )
        for key, pattern in enumerate(patterns):
            sharded.add(key, pattern)
            sequential.add(key, pattern)
        assert sharded.pairs() == sequential.pairs()

    def test_matches_sequential_with_prefilter(self):
        self.assert_matches_sequential(PATTERNS, prefilter_labels=True)

    def test_matches_sequential_without_prefilter(self):
        self.assert_matches_sequential(PATTERNS, prefilter_labels=False)

    def test_small_population_falls_back(self):
        generator = ShardedExactCandidates(workers=2, min_parallel=10_000)
        for key, pattern in enumerate(PATTERNS):
            generator.add(key, pattern)
        # Below min_parallel the sequential loop answers; output is the
        # oracle's either way.
        assert generator.pairs() == ExactCandidates(
            prefilter_labels=True
        ).pairs() or len(generator.pairs()) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedExactCandidates(workers=0)
        with pytest.raises(ValueError):
            ShardedExactCandidates(min_parallel=1)

    def test_describe(self):
        assert "sharded" in ShardedExactCandidates(workers=2).describe()
        assert "auto" in ShardedExactCandidates().describe()


class TestLSHCandidates:
    def test_signatures_are_deterministic_across_instances(self):
        first = LSHCandidates(bands=8, rows=3, seed=4)
        second = LSHCandidates(bands=8, rows=3, seed=4)
        for pattern in PATTERNS:
            assert first.signature(pattern) == second.signature(pattern)
            assert len(first.signature(pattern)) == 24

    def test_different_seeds_differ(self):
        a = LSHCandidates(seed=0).signature(P("/a/b/c"))
        b = LSHCandidates(seed=1).signature(P("/a/b/c"))
        assert a != b

    def test_equal_patterns_always_collide(self):
        generator = LSHCandidates(bands=4, rows=4)
        assert generator.is_candidate(P("/a/b"), P("/a/b"))

    def test_population_maintenance_under_churn(self):
        generator = LSHCandidates(bands=8, rows=2)
        generator.add("x", P("/a/b"))
        generator.add("y", P("/a/b"))
        generator.add("z", P("//q/r/s"))
        # Identical patterns share every band bucket.
        assert "y" in generator.candidates_of(P("/a/b"))
        assert ("x", "y") in generator.pairs() or ("y", "x") in generator.pairs()
        assert generator.discard("y") is True
        assert generator.discard("y") is False
        assert "y" not in generator.candidates_of(P("/a/b"))
        assert len(generator) == 2
        # Buckets hold no retired keys.
        assert all(
            "y" not in bucket for bucket in generator._buckets.values()
        )

    def test_duplicate_key_rejected(self):
        generator = LSHCandidates()
        generator.add(1, P("/a"))
        with pytest.raises(ValueError):
            generator.add(1, P("/b"))

    def test_candidates_of_agrees_with_is_candidate(self):
        generator = LSHCandidates(bands=6, rows=2, seed=2)
        population = {key: pattern for key, pattern in enumerate(PATTERNS)}
        for key, pattern in population.items():
            generator.add(key, pattern)
        for probe in PATTERNS + [P("//x"), P("/a/b/c/d")]:
            reported = generator.candidates_of(probe)
            truth = {
                key
                for key, pattern in population.items()
                if generator.is_candidate(probe, pattern)
            }
            # candidates_of is bucket-driven: it may miss the p == q
            # shortcut for patterns outside the population but must agree
            # for members.
            assert reported == {
                key
                for key in truth
                if any(
                    band_id in generator._bucket_ids[key]
                    for band_id in generator._band_ids(probe)
                )
            }

    def test_pairs_deduplicated_and_sound(self):
        generator = LSHCandidates(bands=6, rows=1, seed=3)
        population = {key: pattern for key, pattern in enumerate(PATTERNS)}
        for key, pattern in population.items():
            generator.add(key, pattern)
        pairs = generator.pairs()
        assert len(pairs) == len({frozenset(pair) for pair in pairs})
        for i, j in pairs:
            assert generator.is_candidate(population[i], population[j])

    def test_spawn_shares_signature_memo(self):
        template = LSHCandidates(bands=8, rows=2, seed=7)
        clone = template.spawn()
        assert clone._signature_memo is template._signature_memo
        template.signature(P("/a/b"))
        assert P("/a/b") in clone._signature_memo
        assert len(clone) == 0

    def test_degenerate_config_collides_everything(self):
        generator = LSHCandidates.degenerate()
        for key, pattern in enumerate(PATTERNS):
            generator.add(key, pattern)
        n = len(PATTERNS)
        assert sorted(map(sorted, generator.pairs())) == [
            [i, j] for i in range(n) for j in range(i + 1, n)
        ]
        assert generator.is_candidate(P("/a"), P("//zz"))

    def test_signature_fn_length_validated(self):
        generator = LSHCandidates(bands=2, rows=2, signature_fn=lambda p: (0,))
        with pytest.raises(ValueError):
            generator.signature(P("/a"))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LSHCandidates(bands=0)
        with pytest.raises(ValueError):
            LSHCandidates(rows=0)

    def test_bucket_sizes_and_describe(self):
        generator = LSHCandidates(bands=4, rows=2)
        generator.add(1, P("/a/b"))
        generator.add(2, P("/a/b"))
        sizes = generator.bucket_sizes()
        assert sizes and sizes[0] == 2
        assert generator.describe() == "lsh(bands=4, rows=2)"
        assert "custom" in LSHCandidates.degenerate().describe()

    def test_tokens_mix_labels_and_spines(self):
        tokens = pattern_tokens(P("/a/b[c]"))
        kinds = {token[0] for token in tokens}
        assert kinds == {"label", "spine"}

    def test_custom_token_source(self):
        # Shingle by tag set only: /a/b and //b//a share both tokens, so
        # they collide in every band; /c shares none, so in no band.
        generator = LSHCandidates(
            bands=4, rows=2, tokens=lambda p: sorted(p.tags())
        )
        assert generator.is_candidate(P("/a/b"), P("//b//a"))
        assert not generator.is_candidate(P("/a/b"), P("/c"))
        spawned = generator.spawn()
        assert spawned.tokens is generator.tokens
        assert spawned._signature_memo is generator._signature_memo
        assert "custom-tokens" in generator.describe()

    def test_token_free_pattern_gets_sentinel_signature(self):
        generator = LSHCandidates(bands=2, rows=2, tokens=lambda p: [])
        assert generator.signature(P("/a")) == generator.signature(P("/b"))
        assert generator.is_candidate(P("/a"), P("/b"))


class TestResolveCandidates:
    def test_none_passes_through(self):
        assert resolve_candidates(None) is None

    def test_string_spellings(self):
        assert isinstance(resolve_candidates("exact"), ExactCandidates)
        assert isinstance(resolve_candidates("lsh", bands=4), LSHCandidates)
        assert isinstance(
            resolve_candidates("sharded"), ShardedExactCandidates
        )
        assert resolve_candidates("lsh", bands=4).bands == 4

    def test_instance_passes_through(self):
        generator = LSHCandidates()
        assert resolve_candidates(generator) is generator

    def test_rejections(self):
        with pytest.raises(ValueError):
            resolve_candidates("fuzzy")
        with pytest.raises(ValueError):
            resolve_candidates(LSHCandidates(), bands=4)
        with pytest.raises(ValueError):
            resolve_candidates(None, bands=4)

    def test_candidate_pairs_convenience(self):
        template = ExactCandidates()
        template.add("pre", P("/zz"))
        pairs = candidate_pairs(PATTERNS[:3], template)
        assert pairs == [(0, 1), (0, 2), (1, 2)]
        # The template's own population is untouched.
        assert len(template) == 1


class TestIndexCandidateGate:
    class NothingCollides:
        """A generator under which no distinct pair is a candidate."""

        def spawn(self):
            return type(self)()

        def add(self, key, pattern):
            pass

        def discard(self, key):
            return False

        def is_candidate(self, p, q):
            return p == q

        def candidates_of(self, pattern):
            return set()

        def pairs(self):
            return []

        def describe(self):
            return "nothing"

        def __len__(self):
            return 0

    def test_non_candidate_pair_skips_provider(self, corpus):
        counting = CountingProvider(corpus)
        index = SimilarityIndex(counting, candidates=self.NothingCollides())
        index.add(P("//b"))
        index.add(P("//e"))
        for handle in index.handles():
            index.row(handle)
        assert counting.joint_calls == {}
        assert index.stats.candidate_pruned == 1
        # Distinct-pair semantics: re-evaluating does not recount.
        for handle in index.handles():
            index.row(handle)
        assert index.stats.candidate_pruned == 1

    def test_population_stays_in_sync(self, corpus):
        generator = LSHCandidates(bands=4, rows=2)
        index = SimilarityIndex(corpus, candidates=generator)
        first = index.add(P("//b"))
        index.add(P("//e"))
        assert len(generator) == 2
        index.remove(first)
        assert len(generator) == 1

    def test_exact_candidates_change_nothing(self, corpus):
        patterns = [P("//b"), P("//e"), P("/a/d")]
        plain = SimilarityIndex(corpus, patterns)
        gated = SimilarityIndex(
            corpus, patterns, candidates=ExactCandidates()
        )
        for p, g in zip(plain.handles(), gated.handles(), strict=True):
            assert plain.row(p) == gated.row(g)
        assert gated.stats.candidate_pruned == 0

    def test_compact_keeps_accounting_consistent(self, corpus):
        index = SimilarityIndex(
            corpus, candidates=self.NothingCollides()
        )
        first = index.add(P("//b"))
        index.add(P("//e"))
        for handle in index.handles():
            index.row(handle)
        assert index.stats.candidate_pruned == 1
        index.remove(first)
        index.compact()
        # The dead pattern's pruned-pair record is dropped; a fresh pair
        # with a new pattern counts again.
        index.add(P("/a/d"))
        for handle in index.handles():
            index.row(handle)
        assert index.stats.candidate_pruned == 2


class TestLabelOverlapPrune:
    def test_disjoint_descendant_patterns_pruned(self, corpus):
        counting = CountingProvider(corpus)
        index = SimilarityIndex(counting, prune_label_overlap=True)
        assert index.joint_selectivity(P("//b"), P("//e")) == 0.0
        assert index.stats.label_overlap_pruned == 1
        assert counting.joint_calls == {}

    def test_wildcard_pattern_never_pruned(self, corpus):
        counting = CountingProvider(corpus)
        index = SimilarityIndex(counting, prune_label_overlap=True)
        index.joint_selectivity(P("//*"), P("//e"))
        assert index.stats.label_overlap_pruned == 0
        assert len(counting.joint_calls) == 1

    def test_off_by_default(self, corpus):
        counting = CountingProvider(corpus)
        index = SimilarityIndex(counting)
        index.joint_selectivity(P("//b"), P("//zz"))
        assert index.stats.label_overlap_pruned == 0
        assert len(counting.joint_calls) == 1

    def test_prune_ratio_folds_in_label_prunes(self, corpus):
        index = SimilarityIndex(corpus, prune_label_overlap=True)
        index.joint_selectivity(P("//b"), P("//e"))
        assert index.stats.prune_ratio == 1.0


class TestHeapTopK:
    def baseline(self, scored, k):
        ordered = sorted(scored, key=lambda pair: (-pair[1], pair[0]))
        return ordered[:k]

    def test_index_top_k_matches_full_sort(self, corpus):
        patterns = [P("//b"), P("//e"), P("/a/d"), P("/a/c"), P("//m")]
        index = SimilarityIndex(corpus, patterns)
        anchor = index.handles()[0]
        row = index.row(anchor)
        scored = [(h, v) for h, v in row.items() if h != anchor]
        for k in (1, 2, len(patterns) + 5):
            assert index.top_k(anchor, k) == self.baseline(scored, k)

    def test_estimator_top_k_matches_full_sort(self, corpus):
        estimator = SimilarityEstimator(corpus)
        candidates = [P("//e"), P("/a/d"), P("/a/c"), P("//m")]
        scored = [
            (index, estimator.similarity(P("//b"), candidate))
            for index, candidate in enumerate(candidates)
        ]
        assert estimator.top_k(P("//b"), candidates, k=3) == self.baseline(
            scored, 3
        )

    def test_matrix_top_k_matches_full_sort(self, corpus):
        patterns = [P("//b"), P("//e"), P("/a/d"), P("//m")]
        matrix = SimilarityMatrix(corpus, patterns)
        scored = [
            (j, matrix.values[0][j]) for j in range(len(patterns)) if j != 0
        ]
        assert matrix.top_k(0, 2) == self.baseline(scored, 2)
